//! `vliw-repro` — workspace meta-crate.
//!
//! This package exists to host the workspace-level examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).  The library API lives in the
//! [`vliw_core`] crate (re-exported here for convenience) and its substrates.

pub use vliw_core;
