//! The permanent static-vs-dynamic differential harness.
//!
//! Two instruments claim to judge the same schedules: the flow-sensitive
//! static verifier (`vliw_verify`, pure arithmetic) and the cycle-accurate
//! simulator (`vliw_sim`, execution).  This harness pins their agreement from
//! both directions:
//!
//! * **clean side** — property test: random `loopgen` loops driven through
//!   both schedulers (plain IMS on a single-cluster machine, the partitioner
//!   on a clustered one) must receive the *same verdict* from both checkers
//!   at a steady-state trip count — identical violation-code sets, so
//!   verifier-clean ⟺ simulator-clean;
//! * **dirty side** — fault injection: every fault class of
//!   `vliw_verify::ALL_FAULTS`, planted into every clean compilation of the
//!   golden 32-loop corpus on both machine shapes, must be flagged by **both**
//!   checkers with the fault's expected lint code.
//!
//! A verifier that misses a planted fault is unsound; one that flags a clean
//! schedule is useless; one that disagrees with the simulator is both.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use vliw_repro::vliw_core::loopgen::generator::generate_loop;
use vliw_repro::vliw_core::loopgen::CorpusConfig;
use vliw_repro::vliw_core::verify::{dynamic_violations, inject, verify_with_allocation, Mutant};
use vliw_repro::vliw_core::{Compiler, CompilerConfig, LatencyModel, Machine, Session, ALL_FAULTS};

/// Long enough for every corpus schedule to reach steady state, where the
/// static peaks are exact — the same trip count the experiment drivers use.
const STEADY_N: u64 = 1000;

/// One machine per scheduler: `paper_single` drives plain IMS,
/// `paper_clustered` the ring partitioner.
fn machines() -> Vec<Machine> {
    vec![Machine::paper_single(6), Machine::paper_clustered(4, LatencyModel::default())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random loops through both schedulers: the static violation-code set
    /// must equal the dynamic one at a steady-state trip count, on every
    /// machine shape — in particular, verifier-clean ⟺ simulator-clean.
    #[test]
    fn static_and_dynamic_verdicts_agree_on_random_loops(seed in 0u64..2000) {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(13));
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        for machine in machines() {
            let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
            let Ok(c) = compiler.compile(&lp) else { continue };
            let v = verify_with_allocation(&c.transformed, &machine, &c.schedule, &c.queues);
            let dynamic =
                dynamic_violations(&c.transformed, &machine, &c.schedule, &c.queues, STEADY_N);
            let static_codes: BTreeSet<&str> = v.violations.iter().map(|x| x.code()).collect();
            let dynamic_codes: BTreeSet<&str> = dynamic.iter().map(|x| x.code()).collect();
            prop_assert_eq!(
                &static_codes,
                &dynamic_codes,
                "{}: static {:?} vs dynamic {:?}",
                machine.name(),
                v.violations,
                dynamic
            );
            prop_assert_eq!(v.is_clean(), dynamic.is_empty());
        }
    }
}

#[test]
fn every_injected_fault_is_flagged_identically_by_both_checkers_corpus_wide() {
    // The golden corpus (what baselines/verify_small.json pins), both machine
    // shapes, every fault class with an injection site.
    let session = Session::quick(32, 386);
    let mut injected = 0usize;
    for machine in machines() {
        let compiler = session.compiler(CompilerConfig::paper_defaults(machine.clone()));
        for i in 0..session.num_loops() {
            let cached = compiler.compile_full(i);
            let Ok(c) = cached.as_ref().as_ref() else { continue };
            let clean = Mutant {
                ddg: c.transformed.clone(),
                schedule: c.schedule.clone(),
                allocation: c.queues.clone(),
            };
            // Injection needs an agreed-clean starting triple; loops whose
            // storage demand already exceeds this machine are sizing data,
            // exercised by the figure baselines instead.
            if !verify_with_allocation(&clean.ddg, &machine, &clean.schedule, &clean.allocation)
                .is_clean()
            {
                continue;
            }
            for fault in ALL_FAULTS {
                let mut m = clean.clone();
                if !inject(fault, &machine, &mut m) {
                    continue;
                }
                let code = fault.expected_code();
                let v = verify_with_allocation(&m.ddg, &machine, &m.schedule, &m.allocation);
                assert!(
                    v.violations.iter().any(|x| x.code() == code),
                    "loop {i} on {}: static verifier missed {fault}: {}",
                    machine.name(),
                    v.render_text()
                );
                let dynamic =
                    dynamic_violations(&m.ddg, &machine, &m.schedule, &m.allocation, STEADY_N);
                assert!(
                    dynamic.iter().any(|x| x.code() == code),
                    "loop {i} on {}: simulator missed {fault}: {:?}",
                    machine.name(),
                    dynamic
                );
                injected += 1;
            }
        }
    }
    assert!(injected >= 100, "the corpus must offer plenty of injection sites: {injected}");
}
