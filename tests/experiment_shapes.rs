//! Paper-shape integration tests: run the experiment drivers on a moderate corpus
//! and assert the qualitative trends the paper reports (who wins, in which
//! direction the curves move), without pinning exact percentages.

use vliw_core::experiments::{
    cluster_resources_experiment, fig3_experiment, fig4_experiment, fig6::fig6_experiment_for,
    ipc::ipc_curves,
};
use vliw_core::Session;

fn session() -> Session {
    Session::quick(150, 19980330)
}

#[test]
fn fig3_shape_32_queues_cover_almost_everything() {
    let rows = fig3_experiment(&session()).unwrap();
    for r in &rows {
        assert_eq!(r.unschedulable, 0);
        // Cumulative distribution is monotone over the budgets.
        let f = [
            r.histogram.fraction_within(4),
            r.histogram.fraction_within(8),
            r.histogram.fraction_within(16),
            r.histogram.fraction_within(32),
        ];
        assert!(f.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(f[3] >= 0.85, "{} FUs: 32 queues cover only {:.2}", r.fus, f[3]);
    }
    // Wider machines overlap more lifetimes, so they need at least as many queues:
    // the fraction of loops fitting 8 queues should not grow with machine width.
    let within8 = |fus: usize| {
        rows.iter().find(|r| r.fus == fus && r.with_copies).unwrap().histogram.fraction_within(8)
    };
    assert!(within8(4) + 1e-9 >= within8(12) - 0.05);
}

#[test]
fn fig4_shape_unrolling_never_hurts_and_often_helps() {
    let rows = fig4_experiment(&session()).unwrap();
    for r in &rows {
        assert!(r.mean_speedup >= 0.99, "{} FUs: mean speedup {}", r.fus, r.mean_speedup);
        assert!(r.speedup_gt_one <= r.unrolled + 1e-9);
    }
    let wide = rows.iter().find(|r| r.fus == 12).unwrap();
    assert!(wide.speedup_gt_one > 0.10, "12 FUs should benefit from unrolling");
}

#[test]
fn fig6_shape_partitioning_degrades_with_cluster_count() {
    let rows = fig6_experiment_for(&session(), &[4, 5, 6]).unwrap();
    let same: Vec<f64> = rows.iter().map(|r| r.same_ii).collect();
    // 4 clusters keeps at least as many loops at the single-cluster II as 6 clusters
    // (the paper's 95% / 84% / 52% trend), and the 4-cluster machine keeps a clear
    // majority.
    assert!(same[0] >= same[2] - 1e-9, "same-II fractions: {same:?}");
    assert!(same[0] >= 0.6, "4 clusters keeps only {} of loops", same[0]);
    for r in &rows {
        assert!(r.mean_ii_ratio >= 1.0 - 1e-9);
    }
}

#[test]
fn cluster_resources_shape_paper_budget_suffices() {
    let rows = cluster_resources_experiment(&session(), &[4]).unwrap();
    let r = &rows[0];
    assert!(
        r.fits_paper_cluster >= 0.75,
        "only {} of loops fit the Fig. 7 cluster",
        r.fits_paper_cluster
    );
}

#[test]
fn fig8_and_fig9_shapes() {
    // One shared session: Fig. 9's sweep is a subset of Fig. 8's, so the second
    // call below is served from the cache.
    let shared = session();
    let all = ipc_curves(&shared, &[4, 12, 18], false).unwrap();
    let before = shared.stats();
    let constrained = ipc_curves(&shared, &[4, 12, 18], true).unwrap();
    assert_eq!(shared.stats().compilations, before.compilations);

    // IPC grows with machine width on both corpora.
    assert!(all[2].static_single + 1e-9 >= all[0].static_single);
    assert!(constrained[2].static_single + 1e-9 >= constrained[0].static_single);

    for (a, c) in all.iter().zip(&constrained) {
        // Static IPC bounds dynamic IPC.
        assert!(a.dynamic_single <= a.static_single + 1e-9);
        assert!(c.dynamic_single <= c.static_single + 1e-9);
        // Clustered machines cannot issue more than their single-cluster equivalent
        // (small tolerance: the unroll heuristic may pick different factors).
        if let (Some(sc), Some(_)) = (a.static_clustered, a.dynamic_clustered) {
            assert!(sc <= a.static_single * 1.05 + 1e-9);
        }
    }

    // The resource-constrained subset exploits the 18-FU machine at least as well as
    // the full corpus does (that is the point of Fig. 9).
    assert!(constrained[2].static_single + 1e-9 >= all[2].static_single * 0.95);
}
