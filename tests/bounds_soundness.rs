//! Soundness of the certified static bounds (`vliw-bounds`) against the real
//! compiler: for random `loopgen` loops driven through both schedulers, no
//! certified lower bound may ever exceed what the compiler achieves —
//! `mii() <= achieved II <= ii_cap`, and the min-live pigeonhole never
//! exceeds the storage the allocator actually reserves.
//!
//! The deterministic companion test additionally *measures* the bounds: the
//! tightness ratio `mii() / achieved II` over a fixed seed sweep, emitted as a
//! JSON report (run with `--nocapture` to see it).  Soundness says the ratio
//! is ≤ 1 everywhere; the report records how far below 1 it sits, which is
//! the pruning power the certificate-pruned sweep trades on.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use vliw_repro::vliw_core::bounds::BoundsAnalyzer;
use vliw_repro::vliw_core::loopgen::generator::generate_loop;
use vliw_repro::vliw_core::loopgen::CorpusConfig;
use vliw_repro::vliw_core::pipeline::{Compiler, CompilerConfig};
use vliw_repro::vliw_core::{LatencyModel, Machine};

/// The machines the property sweeps: the paper's 6-FU single cluster, a wide
/// single cluster, and the paper's 4-cluster ring (partitioned scheduling).
fn machines(lat: LatencyModel) -> Vec<Machine> {
    vec![
        Machine::paper_single(6),
        Machine::single_cluster(12, 4, 32, lat),
        Machine::paper_clustered(4, lat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn certified_bounds_never_exceed_what_the_compiler_achieves(
        seed in 0u64..4000,
        which in 0usize..3,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        let lat = LatencyModel::default();
        let machine = machines(lat).swap_remove(which);

        let bounds = BoundsAnalyzer::new(lat).analyze(0, &lp, &machine);
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
        let Ok(c) = compiler.compile(&lp) else {
            // Unschedulable loops certify nothing about an achieved schedule.
            return Ok(());
        };

        prop_assert!(bounds.mii() <= c.schedule.ii,
            "{}: certified MII {} exceeds the achieved II {}",
            bounds.loop_name, bounds.mii(), c.schedule.ii);
        prop_assert!(c.schedule.ii <= bounds.ii_cap,
            "{}: the scheduler accepted II {} above the certified cap {}",
            bounds.loop_name, c.schedule.ii, bounds.ii_cap);

        // The pigeonhole side: at the II actually achieved, the certified
        // minimum of simultaneously live values cannot exceed the slots the
        // allocator reserved (peak-per-queue depths summed bound the peak of
        // the sum), and the config-independent `min_live` (evaluated at
        // `ii_cap`) is its weakest point.
        let reserved: usize = c.queues.queue_depths.iter().sum();
        prop_assert!(bounds.min_live_at(c.schedule.ii) <= reserved,
            "{}: certified min-live {} at II {} exceeds the {} reserved slots",
            bounds.loop_name, bounds.min_live_at(c.schedule.ii), c.schedule.ii, reserved);
        prop_assert!(bounds.min_live <= bounds.min_live_at(c.schedule.ii),
            "min_live must be the weakest (largest-II) point of the curve");
    }
}

/// The JSON document the tightness run prints.
#[derive(Serialize)]
struct TightnessReport {
    cases: usize,
    compiled: usize,
    mean_tightness: f64,
    min_tightness: f64,
    mii_achieved_fraction: f64,
}

#[test]
fn tightness_ratio_stays_sound_and_is_reported_as_json() {
    let lat = LatencyModel::default();
    let analyzer = BoundsAnalyzer::new(lat);
    let mut ratios: Vec<f64> = Vec::new();
    let mut cases = 0usize;
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(17));
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        for machine in machines(lat) {
            cases += 1;
            let bounds = analyzer.analyze(seed as usize, &lp, &machine);
            let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
            let Ok(c) = compiler.compile(&lp) else {
                continue;
            };
            let ratio = f64::from(bounds.mii()) / f64::from(c.schedule.ii);
            assert!(ratio <= 1.0, "{}: unsound bound, tightness {ratio}", bounds.loop_name);
            ratios.push(ratio);
        }
    }
    assert!(!ratios.is_empty(), "the seed sweep must compile something");
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let exact = ratios.iter().filter(|&&r| r == 1.0).count() as f64 / ratios.len() as f64;
    let report = TightnessReport {
        cases,
        compiled: ratios.len(),
        mean_tightness: mean,
        min_tightness: min,
        mii_achieved_fraction: exact,
    };
    println!("{}", serde_json::to_string_pretty(&report).expect("the tightness report serializes"));
    // The bound is not just sound but useful: on this corpus the certified
    // MII explains most of the achieved II on average, and a healthy share
    // of loops schedule exactly at it.
    assert!(mean > 0.5, "mean tightness collapsed to {mean}");
    assert!(exact > 0.2, "only {exact} of loops achieve the certified MII");
}
