//! Property-based agreement between the static schedule validator and the
//! dynamic simulator, over randomly generated `loopgen` loops driven through
//! **both** schedulers (plain IMS and the clustered partitioner).
//!
//! The contract: every schedule accepted by `Schedule::validate` must simulate
//! to completion with **zero schedule faults** — no dependence missed at run
//! time, no double-booked or wrong-class unit, no value flowing between
//! non-adjacent clusters — for every trip count, including trip counts below
//! the stage count (where the pipeline never reaches steady state and the
//! prologue and epilogue overlap).  On machines with ample queue storage the
//! runs must be clean outright; queue-capacity faults are machine-sizing data
//! and are exercised separately by the figure baselines.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use vliw_repro::vliw_core::loopgen::generator::generate_loop;
use vliw_repro::vliw_core::loopgen::CorpusConfig;
use vliw_repro::vliw_core::qrf::insert_copies;
use vliw_repro::vliw_core::sched::{modulo_schedule, ImsOptions};
use vliw_repro::vliw_core::sim::simulate;
use vliw_repro::vliw_core::{partition_schedule, LatencyModel, Machine, PartitionOptions};

/// Trip counts exercised per schedule: degenerate (1), below/around the stage
/// count, and long enough to reach steady state.
fn trip_counts(stage_count: u32) -> Vec<u64> {
    let sc = u64::from(stage_count);
    let mut ns = vec![1, 2, sc.saturating_sub(1).max(1), sc, sc + 1, 40];
    ns.sort_unstable();
    ns.dedup();
    ns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// IMS schedules of random loops: statically valid implies dynamically
    /// clean, with the simulated cycle count and issue rate matching the
    /// closed forms at every trip count.
    #[test]
    fn ims_schedules_simulate_cleanly(
        seed in 0u64..2000,
        fus in 3usize..13,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        let lat = LatencyModel::default();
        let machine = Machine::single_cluster(fus, 2, 1024, lat);
        let body = insert_copies(&lp.ddg, &lat).ddg;
        let r = modulo_schedule(&body, &machine, ImsOptions::default())
            .expect("corpus loops are schedulable");
        prop_assert!(r.schedule.validate(&body, &machine).is_ok());
        for n in trip_counts(r.schedule.stage_count()) {
            let run = simulate(&body, &machine, &r.schedule, n).expect("well-formed schedule");
            prop_assert!(
                run.is_clean(),
                "N={n}: dynamic verifier disagrees with the static validator: {:?}",
                run.violations
            );
            prop_assert_eq!(run.measurement.total_cycles, r.schedule.total_cycles(n));
            prop_assert_eq!(run.measurement.issued_ops, body.num_ops() as u64 * n);
        }
    }

    /// Partitioned schedules of random loops on ring machines: statically
    /// valid implies zero dynamic *schedule* faults (the ring adjacency the
    /// partitioner promises is verified by execution), at every trip count.
    #[test]
    fn partitioned_schedules_simulate_without_schedule_faults(
        seed in 0u64..2000,
        n_clusters in 2usize..7,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        let lat = LatencyModel::default();
        let machine = Machine::paper_clustered(n_clusters, lat);
        let body = insert_copies(&lp.ddg, &lat).ddg;
        let r = partition_schedule(&body, &machine, PartitionOptions::default())
            .expect("corpus loops are schedulable on clustered machines");
        prop_assert!(r.schedule.validate(&body, &machine).is_ok());
        for n in trip_counts(r.schedule.stage_count()) {
            let run = simulate(&body, &machine, &r.schedule, n).expect("well-formed schedule");
            prop_assert!(
                run.schedule_is_sound(),
                "N={n}: a validated partitioned schedule produced schedule faults: {:?}",
                run.violations
            );
            prop_assert_eq!(run.measurement.total_cycles, r.schedule.total_cycles(n));
        }
    }
}
