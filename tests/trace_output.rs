//! Golden-schema tests of the tracing exporters.
//!
//! The first test drives a traced compile/simulate/verify workload and checks
//! that [`vliw_core::obs::chrome_trace`] emits structurally valid Chrome
//! `trace_event` JSON: every record carries the required keys, `ts` is
//! monotone non-decreasing within each `tid`, and `B`/`E` marks pair up with
//! proper stack discipline.  The second is a property test of the tentpole's
//! core promise — enabling tracing never changes what an experiment reports,
//! down to the byte.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use serde_json::Value;

use vliw_core::experiments::ExperimentRequest;
use vliw_core::obs;
use vliw_core::pipeline::CompilerConfig;
use vliw_core::{Machine, Session};

/// The recording flag and event buffers are process-global and `cargo test`
/// races tests across threads, so every test that flips tracing holds this.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A small workload touching every in-process stage family: corpus
/// generation, a parallel compile sweep, simulation and verification.
fn run_workload(loops: usize, seed: u64) {
    let session = Session::quick(loops, seed);
    let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
    session.sweep(|i, _| compiler.compile(i).is_ok());
    for i in 0..loops {
        let _ = compiler.simulate(i, 50);
        let _ = compiler.verify(i);
    }
}

fn field<'a>(event: &'a Value, key: &str) -> &'a Value {
    event.get(key).unwrap_or_else(|| panic!("event missing required key `{key}`: {event:?}"))
}

fn str_field<'a>(event: &'a Value, key: &str) -> &'a str {
    match field(event, key) {
        Value::String(s) => s,
        other => panic!("`{key}` must be a string, got {other:?}"),
    }
}

fn num_field(event: &Value, key: &str) -> f64 {
    match field(event, key) {
        Value::Int(i) => *i as f64,
        Value::UInt(u) => *u as f64,
        Value::Float(f) => *f,
        other => panic!("`{key}` must be a number, got {other:?}"),
    }
}

#[test]
fn chrome_trace_export_is_valid_trace_event_json() {
    let _gate = gate();
    obs::clear();
    obs::enable();
    run_workload(8, 77);
    obs::disable();
    let threads = obs::snapshot();
    obs::clear();

    let json = obs::chrome_trace(&threads);
    let value: Value = serde_json::from_str(&json).expect("the trace must parse as JSON");
    let events = value.as_array().expect("trace_event bare-array form");
    assert!(!events.is_empty(), "a traced workload must record events");

    // Walk the array exactly as a viewer would: per-tid span stacks for B/E
    // pairing, per-tid high-water marks for timestamp monotonicity.
    let mut stacks: HashMap<i64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    let mut named_tids: BTreeSet<i64> = BTreeSet::new();
    let mut seen_tids: BTreeSet<i64> = BTreeSet::new();
    let mut begun_stages: BTreeSet<String> = BTreeSet::new();
    for event in events {
        let name = str_field(event, "name");
        let ph = str_field(event, "ph");
        let tid = num_field(event, "tid") as i64;
        let ts = num_field(event, "ts");
        assert_eq!(num_field(event, "pid"), 1.0, "all records share one pid");
        match ph {
            "M" => {
                assert_eq!(name, "thread_name", "the only metadata records name tracks");
                let label = match field(event, "args").get("name") {
                    Some(Value::String(s)) => s.clone(),
                    other => panic!("thread_name args.name must be a string, got {other:?}"),
                };
                assert!(!label.is_empty(), "thread labels must be non-empty");
                named_tids.insert(tid);
            }
            "B" | "E" => {
                seen_tids.insert(tid);
                let watermark = last_ts.entry(tid).or_insert(0.0);
                assert!(
                    ts >= *watermark,
                    "ts must be non-decreasing within tid {tid}: {ts} after {watermark}"
                );
                *watermark = ts;
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    begun_stages.insert(name.to_string());
                    stack.push(name.to_string());
                } else {
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!("E record for `{name}` on tid {tid} with no open span")
                    });
                    assert_eq!(open, name, "E must close the innermost open span on its tid");
                }
            }
            other => panic!("unexpected phase `{other}` in {event:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
    for tid in &seen_tids {
        assert!(named_tids.contains(tid), "tid {tid} records spans but has no thread_name");
    }
    for stage in ["corpusgen", "sched/ims", "qrf/alloc", "sim", "verify"] {
        assert!(begun_stages.contains(stage), "stage `{stage}` missing from {begun_stages:?}");
    }

    // The same snapshot drives the breakdown table; it must aggregate every
    // stage the trace shows and nothing else.
    let stats = obs::stage_stats(&threads);
    let stat_stages: BTreeSet<String> = stats.iter().map(|s| s.stage.name().to_string()).collect();
    assert_eq!(stat_stages, begun_stages, "stage_stats must cover exactly the traced stages");
    for stat in &stats {
        assert!(stat.count > 0);
        assert!(stat.p50_ns <= stat.p99_ns, "{stat:?}");
        assert!(stat.p99_ns <= stat.total_ns, "{stat:?}");
    }
}

/// One figures-style JSON report over a fresh session — the byte stream the
/// golden-baseline test diffs, so byte identity here is exactly the CLI's
/// "`--trace` does not perturb stdout" guarantee.
fn report_json(loops: usize, seed: u64) -> String {
    let session = Session::quick(loops, seed);
    let mut out = String::new();
    for request in [ExperimentRequest::Fig3, ExperimentRequest::Fig4, ExperimentRequest::Verify] {
        let response = request.run(&session).expect("experiments run on a quick session");
        out.push_str(&serde_json::to_string_pretty(&response).expect("reports serialize"));
        out.push('\n');
        out.push_str(&response.render_table());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tracing_leaves_reports_byte_identical(loops in 4usize..10, seed in 0u64..500) {
        let _gate = gate();
        obs::disable();
        obs::clear();
        let baseline = report_json(loops, seed);
        obs::enable();
        let traced = report_json(loops, seed);
        obs::disable();
        obs::clear();
        prop_assert_eq!(baseline, traced, "tracing must not perturb report bytes");
    }
}
