//! Cross-check of the simulator against the closed-form analysis over the
//! 32-loop golden corpus (seed 386): for every loop that schedules on the
//! paper's machines, the simulated total cycles must equal
//! `Schedule::total_cycles(N) = (SC − 1 + N) · II` and the simulated dynamic
//! IPC must equal `analysis::ipc::dynamic_ipc` — exactly, at every trip count,
//! including short trip counts (`N < SC`) where an off-by-one in either side's
//! prologue/epilogue accounting would show first.

use vliw_repro::vliw_core::analysis::dynamic_ipc;
use vliw_repro::vliw_core::pipeline::CompilerConfig;
use vliw_repro::vliw_core::qrf::{allocate_queues, max_live, use_lifetimes, Lifetime};
use vliw_repro::vliw_core::sim::{simulate_with_queue_map, QueueMap};
use vliw_repro::vliw_core::{Machine, Session};

/// The golden small corpus: 32 loops, seed 386 (what
/// `baselines/figures_small.json` and `baselines/sim_small.json` pin).
fn golden_session() -> Session {
    Session::quick(32, 386)
}

#[test]
fn simulated_cycles_and_ipc_match_the_closed_forms_on_the_golden_corpus() {
    let session = golden_session();
    let machines = [
        Machine::paper_single(6),
        Machine::paper_single(12),
        Machine::paper_clustered(4, Default::default()),
    ];
    let mut checked = 0usize;
    for machine in machines {
        let compiler = session.compiler(CompilerConfig::paper_defaults(machine));
        for i in 0..session.num_loops() {
            // Short trip counts (N = 1, 2, 3 are below most stage counts)
            // catch off-by-one prologue/epilogue accounting; long ones catch
            // steady-state drift.
            for n in [1u64, 2, 3, 10, 100, 1000] {
                let Some(run) = compiler.simulate_full(i, n) else { continue };
                let (cycles, ipc, sc) = compiler
                    .map_full(i, |c| {
                        (
                            c.schedule.total_cycles(n),
                            dynamic_ipc(c.transformed.num_ops(), &c.schedule, n),
                            c.schedule.stage_count(),
                        )
                    })
                    .expect("simulated loops compiled");
                assert!(run.is_clean(), "loop {i} N={n}: {:?}", run.violations);
                assert_eq!(
                    run.measurement.total_cycles, cycles,
                    "loop {i} N={n} (SC={sc}): simulated cycles diverge from the formula"
                );
                assert_eq!(
                    run.measurement.dynamic_ipc, ipc,
                    "loop {i} N={n} (SC={sc}): simulated IPC diverges from the formula"
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 3 * 32 * 6 - 50, "nearly every (machine, loop, N) must be checked");
}

#[test]
fn steady_state_peak_occupancy_equals_max_live_on_the_golden_corpus() {
    // On a single-cluster machine every per-use lifetime lives in cluster 0's
    // QRF, so at a steady-state-reaching trip count the simulator's observed
    // peak must equal the analytical MaxLive of the lifetime set.
    let session = golden_session();
    let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
    let mut checked = 0usize;
    for i in 0..session.num_loops() {
        let Some(run) = compiler.simulate(i, 1000) else { continue };
        let expected = compiler
            .map_full(i, |c| max_live(&use_lifetimes(&c.transformed, &c.schedule), c.schedule.ii))
            .expect("simulated loops compiled");
        assert_eq!(
            run.measurement.max_private_peak(),
            expected,
            "loop {i}: observed peak occupancy must equal analytical MaxLive"
        );
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn allocator_queue_depths_match_observed_per_queue_peaks_corpus_wide() {
    // The permanent allocator-vs-simulator depth cross-check: for every loop of
    // the golden corpus, on a single-cluster and a clustered paper machine,
    // allocate queues *per storage pool* (each cluster's private QRF, each
    // directed ring link — the same pool split `CommStats::fits_pools` checks),
    // hand the simulator the resulting flow-edge → queue assignment, and demand
    // that the steady-state peak occupancy the execution observes in every
    // physical queue equals the depth the allocator derived from whole-wrap
    // MaxLive counting.  Any II-wrap off-by-one on either side — the
    // difference-array accounting or the enqueue-on-write/dequeue-on-read
    // timing — breaks the equality.
    let session = golden_session();
    let mut checked = 0usize;
    for machine in [Machine::paper_single(6), Machine::paper_clustered(4, Default::default())] {
        let compiler = session.compiler(CompilerConfig::paper_defaults(machine.clone()));
        for i in 0..session.num_loops() {
            let cached = compiler.compile_full(i);
            let Ok(c) = cached.as_ref().as_ref() else { continue };
            let lts = use_lifetimes(&c.transformed, &c.schedule);
            let flow_edges: Vec<_> =
                c.transformed.edges().filter(|e| e.kind.carries_value()).collect();
            assert_eq!(flow_edges.len(), lts.len());

            // Group flow edges by storage pool: (cluster, cluster) for local
            // values, (from, to) for each directed ring link.
            let mut pools: Vec<((u32, u32), Vec<usize>)> = Vec::new();
            for (k, e) in flow_edges.iter().enumerate() {
                let key = (
                    c.schedule.cluster_of(&machine, e.src).0,
                    c.schedule.cluster_of(&machine, e.dst).0,
                );
                match pools.iter_mut().find(|(existing, _)| *existing == key) {
                    Some((_, members)) => members.push(k),
                    None => pools.push((key, vec![k])),
                }
            }

            // Allocate each pool independently and stitch the per-pool queues
            // into one dense global id space.
            let mut queue_of = vec![None; lts.len()];
            let mut depths: Vec<usize> = Vec::new();
            for (_, members) in &pools {
                let pool_lts: Vec<Lifetime> = members.iter().map(|&k| lts[k].clone()).collect();
                let alloc = allocate_queues(&pool_lts, c.schedule.ii);
                let base = depths.len();
                for (q, queue_members) in alloc.queues().enumerate() {
                    for &mk in queue_members {
                        queue_of[members[mk as usize]] = Some((base + q) as u32);
                    }
                }
                depths.extend(alloc.queue_depths.iter().copied());
            }

            let map = QueueMap { queue_of, num_queues: depths.len() };
            let run = simulate_with_queue_map(&c.transformed, &machine, &c.schedule, 1000, &map)
                .expect("well-formed schedule");
            assert!(run.schedule_is_sound(), "loop {i} on {}", machine.name());
            assert_eq!(
                run.measurement.peak_queue_occupancy,
                depths,
                "loop {i} on {}: observed per-queue peaks diverge from the allocator's depths",
                machine.name()
            );
            checked += 1;
        }
    }
    assert!(checked >= 60, "nearly every (machine, loop) pair must be cross-checked: {checked}");
}
