//! Cross-check of the simulator against the closed-form analysis over the
//! 32-loop golden corpus (seed 386): for every loop that schedules on the
//! paper's machines, the simulated total cycles must equal
//! `Schedule::total_cycles(N) = (SC − 1 + N) · II` and the simulated dynamic
//! IPC must equal `analysis::ipc::dynamic_ipc` — exactly, at every trip count,
//! including short trip counts (`N < SC`) where an off-by-one in either side's
//! prologue/epilogue accounting would show first.

use vliw_repro::vliw_core::analysis::dynamic_ipc;
use vliw_repro::vliw_core::pipeline::CompilerConfig;
use vliw_repro::vliw_core::qrf::{max_live, use_lifetimes};
use vliw_repro::vliw_core::{Machine, Session};

/// The golden small corpus: 32 loops, seed 386 (what
/// `baselines/figures_small.json` and `baselines/sim_small.json` pin).
fn golden_session() -> Session {
    Session::quick(32, 386)
}

#[test]
fn simulated_cycles_and_ipc_match_the_closed_forms_on_the_golden_corpus() {
    let session = golden_session();
    let machines = [
        Machine::paper_single(6),
        Machine::paper_single(12),
        Machine::paper_clustered(4, Default::default()),
    ];
    let mut checked = 0usize;
    for machine in machines {
        let compiler = session.compiler(CompilerConfig::paper_defaults(machine));
        for i in 0..session.num_loops() {
            // Short trip counts (N = 1, 2, 3 are below most stage counts)
            // catch off-by-one prologue/epilogue accounting; long ones catch
            // steady-state drift.
            for n in [1u64, 2, 3, 10, 100, 1000] {
                let Some(run) = compiler.simulate(i, n) else { continue };
                let (cycles, ipc, sc) = compiler
                    .map_ok(i, |c| {
                        (
                            c.schedule.total_cycles(n),
                            dynamic_ipc(c.transformed.num_ops(), &c.schedule, n),
                            c.schedule.stage_count(),
                        )
                    })
                    .expect("simulated loops compiled");
                assert!(run.is_clean(), "loop {i} N={n}: {:?}", run.violations);
                assert_eq!(
                    run.measurement.total_cycles, cycles,
                    "loop {i} N={n} (SC={sc}): simulated cycles diverge from the formula"
                );
                assert_eq!(
                    run.measurement.dynamic_ipc, ipc,
                    "loop {i} N={n} (SC={sc}): simulated IPC diverges from the formula"
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 3 * 32 * 6 - 50, "nearly every (machine, loop, N) must be checked");
}

#[test]
fn steady_state_peak_occupancy_equals_max_live_on_the_golden_corpus() {
    // On a single-cluster machine every per-use lifetime lives in cluster 0's
    // QRF, so at a steady-state-reaching trip count the simulator's observed
    // peak must equal the analytical MaxLive of the lifetime set.
    let session = golden_session();
    let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
    let mut checked = 0usize;
    for i in 0..session.num_loops() {
        let Some(run) = compiler.simulate(i, 1000) else { continue };
        let expected = compiler
            .map_ok(i, |c| max_live(&use_lifetimes(&c.transformed, &c.schedule), c.schedule.ii))
            .expect("simulated loops compiled");
        assert_eq!(
            run.measurement.max_private_peak(),
            expected,
            "loop {i}: observed peak occupancy must equal analytical MaxLive"
        );
        checked += 1;
    }
    assert!(checked > 0);
}
