//! Cross-crate integration tests: the full pipeline (corpus generation → unrolling →
//! copy insertion → scheduling / partitioning → queue allocation → analysis) on real
//! corpora and machines, checking the invariants that every layer must preserve for
//! every loop.

use vliw_core::copy_units_for;
use vliw_core::qrf::{insert_copies, q_compatible, use_lifetimes};
use vliw_core::{generate_corpus, CorpusConfig, LatencyModel, Machine};
use vliw_core::{Compiler, CompilerConfig};

fn small_corpus(n: usize, seed: u64) -> Vec<vliw_core::Loop> {
    generate_corpus(&CorpusConfig::small(n, seed))
}

#[test]
fn every_corpus_loop_compiles_on_single_cluster_machines() {
    let corpus = small_corpus(150, 2024);
    for fus in [4usize, 6, 12] {
        let machine =
            Machine::single_cluster(fus, copy_units_for(fus), 1024, LatencyModel::default());
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
        for lp in &corpus {
            let c =
                compiler.compile(lp).unwrap_or_else(|e| panic!("{} on {} FUs: {e}", lp.name, fus));
            // The schedule respects every dependence and every resource.
            c.schedule
                .validate(&c.transformed, &machine)
                .unwrap_or_else(|v| panic!("{} on {} FUs: {v}", lp.name, fus));
            // The II never beats the theoretical lower bound.
            assert!(c.ii() >= c.mii, "{}", lp.name);
            // Queue allocation covers every value-carrying edge exactly once.
            let flow_edges =
                c.transformed.edges().filter(|e| e.kind == vliw_core::ddg::DepKind::Flow).count();
            let allocated: usize = c.queues.queues().map(|q| q.len()).sum();
            assert_eq!(allocated, flow_edges, "{}", lp.name);
        }
    }
}

#[test]
fn every_corpus_loop_partitions_on_clustered_machines() {
    let corpus = small_corpus(100, 555);
    for clusters in [4usize, 6] {
        let machine = Machine::paper_clustered(clusters, LatencyModel::default());
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
        for lp in &corpus {
            let c = compiler
                .compile(lp)
                .unwrap_or_else(|e| panic!("{} on {} clusters: {e}", lp.name, clusters));
            c.schedule
                .validate(&c.transformed, &machine)
                .unwrap_or_else(|v| panic!("{}: {v}", lp.name));
            // After copy insertion no non-copy operation feeds more than one reader,
            // and copies feed at most two (the copy unit has two write ports).
            for op in c.transformed.ops() {
                let limit = if op.kind == vliw_core::OpKind::Copy { 2 } else { 1 };
                assert!(
                    c.transformed.fanout(op.id) <= limit,
                    "{}: {} has fan-out {}",
                    lp.name,
                    op.id,
                    c.transformed.fanout(op.id)
                );
            }
            // The ring topology is honoured: every value moves at most one hop.
            for e in c.transformed.edges() {
                if e.kind != vliw_core::ddg::DepKind::Flow {
                    continue;
                }
                let src = c.schedule.cluster_of(&machine, e.src);
                let dst = c.schedule.cluster_of(&machine, e.dst);
                assert!(
                    machine.clusters_communicate(src, dst),
                    "{}: non-adjacent communication {src} -> {dst}",
                    lp.name
                );
            }
        }
    }
}

#[test]
fn queue_allocations_are_pairwise_q_compatible() {
    let corpus = small_corpus(60, 9001);
    let machine = Machine::single_cluster(6, 2, 1024, LatencyModel::default());
    for lp in &corpus {
        let rewritten = insert_copies(&lp.ddg, &LatencyModel::default());
        let sched = vliw_core::modulo_schedule(&rewritten.ddg, &machine, Default::default())
            .unwrap()
            .schedule;
        let lts = use_lifetimes(&rewritten.ddg, &sched);
        let alloc = vliw_core::allocate_queues(&lts, sched.ii);
        for q in alloc.queues() {
            for (i, &a) in q.iter().enumerate() {
                for &b in &q[i + 1..] {
                    assert!(
                        q_compatible(&lts[a as usize], &lts[b as usize], sched.ii),
                        "{}: incompatible lifetimes share a queue",
                        lp.name
                    );
                }
            }
        }
    }
}

#[test]
fn clustered_machines_rarely_beat_their_single_cluster_equivalent() {
    // Both schedulers are heuristics; a partitioned schedule is also a valid
    // single-cluster schedule, so in principle the clustered II can never be
    // genuinely better — but plain IMS occasionally misses a packing the
    // partitioner finds.  Require the anomaly to be rare and the lower bound to be
    // respected everywhere.
    let corpus = small_corpus(60, 31337);
    let clustered = Machine::paper_clustered(4, LatencyModel::default());
    let single = Machine::paper_single_cluster_equivalent(4, LatencyModel::default());
    let c_clustered = Compiler::new(CompilerConfig::paper_defaults(clustered));
    let c_single = Compiler::new(CompilerConfig::paper_defaults(single));
    let mut beats = 0usize;
    for lp in &corpus {
        let a = c_single.compile(lp).unwrap();
        let b = c_clustered.compile(lp).unwrap();
        // Identical pipelines up to the scheduler, so the transformed bodies match.
        assert_eq!(a.transformed.num_ops(), b.transformed.num_ops(), "{}", lp.name);
        assert!(a.ii() >= a.mii, "{}", lp.name);
        assert!(b.ii() >= b.mii, "{}", lp.name);
        if b.ii() < a.ii() {
            beats += 1;
        }
    }
    assert!(
        beats * 20 <= corpus.len(),
        "the partitioner out-scheduled plain IMS on {beats}/{} loops, which suggests an IMS bug",
        corpus.len()
    );
}

#[test]
fn compilation_is_deterministic_end_to_end() {
    let corpus = small_corpus(40, 808);
    let machine = Machine::paper_clustered(5, LatencyModel::default());
    let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
    for lp in &corpus {
        let a = compiler.compile(lp).unwrap();
        let b = compiler.compile(lp).unwrap();
        assert_eq!(a.schedule, b.schedule, "{}", lp.name);
        assert_eq!(a.queues_required(), b.queues_required(), "{}", lp.name);
    }
}

#[test]
fn hand_written_kernels_behave_like_the_paper_examples() {
    let lat = LatencyModel::default();
    let machine = Machine::paper_clustered(4, lat);
    let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
    for lp in vliw_core::kernels::all_kernels(lat) {
        let c = compiler.compile(&lp).unwrap();
        assert!(c.ii() >= 1 && c.ii() <= 16, "{}: implausible II {}", lp.name, c.ii());
        assert!(c.queues_required() <= 32, "{}", lp.name);
        let comm = c.comm.unwrap();
        assert!(comm.fits_cluster_budget(8, 8, 8), "{}", lp.name);
    }
}
