//! Property-based integration tests for the paper's Theorem 1.1 (Q-Compatibility)
//! and for the structural invariants that connect the scheduler, the unroller and
//! the queue allocator across crates.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use vliw_core::loopgen::generator::generate_loop;
use vliw_core::loopgen::CorpusConfig;
use vliw_core::qrf::{
    allocate_queues, fifo_compatible, insert_copies, q_compatible, use_lifetimes,
};
use vliw_core::sched::{modulo_schedule, ImsOptions};
use vliw_core::unroll::unroll_ddg;
use vliw_core::{LatencyModel, Machine, OpId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1.1, end to end: for lifetimes extracted from *real schedules* of
    /// randomly generated loops, the closed-form Q-compatibility test agrees with
    /// the brute-force FIFO simulation.
    #[test]
    fn theorem_1_1_holds_on_real_schedules(seed in 0u64..3000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        let machine = Machine::single_cluster(6, 2, 1024, LatencyModel::default());
        let rewritten = insert_copies(&lp.ddg, &LatencyModel::default());
        let sched = modulo_schedule(&rewritten.ddg, &machine, ImsOptions::default())
            .expect("corpus loops are schedulable")
            .schedule;
        let lts = use_lifetimes(&rewritten.ddg, &sched);
        // Compare the closed form with the oracle on a bounded number of pairs.
        for (i, a) in lts.iter().enumerate().take(12) {
            for b in lts.iter().skip(i + 1).take(12) {
                prop_assert_eq!(
                    q_compatible(a, b, sched.ii),
                    fifo_compatible(a, b, sched.ii),
                    "lifetime pair disagrees at II {}", sched.ii
                );
            }
        }
    }

    /// Unrolling preserves the recurrence structure: the unrolled body's RecMII
    /// never exceeds `factor` times the original RecMII (unrolling cannot make a
    /// recurrence worse per original iteration), and the scheduler still honours the
    /// unrolled bound.
    #[test]
    fn unrolled_schedules_respect_recurrence_bounds(seed in 0u64..1500, factor in 1u32..4) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        prop_assume!(lp.ddg.num_ops() * factor as usize <= 160);
        let machine = Machine::single_cluster(12, 4, 1024, LatencyModel::default());
        let rec = vliw_core::sched::rec_mii(&lp.ddg);
        let unrolled = unroll_ddg(&lp.ddg, factor);
        let rec_unrolled = vliw_core::sched::rec_mii(&unrolled.ddg);
        prop_assert!(rec_unrolled <= rec * factor,
            "unrolled RecMII {} exceeds {} x {}", rec_unrolled, rec, factor);
        let sched = modulo_schedule(&unrolled.ddg, &machine, ImsOptions::default())
            .expect("schedulable")
            .schedule;
        prop_assert!(sched.ii >= rec_unrolled);
    }

    /// Queue allocation of a real schedule never loses a lifetime and never packs an
    /// incompatible pair, regardless of the machine width.
    #[test]
    fn queue_allocation_invariants_on_random_loops(seed in 0u64..1500, fus in 3usize..13) {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        let machine = Machine::single_cluster(fus, 2, 1024, LatencyModel::default());
        let rewritten = insert_copies(&lp.ddg, &LatencyModel::default());
        let sched = modulo_schedule(&rewritten.ddg, &machine, ImsOptions::default())
            .expect("schedulable")
            .schedule;
        let lts = use_lifetimes(&rewritten.ddg, &sched);
        let alloc = allocate_queues(&lts, sched.ii);
        let mut seen: Vec<usize> = alloc.queues().flatten().map(|&i| i as usize).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..lts.len()).collect::<Vec<_>>());
        for q in alloc.queues() {
            for (i, &a) in q.iter().enumerate() {
                for &b in &q[i + 1..] {
                    prop_assert!(q_compatible(&lts[a as usize], &lts[b as usize], sched.ii));
                }
            }
        }
    }
}

#[test]
fn q_compatibility_is_not_claimed_transitive() {
    // Documented behaviour: the relation is symmetric but not transitive, so the
    // allocator must check every pair.  This is a concrete witness.
    use vliw_core::qrf::Lifetime;
    let ii = 6;
    let a = Lifetime { producer: OpId(0), consumer: OpId(1), start: 0, end: 2 };
    let b = Lifetime { producer: OpId(2), consumer: OpId(3), start: 1, end: 5 };
    let c = Lifetime { producer: OpId(4), consumer: OpId(5), start: 4, end: 8 };
    assert!(q_compatible(&a, &b, ii));
    assert!(q_compatible(&b, &c, ii));
    // a vs c: writes 0 and 4, reads 2 and 8 ≡ 2 (mod 6) -> reads collide.
    assert!(!q_compatible(&a, &c, ii));
}
