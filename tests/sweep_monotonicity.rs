//! Property-based monotonicity of the design-space sweep's classification:
//! for random `loopgen` loops, growing any single *storage* dimension of a grid
//! point (queues per cluster, entries per queue, ring-link depth) never turns a
//! clean verdict unclean — more storage can only admit more loops.
//!
//! The machine-*shape* dimensions (cluster count, FU mix) are deliberately not
//! part of the property: they change the schedule itself, and Fig. 6 shows that
//! more clusters can *degrade* a loop (the ring's adjacency limit), so no such
//! monotonicity holds or is claimed for them.  Within a shape the schedule and
//! the simulated occupancy are fixed, which is also why one compilation and one
//! probe simulation serve both sides of each comparison below — exactly the
//! sharing the sweep driver relies on.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use vliw_repro::vliw_core::experiments::classify_loop;
use vliw_repro::vliw_core::loopgen::generator::generate_loop;
use vliw_repro::vliw_core::loopgen::CorpusConfig;
use vliw_repro::vliw_core::pipeline::{Compiler, CompilerConfig};
use vliw_repro::vliw_core::sim::simulate;
use vliw_repro::vliw_core::SimSummary;
use vliw_repro::vliw_core::{FuMix, LatencyModel, MachineConfig, Topology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn growing_a_storage_dimension_never_turns_a_clean_config_unclean(
        seed in 0u64..3000,
        clusters in 2usize..6,
        queues in 1usize..10,
        capacity in 1usize..10,
        link_depth in 1usize..10,
        dimension in 0usize..3,
        growth in 1usize..9,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(13));
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);

        let base = MachineConfig {
            clusters,
            queues_per_cluster: queues,
            queue_capacity: capacity,
            link_depth,
            fu_mix: FuMix::Basic,
            topology: Topology::Ring,
        };
        let mut grown = base;
        match dimension {
            0 => grown.queues_per_cluster += growth,
            1 => grown.queue_capacity += growth,
            _ => grown.link_depth += growth,
        }

        let lat = LatencyModel::default();
        let probe = base.probe_machine(lat);
        prop_assert_eq!(&probe, &grown.probe_machine(lat), "same shape, same probe");

        let compiler = Compiler::new(CompilerConfig::paper_defaults(probe.clone()));
        let Ok(c) = compiler.compile(&lp) else {
            // Unschedulable on the shape: both verdicts are all-false.
            return Ok(());
        };
        let run = simulate(&c.transformed, &probe, &c.schedule, 100)
            .expect("session-style compilations are structurally simulatable");

        // The classifier consumes the session-layer summaries (what the sweep
        // driver feeds it), not the full in-process artifacts.
        let summary = c.summarize();
        let run = SimSummary::from(&run);
        let before = classify_loop(&summary, &run, &base.machine(lat), &base);
        let after = classify_loop(&summary, &run, &grown.machine(lat), &grown);

        prop_assert_eq!(before.schedulable, after.schedulable,
            "storage cannot affect schedulability");
        prop_assert!(!before.alloc_fits || after.alloc_fits,
            "allocation fit lost by growing dimension {} by {}: {:?} -> {:?}",
            dimension, growth, base, grown);
        prop_assert!(!before.sim_clean || after.sim_clean,
            "simulation cleanliness lost by growing dimension {} by {}: {:?} -> {:?}",
            dimension, growth, base, grown);
    }
}
