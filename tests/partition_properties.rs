//! Property-based tests of the partitioned schedules over randomly generated
//! loops.
//!
//! The hand-written kernels already pin the ring-adjacency invariant; these
//! tests extend the check to the synthetic `loopgen` corpus, driving both
//! schedulers through the shared placement engine (`vliw_sched::core`): every
//! schedule must validate against the machine, and every value of a partitioned
//! schedule must flow only between ring-adjacent clusters.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use vliw_repro::vliw_core::ddg::DepKind;
use vliw_repro::vliw_core::loopgen::generator::generate_loop;
use vliw_repro::vliw_core::loopgen::CorpusConfig;
use vliw_repro::vliw_core::qrf::insert_copies;
use vliw_repro::vliw_core::sched::{modulo_schedule, ImsOptions};
use vliw_repro::vliw_core::{partition_schedule, LatencyModel, Machine, PartitionOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partitioned schedules of random loops respect the ring: every flow edge
    /// connects operations in the same or in adjacent clusters, and the
    /// schedule passes full validation (dependences and resources).
    #[test]
    fn partitioned_schedules_of_random_loops_respect_the_ring(
        seed in 0u64..2000,
        n_clusters in 2usize..7,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        let lat = LatencyModel::default();
        let machine = Machine::paper_clustered(n_clusters, lat);
        let body = insert_copies(&lp.ddg, &lat).ddg;
        let r = partition_schedule(&body, &machine, PartitionOptions::default())
            .expect("corpus loops are schedulable on clustered machines");
        prop_assert!(r.schedule.validate(&body, &machine).is_ok());
        prop_assert!(r.schedule.ii >= 1);
        for e in body.edges() {
            if e.kind != DepKind::Flow {
                continue;
            }
            let cs = r.schedule.cluster_of(&machine, e.src);
            let cd = r.schedule.cluster_of(&machine, e.dst);
            prop_assert!(
                machine.clusters_communicate(cs, cd),
                "value flows between non-adjacent clusters {} -> {} at II {}",
                cs, cd, r.schedule.ii
            );
        }
    }

    /// Plain IMS through the same placement engine: schedules of random loops
    /// validate and respect the MII lower bound on machines of varying width.
    #[test]
    fn ims_schedules_of_random_loops_validate(
        seed in 0u64..2000,
        fus in 3usize..13,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(17).wrapping_add(3));
        let lp = generate_loop(&CorpusConfig::small(1, seed), &mut rng, 0);
        let lat = LatencyModel::default();
        let machine = Machine::single_cluster(fus, 2, 1024, lat);
        let body = insert_copies(&lp.ddg, &lat).ddg;
        let r = modulo_schedule(&body, &machine, ImsOptions::default())
            .expect("corpus loops are schedulable");
        prop_assert!(r.schedule.validate(&body, &machine).is_ok());
        prop_assert!(r.schedule.ii >= r.mii.max(1));
    }
}
