//! Deterministic concurrency stress of the session memo store.
//!
//! N racing threads walk a K-machine × M-loop request grid, each in its own
//! seeded shuffled order, through the lock-striped store's compile and verify
//! slots.  The contract under any interleaving: every (key, loop) slot
//! compiles exactly once and verifies exactly once, every other request is
//! accounted as a hit, and all threads share pointer-identical artifacts — no
//! lost updates, no duplicated work.  A second test races whole parallel
//! sweeps (the session's own work-stealing executor) from several driver
//! threads and demands the same exactly-once accounting.

use std::sync::{Arc, Barrier};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use vliw_repro::vliw_core::pipeline::CompilerConfig;
use vliw_repro::vliw_core::{LatencyModel, Machine, Session, SessionBuilder};

const THREADS: usize = 8;
const LOOPS: usize = 12;
const SEED: u64 = 2098;

/// Three distinct compilation keys: two single-cluster widths plus the
/// clustered partitioner, so the stripes of the key map see unrelated keys.
fn machine_configs() -> Vec<CompilerConfig> {
    vec![
        CompilerConfig::paper_defaults(Machine::paper_single(6)),
        CompilerConfig::paper_defaults(Machine::paper_single(12)),
        CompilerConfig::paper_defaults(Machine::paper_clustered(4, LatencyModel::default())),
    ]
}

/// The full (key, loop) grid in a seeded Fisher–Yates order, so every thread
/// visits the slots in a different but reproducible sequence.
fn shuffled_pairs(keys: usize, loops: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> =
        (0..keys).flat_map(|k| (0..loops).map(move |i| (k, i))).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..pairs.len()).rev() {
        let j = rng.gen_range(0..=i);
        pairs.swap(i, j);
    }
    pairs
}

#[test]
fn racing_threads_compile_and_verify_every_slot_exactly_once() {
    let session = Session::quick(LOOPS, SEED);
    let configs = machine_configs();
    let barrier = Barrier::new(THREADS);

    // Each thread records the artifact pointer of every slot it touches.  The
    // barrier separates the compile and verify phases so the expected counter
    // totals below are exact, not bounds.
    type Compiled = Vec<(usize, usize, usize)>;
    type Verified = Vec<(usize, usize, Option<usize>)>;
    let observations: Vec<(Compiled, Verified)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (session, configs, barrier) = (&session, &configs, &barrier);
                scope.spawn(move || {
                    let compilers: Vec<_> =
                        configs.iter().map(|c| session.compiler(c.clone())).collect();
                    let mut compiled = Vec::new();
                    for (k, i) in shuffled_pairs(configs.len(), LOOPS, 0xC0FFEE + t as u64) {
                        let full = compilers[k].compile_full(i);
                        compiled.push((k, i, Arc::as_ptr(&full) as usize));
                    }
                    compiled.sort_unstable();
                    barrier.wait();
                    let mut verified = Vec::new();
                    for (k, i) in shuffled_pairs(configs.len(), LOOPS, 0xBADC0DE + t as u64) {
                        let v = compilers[k].verify(i);
                        verified.push((k, i, v.map(|a| Arc::as_ptr(&a) as usize)));
                    }
                    verified.sort_unstable();
                    (compiled, verified)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress thread panicked")).collect()
    });

    // Pointer identity across threads: one artifact per slot, ever.
    let (first_compiled, first_verified) = &observations[0];
    for (compiled, verified) in &observations[1..] {
        assert_eq!(compiled, first_compiled, "a compile slot produced two artifacts");
        assert_eq!(verified, first_verified, "a verify slot produced two verdicts");
    }

    let slots = (configs.len() * LOOPS) as u64;
    let calls = slots * THREADS as u64;
    let ok_slots = first_verified.iter().filter(|(_, _, ptr)| ptr.is_some()).count() as u64;
    assert!(ok_slots > 0, "the corpus must schedule on at least one machine");

    let stats = session.stats();
    assert_eq!(stats.unique_keys, configs.len() as u64);
    assert_eq!(stats.compilations, slots, "every slot compiles exactly once: {stats:?}");
    assert_eq!(stats.hits, calls - slots, "every other compile request is a hit: {stats:?}");
    assert_eq!(
        stats.verifications, ok_slots,
        "every schedulable slot verifies exactly once: {stats:?}"
    );
    assert_eq!(
        stats.verify_hits,
        calls - ok_slots,
        "every other verify request is a hit: {stats:?}"
    );
    assert_eq!(stats.disk_hits, 0, "no persistent layer is configured");
    assert_eq!(stats.sim_runs, 0, "nothing here simulates");
}

#[test]
fn racing_mixed_requests_keep_exact_counter_sums() {
    // Every request kind bumps exactly one counter of its family, so for any
    // interleaving the families must sum to the request totals:
    //
    //   compilations + hits + disk_hits   == compile-path requests
    //   sim_runs + sim_hits + sim_disk_hits == sim requests on schedulable loops
    //   verifications + verify_hits       == verify requests
    //
    // A single warm-up pass first compiles every (key, loop) slot, so the
    // racing phase adds only hits on the compile side and the exactly-once
    // counters stay exact rather than bounds.  No cache dir: disk summaries
    // would satisfy sim requests without a full compilation and re-shape the
    // compile counters when the backing compile happens later.
    const TRIP: u64 = 100;
    let session = Session::quick(LOOPS, SEED);
    let configs = machine_configs();

    // Warm-up: one compile-path request per slot, each a cold compilation
    // (scheduling failures are compiled-and-cached errors, so they count too).
    let mut ok_slots = 0u64;
    for config in &configs {
        let compiler = session.compiler(config.clone());
        for i in 0..LOOPS {
            ok_slots += u64::from(compiler.compile_full(i).is_ok());
        }
    }
    let slots = (configs.len() * LOOPS) as u64;
    assert!(ok_slots > 0, "the corpus must schedule on at least one machine");
    assert_eq!(session.stats().compilations, slots);

    // Racing phase: every thread sends a compile, a simulate and a verify
    // request per slot in its own shuffled order, then drives a whole sweep
    // through the session's work-stealing executor.
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (session, configs, barrier) = (&session, &configs, &barrier);
            scope.spawn(move || {
                let compilers: Vec<_> =
                    configs.iter().map(|c| session.compiler(c.clone())).collect();
                barrier.wait();
                for (k, i) in shuffled_pairs(configs.len(), LOOPS, 0xFEED + t as u64) {
                    let compiled = compilers[k].compile(i).is_ok();
                    let simulated = compilers[k].simulate(i, TRIP).is_some();
                    let verified = compilers[k].verify(i).is_some();
                    assert_eq!(compiled, simulated, "sim must answer iff the loop schedules");
                    assert_eq!(compiled, verified, "verify must answer iff the loop schedules");
                }
                let outcomes = session.sweep(|i, _| compilers[0].compile(i).is_ok());
                assert_eq!(outcomes.len(), LOOPS);
            });
        }
    });

    let stats = session.stats();
    let threads = THREADS as u64;
    // Compile-path requests: the warm-up, plus per racing thread one direct
    // compile and one simulate-internal compile per slot, plus its sweep over
    // the first key's loops.
    let compile_requests = slots + threads * (2 * slots + LOOPS as u64);
    assert_eq!(stats.unique_keys, configs.len() as u64);
    assert_eq!(
        stats.compilations + stats.hits + stats.disk_hits,
        compile_requests,
        "every compile-path request bumps exactly one compile counter: {stats:?}"
    );
    assert_eq!(stats.compilations, slots, "the racing phase must never recompile: {stats:?}");
    assert_eq!(stats.disk_hits, 0, "no persistent layer is configured");

    // Sim requests on schedulable loops: one per racing thread per ok slot.
    assert_eq!(
        stats.sim_runs + stats.sim_hits + stats.sim_disk_hits,
        threads * ok_slots,
        "every schedulable sim request bumps exactly one sim counter: {stats:?}"
    );
    assert_eq!(stats.sim_runs, ok_slots, "each (key, loop, N) simulates exactly once: {stats:?}");
    assert_eq!(stats.sim_disk_hits, 0, "no persistent layer is configured");

    // Verify requests: one per racing thread per slot (unschedulable loops
    // answer `None` but still count as verify hits).
    assert_eq!(
        stats.verifications + stats.verify_hits,
        threads * slots,
        "every verify request bumps exactly one verify counter: {stats:?}"
    );
    assert_eq!(
        stats.verifications, ok_slots,
        "each schedulable slot verifies exactly once: {stats:?}"
    );
}

#[test]
fn racing_parallel_sweeps_share_one_compilation_pass() {
    // Four drivers race the session's own work-stealing sweep executor over
    // the same configuration; the store must coalesce them onto one
    // compilation pass with exact hit accounting.
    const DRIVERS: usize = 4;
    let session = SessionBuilder::quick(LOOPS, SEED).threads(4).build();
    std::thread::scope(|scope| {
        for _ in 0..DRIVERS {
            let session = &session;
            scope.spawn(move || {
                let compiler =
                    session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
                let outcomes = session.sweep(|i, _| compiler.compile(i).is_ok());
                assert_eq!(outcomes.len(), LOOPS);
            });
        }
    });

    let stats = session.stats();
    let slots = LOOPS as u64;
    assert_eq!(stats.unique_keys, 1);
    assert_eq!(stats.compilations, slots, "racing sweeps must not recompile: {stats:?}");
    assert_eq!(stats.hits, (DRIVERS as u64 - 1) * slots, "late drivers are all hits: {stats:?}");
}
