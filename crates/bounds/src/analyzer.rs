//! The static admissibility analyzer.
//!
//! For one (loop, machine-shape) pair, [`BoundsAnalyzer::analyze`] derives
//! certified lower bounds **without invoking the compiler**, by reconstructing
//! exactly the transformed body the pipeline would schedule (unroll-factor
//! selection + unrolling + copy insertion, the `paper_defaults` configuration)
//! and reading the bounds off its arithmetic:
//!
//! * **ResMII** — the per-class `ceil(ops / units)` rows against the shape's
//!   functional-unit counts (the copy row is reported separately as the
//!   topology-relevant copy-traffic bound);
//! * **RecMII** — the recurrence bound of the transformed body, which depends
//!   only on the loop and the unroll factor, so it is computed once and cached
//!   across every shape that selects the same factor;
//! * **min-live storage** — any modulo schedule at `II <= ii_cap` keeps at
//!   least `ceil(sum of flow-edge latencies / ii_cap)` values live in steady
//!   state (each flow lifetime spans at least its latency), and the scheduler
//!   never accepts an II above `ii_cap`, so a config whose private + link
//!   pools store fewer values than that can be ruled out by pigeonhole.
//!
//! The per-`(loop, factor)` body summary (class counts, RecMII, flow-latency
//! sum) is the expensive part; it is cached behind a mutex so a sweep over 60
//! shapes builds each loop's bodies at most once per distinct unroll factor.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use vliw_ddg::{DepKind, LatencyModel, Loop, OpClass};
use vliw_machine::{ClusterId, Machine, MachineConfig};
use vliw_qrf::insert_copies;
use vliw_sched::rec_mii;
use vliw_unroll::{select_unroll_factor, unroll_ddg, DEFAULT_MAX_FACTOR};

use crate::certificate::Certificate;

/// Human name of an operation class, used in `B001-RESMII` certificates.
pub fn class_name(class: OpClass) -> &'static str {
    match class {
        OpClass::Memory => "memory",
        OpClass::Adder => "adder",
        OpClass::Multiplier => "multiplier",
        OpClass::Copy => "copy",
    }
}

/// Total value slots of a config: the pigeonhole capacity every live value
/// competes for, summed over the private pools (`clusters · q · c`) and the
/// directed link pools (`links · q · d`).
pub fn value_slots(cfg: &MachineConfig) -> usize {
    cfg.clusters * cfg.queues_per_cluster * cfg.queue_capacity
        + cfg.directed_links() * cfg.queues_per_cluster * cfg.link_depth
}

/// Certified lower bounds for one (loop, shape) pair.
///
/// All bounds are **sound**: the real compiler, scheduling the same loop on
/// any config of the shape, achieves `II >= mii()` and keeps at least
/// `min_live` values live in steady state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBounds {
    /// Name of the analyzed loop.
    pub loop_name: String,
    /// Unroll factor the compiler will select for this shape.
    pub unroll_factor: u32,
    /// Operations in the transformed (unrolled + copies) body.
    pub body_ops: usize,
    /// Copy operations the transformation inserts.
    pub num_copies: usize,
    /// Shape-only resource bound over every class, copy row included
    /// (`u32::MAX` when a class has operations but no units on the shape).
    pub res_mii: u32,
    /// The class that binds `res_mii`.
    pub res_class: OpClass,
    /// Operations of the binding class.
    pub res_ops: usize,
    /// Units of the binding class on the shape.
    pub res_units: usize,
    /// Recurrence bound of the transformed body (machine-independent given
    /// the unroll factor).
    pub rec_mii: u32,
    /// The copy row of the resource bound (1 when the body has no copies).
    pub copy_mii: u32,
    /// Copy units on the shape.
    pub copy_units: usize,
    /// Sum of flow-edge latencies of the transformed body, the numerator of
    /// the min-live bound.
    pub sum_flow_latency: u64,
    /// Largest II the scheduler's default search would accept for this body
    /// on this shape: `2·MII + 64` for plain IMS, and for the partitioner the
    /// cap of its single-cluster collapse fallback (`3·collapse_MII + 64`,
    /// which dominates the partitioned search's own `3·MII + 64`).
    pub ii_cap: u32,
    /// Certified lower bound on simultaneously live values at any accepted II.
    pub min_live: usize,
}

impl LoopBounds {
    /// The combined lower bound on the initiation interval.
    pub fn mii(&self) -> u32 {
        self.res_mii.max(self.rec_mii).max(1)
    }

    /// Lower bound on simultaneously live values at a specific `ii`
    /// (decreasing in `ii`; [`LoopBounds::min_live`] evaluates it at
    /// [`LoopBounds::ii_cap`]).
    pub fn min_live_at(&self, ii: u32) -> usize {
        if ii == 0 {
            return 0;
        }
        self.sum_flow_latency.div_ceil(u64::from(ii)) as usize
    }

    /// The `B001-RESMII` certificate for this shape.
    pub fn res_certificate(&self) -> Certificate {
        Certificate::ResMii {
            loop_name: self.loop_name.clone(),
            class: class_name(self.res_class).to_string(),
            ops: self.res_ops,
            units: self.res_units,
            bound: self.res_mii,
        }
    }

    /// The `B002-RECMII` certificate.
    pub fn rec_certificate(&self) -> Certificate {
        Certificate::RecMii {
            loop_name: self.loop_name.clone(),
            unroll_factor: self.unroll_factor,
            bound: self.rec_mii,
        }
    }

    /// The `B005-COPYBUS` certificate (only meaningful when the body has
    /// copies; the bound is trivially 1 otherwise).
    pub fn copy_certificate(&self) -> Certificate {
        Certificate::CopyBus {
            loop_name: self.loop_name.clone(),
            copies: self.num_copies,
            copy_units: self.copy_units,
            bound: self.copy_mii,
        }
    }

    /// `B003-IILIMIT` when an explicit II search limit is below the certified
    /// MII: the II search is provably skipped without the compile being
    /// attempted.  On a single-cluster machine this predicts the scheduler's
    /// refusal exactly; on a clustered machine the partitioner's collapse
    /// fallback (which sets its own cap) may still produce a schedule, so the
    /// certificate proves only that the *partitioned* search never ran.
    pub fn ii_limit_certificate(&self, max_ii: Option<u32>) -> Option<Certificate> {
        let limit = max_ii?;
        if self.mii() > limit {
            Some(Certificate::IiLimit { loop_name: self.loop_name.clone(), mii: self.mii(), limit })
        } else {
            None
        }
    }

    /// `B004-STORAGE` when the config's total value slots cannot hold the
    /// certified minimum of live values — allocation cannot fit and the
    /// simulator must observe an overflow, by pigeonhole.
    pub fn storage_certificate(&self, value_slots: usize) -> Option<Certificate> {
        if self.min_live > value_slots {
            Some(Certificate::Storage {
                loop_name: self.loop_name.clone(),
                min_live: self.min_live,
                value_slots,
                ii_cap: self.ii_cap,
            })
        } else {
            None
        }
    }
}

/// Everything about a transformed body that the bounds need and that depends
/// only on (loop, unroll factor) — cached across shapes.
#[derive(Debug, Clone, Copy)]
struct BodySummary {
    class_counts: [usize; OpClass::COUNT],
    body_ops: usize,
    num_copies: usize,
    rec_mii: u32,
    sum_flow_latency: u64,
}

/// A poisoned cache only ever holds valid summaries, so analysis continues
/// through it instead of panicking.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The analyzer: owns the latency model the transformation uses and the
/// per-`(loop, factor)` body-summary cache.
///
/// One analyzer serves a whole sweep; `analyze` is `&self` and thread-safe,
/// so the sweep executor's workers share the cache.
#[derive(Debug)]
pub struct BoundsAnalyzer {
    latencies: LatencyModel,
    max_unroll: u32,
    cache: Mutex<HashMap<(usize, u32), BodySummary>>,
}

impl BoundsAnalyzer {
    /// An analyzer mirroring the pipeline's `paper_defaults` transformation
    /// (copies on, unrolling on with factor ≤ 4) for the given latency model.
    pub fn new(latencies: LatencyModel) -> Self {
        BoundsAnalyzer {
            latencies,
            max_unroll: DEFAULT_MAX_FACTOR,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the unroll-factor cap (must match the compiler configuration
    /// being predicted).
    pub fn with_max_unroll(mut self, max_unroll: u32) -> Self {
        self.max_unroll = max_unroll;
        self
    }

    /// Derives the certified bounds of `lp` on the shape of `machine`.
    ///
    /// `loop_index` keys the cross-shape cache (callers iterate a fixed
    /// corpus, so the index is stable and cheaper than hashing the name).
    /// Only the machine's *shape* is consulted — functional-unit counts and
    /// whether it is clustered — never its storage budgets, so a probe
    /// machine and every storage config of the shape yield identical bounds.
    pub fn analyze(&self, loop_index: usize, lp: &Loop, machine: &Machine) -> LoopBounds {
        let _span = vliw_obs::span!("bounds", loop_index);
        let factor = select_unroll_factor(&lp.ddg, machine, self.max_unroll);
        let summary = self.body_summary(loop_index, lp, factor);

        let units = machine.class_counts();
        let mut best: Option<(OpClass, usize, usize, u32)> = None;
        for class in OpClass::ALL {
            let ops = summary.class_counts[class.index()];
            if ops == 0 {
                continue;
            }
            let u = units[class.index()];
            let row = if u == 0 { u32::MAX } else { ops.div_ceil(u).min(u32::MAX as usize) as u32 };
            if best.is_none_or(|(_, _, _, b)| row > b) {
                best = Some((class, ops, u, row));
            }
        }
        let (res_class, res_ops, res_units, res_row) =
            best.unwrap_or((OpClass::Memory, 0, units[OpClass::Memory.index()], 1));
        let res_mii = res_row.max(1);

        let copy_units = units[OpClass::Copy.index()];
        let copies = summary.class_counts[OpClass::Copy.index()];
        let copy_mii = if copies == 0 {
            1
        } else if copy_units == 0 {
            u32::MAX
        } else {
            copies.div_ceil(copy_units).min(u32::MAX as usize) as u32
        };

        let mii = res_mii.max(summary.rec_mii).max(1);
        // The largest II the scheduler's default search accepts, which anchors
        // the min-live bound.  The partitioner's last-resort collapse fallback
        // schedules the whole body on cluster 0 under its own cap, derived
        // from the *single-cluster* resource bound — that bound dominates the
        // machine-wide one (one cluster has fewer units), so the collapse cap
        // is the binding limit on clustered shapes.
        let ii_cap = if machine.is_clustered() {
            let mut collapse_lower = summary.rec_mii.max(1);
            for class in OpClass::ALL {
                let ops = summary.class_counts[class.index()];
                if ops == 0 {
                    continue;
                }
                let u = machine.fus_of_class_in_cluster(ClusterId(0), class).count();
                let row =
                    if u == 0 { u32::MAX } else { ops.div_ceil(u).min(u32::MAX as usize) as u32 };
                collapse_lower = collapse_lower.max(row);
            }
            collapse_lower.max(mii).saturating_mul(3).saturating_add(64)
        } else {
            mii.saturating_mul(2).saturating_add(64)
        };
        let min_live = summary.sum_flow_latency.div_ceil(u64::from(ii_cap)) as usize;

        LoopBounds {
            loop_name: lp.name.clone(),
            unroll_factor: factor,
            body_ops: summary.body_ops,
            num_copies: summary.num_copies,
            res_mii,
            res_class,
            res_ops,
            res_units,
            rec_mii: summary.rec_mii,
            copy_mii,
            copy_units,
            sum_flow_latency: summary.sum_flow_latency,
            ii_cap,
            min_live,
        }
    }

    fn body_summary(&self, loop_index: usize, lp: &Loop, factor: u32) -> BodySummary {
        if let Some(s) = lock(&self.cache).get(&(loop_index, factor)) {
            return *s;
        }
        let unrolled = unroll_ddg(&lp.ddg, factor);
        let ins = insert_copies(&unrolled.ddg, &self.latencies);
        let sum_flow_latency =
            ins.ddg.edges().filter(|e| e.kind == DepKind::Flow).map(|e| u64::from(e.latency)).sum();
        let summary = BodySummary {
            class_counts: ins.ddg.class_counts(),
            body_ops: ins.ddg.num_ops(),
            num_copies: ins.num_copies(),
            rec_mii: rec_mii(&ins.ddg),
            sum_flow_latency,
        };
        lock(&self.cache).insert((loop_index, factor), summary);
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::kernels;
    use vliw_partition::{partition_schedule_with, PartitionOptions, PartitionScratch};
    use vliw_qrf::{allocate_queues, use_lifetimes};
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn lat() -> LatencyModel {
        LatencyModel::default()
    }

    /// The transformed body the analyzer predicts, rebuilt the compiler's way.
    fn transformed(lp: &Loop, machine: &Machine) -> vliw_ddg::Ddg {
        let factor = select_unroll_factor(&lp.ddg, machine, DEFAULT_MAX_FACTOR);
        insert_copies(&unroll_ddg(&lp.ddg, factor).ddg, &lat()).ddg
    }

    #[test]
    fn bounds_match_the_schedulers_mii_arithmetic() {
        let analyzer = BoundsAnalyzer::new(lat());
        let mut scratch = PartitionScratch::default();
        let machine = Machine::paper_clustered(4, lat());
        for (i, lp) in kernels::all_kernels(lat()).iter().enumerate() {
            let bounds = analyzer.analyze(i, lp, &machine);
            let body = transformed(lp, &machine);
            let r =
                partition_schedule_with(&body, &machine, PartitionOptions::default(), &mut scratch)
                    .unwrap_or_else(|e| panic!("{}: {e}", lp.name));
            assert_eq!(bounds.res_mii, r.res_mii, "{}", lp.name);
            assert_eq!(bounds.rec_mii, r.rec_mii, "{}", lp.name);
            assert_eq!(bounds.mii(), r.mii, "{}", lp.name);
            assert!(r.schedule.ii >= bounds.mii(), "{}", lp.name);
            assert_eq!(bounds.body_ops, body.num_ops(), "{}", lp.name);
        }
    }

    #[test]
    fn bounds_are_sound_on_single_cluster_machines_too() {
        let analyzer = BoundsAnalyzer::new(lat());
        let machine = Machine::single_cluster(6, 8, 32, lat());
        for (i, lp) in kernels::all_kernels(lat()).iter().enumerate() {
            let bounds = analyzer.analyze(i, lp, &machine);
            let body = transformed(lp, &machine);
            let r = modulo_schedule(&body, &machine, ImsOptions::default()).unwrap();
            assert!(r.schedule.ii >= bounds.mii(), "{}", lp.name);
            assert!(r.schedule.ii <= bounds.ii_cap, "{}", lp.name);
        }
    }

    #[test]
    fn min_live_never_exceeds_the_allocated_slots() {
        let analyzer = BoundsAnalyzer::new(lat());
        let mut scratch = PartitionScratch::default();
        let machine = Machine::paper_clustered(2, lat());
        for (i, lp) in kernels::all_kernels(lat()).iter().enumerate() {
            let bounds = analyzer.analyze(i, lp, &machine);
            let body = transformed(lp, &machine);
            let r =
                partition_schedule_with(&body, &machine, PartitionOptions::default(), &mut scratch)
                    .unwrap();
            let alloc = allocate_queues(&use_lifetimes(&body, &r.schedule), r.schedule.ii);
            let slots: usize = alloc.queue_depths.iter().sum();
            assert!(
                bounds.min_live <= slots,
                "{}: min_live {} > allocated slots {slots}",
                lp.name,
                bounds.min_live
            );
            // The bound tightens as the II drops, and the achieved II is
            // inside the certified cap.
            assert!(bounds.min_live_at(r.schedule.ii) >= bounds.min_live, "{}", lp.name);
        }
    }

    #[test]
    fn ii_limit_certificate_predicts_the_schedulers_refusal() {
        let analyzer = BoundsAnalyzer::new(lat());
        let machine = Machine::single_cluster(6, 8, 32, lat());
        let lp = kernels::dot_product(lat(), 100);
        let bounds = analyzer.analyze(0, &lp, &machine);
        assert!(bounds.mii() > 1, "dot product has a recurrence");
        let limit = bounds.mii() - 1;
        let cert = bounds.ii_limit_certificate(Some(limit)).expect("limit below MII must certify");
        assert_eq!(cert.code(), "B003-IILIMIT");
        let body = transformed(&lp, &machine);
        let opts = ImsOptions { max_ii: Some(limit), ..ImsOptions::default() };
        assert!(
            modulo_schedule(&body, &machine, opts).is_err(),
            "the scheduler must refuse exactly where the certificate says"
        );
        assert!(bounds.ii_limit_certificate(Some(bounds.mii())).is_none());
        assert!(bounds.ii_limit_certificate(None).is_none());
    }

    #[test]
    fn the_ii_cap_covers_the_partitioners_collapse_fallback() {
        // Force the collapse fallback: an explicit max_ii below the MII skips
        // the partitioned search entirely, and the fallback's own cap takes
        // over.  The certified ii_cap must still bound the accepted II, or
        // the min-live pigeonhole would overstate the live floor.
        let analyzer = BoundsAnalyzer::new(lat());
        let machine = Machine::paper_clustered(4, lat());
        let mut scratch = PartitionScratch::default();
        for (i, lp) in kernels::all_kernels(lat()).iter().enumerate() {
            let bounds = analyzer.analyze(i, lp, &machine);
            let body = transformed(lp, &machine);
            let opts = PartitionOptions { max_ii: Some(0), ..PartitionOptions::default() };
            if let Ok(r) = partition_schedule_with(&body, &machine, opts, &mut scratch) {
                assert!(
                    r.schedule.ii <= bounds.ii_cap,
                    "{}: collapsed II {} above cap {}",
                    lp.name,
                    r.schedule.ii,
                    bounds.ii_cap
                );
            }
        }
    }

    #[test]
    fn storage_certificate_fires_by_pigeonhole() {
        let analyzer = BoundsAnalyzer::new(lat());
        let machine = Machine::paper_clustered(2, lat());
        let lp = kernels::wide_parallel(lat(), 100);
        let bounds = analyzer.analyze(0, &lp, &machine);
        assert!(bounds.min_live >= 1);
        let cert = bounds.storage_certificate(bounds.min_live - 1).expect("too-small pool");
        assert_eq!(cert.code(), "B004-STORAGE");
        assert!(bounds.storage_certificate(bounds.min_live).is_none());
    }

    #[test]
    fn the_body_summary_is_cached_per_unroll_factor() {
        let analyzer = BoundsAnalyzer::new(lat());
        let lp = kernels::daxpy(lat(), 100);
        let a = analyzer.analyze(3, &lp, &Machine::paper_clustered(4, lat()));
        let b = analyzer.analyze(3, &lp, &Machine::paper_clustered(4, lat()));
        assert_eq!(a, b);
        assert_eq!(lock(&analyzer.cache).len(), 1);
        // A different shape may pick a different factor; the cache grows by at
        // most one entry per distinct factor.
        let _ = analyzer.analyze(3, &lp, &Machine::paper_clustered(16, lat()));
        assert!(lock(&analyzer.cache).len() <= 2);
    }

    #[test]
    fn certificates_carry_the_analyzers_numbers() {
        let analyzer = BoundsAnalyzer::new(lat());
        let machine = Machine::paper_clustered(4, lat());
        let lp = kernels::daxpy(lat(), 100);
        let bounds = analyzer.analyze(0, &lp, &machine);
        let res = bounds.res_certificate();
        assert_eq!(res.code(), "B001-RESMII");
        assert!(res.to_string().contains(&lp.name));
        assert_eq!(bounds.rec_certificate().code(), "B002-RECMII");
        let copy = bounds.copy_certificate();
        assert_eq!(copy.code(), "B005-COPYBUS");
        assert!(bounds.copy_mii <= bounds.res_mii, "the copy row is one of the res rows");
    }

    #[test]
    fn value_slots_sum_private_and_link_pools() {
        use vliw_machine::{FuMix, Topology};
        let cfg = MachineConfig {
            clusters: 4,
            fu_mix: FuMix::Basic,
            queues_per_cluster: 2,
            queue_capacity: 3,
            link_depth: 5,
            topology: Topology::Ring,
        };
        // 4 clusters · 2 · 3 private + 8 ring links · 2 · 5 link slots.
        assert_eq!(value_slots(&cfg), 24 + 80);
        let xbar = MachineConfig { topology: Topology::Crossbar, ..cfg };
        assert_eq!(value_slots(&xbar), 24 + 12 * 2 * 5);
    }
}
