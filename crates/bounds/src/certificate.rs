//! Machine-checkable pruning certificates with stable reason codes.
//!
//! Every verdict the pruned sweep assigns without compiling carries a
//! [`Certificate`]: a small arithmetic fact (`B001-RESMII` … `B006-MONOTONE`)
//! that any reader can recheck from the numbers in the certificate itself.
//! The vocabulary deliberately mirrors `vliw_verify::Violation`: one stable
//! lint-style code per reason class, a `Display` form that leads with the
//! code, and a hand-written wire form keyed on `"code"`.

use std::fmt;

use serde::{de, Deserialize, Serialize, Value};

/// One certified reason a sweep verdict was assigned without compiling.
///
/// Each variant records exactly the numbers needed to recheck the bound, so
/// the `--audit` mode (and any sceptical reader) can verify a prune from the
/// certificate alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// Shape-only per-class resource bound: `ops` operations of `class` over
    /// `units` functional units force `II >= bound` on every config of the
    /// shape.
    ResMii {
        /// Loop the bound belongs to.
        loop_name: String,
        /// Binding operation class (`memory`, `adder`, `multiplier`, `copy`).
        class: String,
        /// Operations of the binding class in the transformed body.
        ops: usize,
        /// Functional units of that class on the shape.
        units: usize,
        /// The resulting lower bound on the initiation interval.
        bound: u32,
    },
    /// Recurrence bound: the loop's dependence circuits force `II >= bound`
    /// at the given unroll factor, independent of the machine.
    RecMii {
        /// Loop the bound belongs to.
        loop_name: String,
        /// Unroll factor of the transformed body the bound was computed on.
        unroll_factor: u32,
        /// The recurrence-constrained lower bound.
        bound: u32,
    },
    /// The MII lower bound already exceeds the scheduler's II search limit:
    /// compilation would fail with `IiLimitReached` without being attempted.
    IiLimit {
        /// Loop the bound belongs to.
        loop_name: String,
        /// Certified lower bound on the initiation interval.
        mii: u32,
        /// The II search limit in force.
        limit: u32,
    },
    /// Lifetime storage pigeonhole: any modulo schedule keeps at least
    /// `min_live` values live in steady state (sum of flow-edge latencies over
    /// the largest II the scheduler would accept), but the config stores only
    /// `value_slots` values across every private and link pool combined.
    Storage {
        /// Loop the bound belongs to.
        loop_name: String,
        /// Certified lower bound on simultaneously live values.
        min_live: usize,
        /// Total value slots of the config (private + link pools).
        value_slots: usize,
        /// The II cap the live-value bound was evaluated at.
        ii_cap: u32,
    },
    /// Copy-traffic bound: the transformed body's inter-cluster copy
    /// operations over the shape's copy units force `II >= bound` — the
    /// topology-relevant row of the resource bound.
    CopyBus {
        /// Loop the bound belongs to.
        loop_name: String,
        /// Copy operations in the transformed body.
        copies: usize,
        /// Copy units on the shape.
        copy_units: usize,
        /// The resulting lower bound on the initiation interval.
        bound: u32,
    },
    /// Threshold transfer from one witness compilation: the proven storage
    /// monotonicity (`tests/sweep_monotonicity.rs`) lets every config of the
    /// shape inherit its verdict by comparing axes against these thresholds.
    Monotone {
        /// Loop the thresholds belong to.
        loop_name: String,
        /// Allocation fits iff `queues_per_cluster >= queues_needed` …
        queues_needed: usize,
        /// … and `queue_capacity >= capacity_needed` …
        capacity_needed: usize,
        /// … and `link_depth >= link_depth_needed`.
        link_depth_needed: usize,
        /// Simulation is clean iff additionally `q·c >= private_peak` …
        private_peak: usize,
        /// … and `q·d >= comm_peak` (and the witness had no schedule faults).
        comm_peak: usize,
    },
}

impl Certificate {
    /// The stable reason code of this certificate class — the vocabulary the
    /// pruned sweep, the audit mode and the README code table share.
    pub fn code(&self) -> &'static str {
        match self {
            Certificate::ResMii { .. } => "B001-RESMII",
            Certificate::RecMii { .. } => "B002-RECMII",
            Certificate::IiLimit { .. } => "B003-IILIMIT",
            Certificate::Storage { .. } => "B004-STORAGE",
            Certificate::CopyBus { .. } => "B005-COPYBUS",
            Certificate::Monotone { .. } => "B006-MONOTONE",
        }
    }

    /// Every reason code, in numeric order (for doc-sync checks).
    pub const ALL_CODES: [&'static str; 6] = [
        "B001-RESMII",
        "B002-RECMII",
        "B003-IILIMIT",
        "B004-STORAGE",
        "B005-COPYBUS",
        "B006-MONOTONE",
    ];

    /// Name of the loop the certificate is about.
    pub fn loop_name(&self) -> &str {
        match self {
            Certificate::ResMii { loop_name, .. }
            | Certificate::RecMii { loop_name, .. }
            | Certificate::IiLimit { loop_name, .. }
            | Certificate::Storage { loop_name, .. }
            | Certificate::CopyBus { loop_name, .. }
            | Certificate::Monotone { loop_name, .. } => loop_name,
        }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Certificate::ResMii { loop_name, class, ops, units, bound } => write!(
                f,
                "loop `{loop_name}`: {ops} {class} ops over {units} units force II >= {bound} \
                 on this shape"
            ),
            Certificate::RecMii { loop_name, unroll_factor, bound } => write!(
                f,
                "loop `{loop_name}`: recurrence circuits force II >= {bound} at unroll \
                 factor {unroll_factor}"
            ),
            Certificate::IiLimit { loop_name, mii, limit } => write!(
                f,
                "loop `{loop_name}`: MII {mii} exceeds the II search limit {limit}; \
                 unschedulable without compiling"
            ),
            Certificate::Storage { loop_name, min_live, value_slots, ii_cap } => write!(
                f,
                "loop `{loop_name}`: steady state keeps >= {min_live} values live at any \
                 II <= {ii_cap}, but the config stores only {value_slots}"
            ),
            Certificate::CopyBus { loop_name, copies, copy_units, bound } => write!(
                f,
                "loop `{loop_name}`: {copies} copy ops over {copy_units} copy units force \
                 II >= {bound}"
            ),
            Certificate::Monotone {
                loop_name,
                queues_needed,
                capacity_needed,
                link_depth_needed,
                private_peak,
                comm_peak,
            } => write!(
                f,
                "loop `{loop_name}`: witness thresholds transfer — alloc fits iff \
                 q >= {queues_needed}, c >= {capacity_needed}, d >= {link_depth_needed}; \
                 sim clean iff q*c >= {private_peak} and q*d >= {comm_peak}"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire form.  The vendored serde derive only covers named-field structs and
// C-like enums, so the tagged union is serialized by hand, exactly like
// `vliw_verify::Violation`: `{"code": "B001-RESMII", ...fields}` with the
// reason code doubling as the wire tag.
// ---------------------------------------------------------------------------

fn entry(name: &str, v: Value) -> (String, Value) {
    (name.to_string(), v)
}

fn uint(v: u64) -> Value {
    Value::UInt(v)
}

impl Serialize for Certificate {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            entry("code", Value::String(self.code().to_string())),
            entry("loop", Value::String(self.loop_name().to_string())),
        ];
        match self {
            Certificate::ResMii { class, ops, units, bound, .. } => {
                entries.push(entry("class", Value::String(class.clone())));
                entries.push(entry("ops", uint(*ops as u64)));
                entries.push(entry("units", uint(*units as u64)));
                entries.push(entry("bound", uint(u64::from(*bound))));
            }
            Certificate::RecMii { unroll_factor, bound, .. } => {
                entries.push(entry("unroll_factor", uint(u64::from(*unroll_factor))));
                entries.push(entry("bound", uint(u64::from(*bound))));
            }
            Certificate::IiLimit { mii, limit, .. } => {
                entries.push(entry("mii", uint(u64::from(*mii))));
                entries.push(entry("limit", uint(u64::from(*limit))));
            }
            Certificate::Storage { min_live, value_slots, ii_cap, .. } => {
                entries.push(entry("min_live", uint(*min_live as u64)));
                entries.push(entry("value_slots", uint(*value_slots as u64)));
                entries.push(entry("ii_cap", uint(u64::from(*ii_cap))));
            }
            Certificate::CopyBus { copies, copy_units, bound, .. } => {
                entries.push(entry("copies", uint(*copies as u64)));
                entries.push(entry("copy_units", uint(*copy_units as u64)));
                entries.push(entry("bound", uint(u64::from(*bound))));
            }
            Certificate::Monotone {
                queues_needed,
                capacity_needed,
                link_depth_needed,
                private_peak,
                comm_peak,
                ..
            } => {
                entries.push(entry("queues_needed", uint(*queues_needed as u64)));
                entries.push(entry("capacity_needed", uint(*capacity_needed as u64)));
                entries.push(entry("link_depth_needed", uint(*link_depth_needed as u64)));
                entries.push(entry("private_peak", uint(*private_peak as u64)));
                entries.push(entry("comm_peak", uint(*comm_peak as u64)));
            }
        }
        Value::Object(entries)
    }
}

fn usize_field(entries: &[(String, Value)], name: &str) -> Result<usize, de::Error> {
    de::field::<u64>(entries, name).map(|x| x as usize)
}

fn u32_field(entries: &[(String, Value)], name: &str) -> Result<u32, de::Error> {
    de::field::<u64>(entries, name).map(|x| x as u32)
}

impl Deserialize for Certificate {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let entries = v.as_object().ok_or_else(|| de::Error::unexpected("object", v))?;
        let code: String = de::field(entries, "code")?;
        let loop_name: String = de::field(entries, "loop")?;
        match code.as_str() {
            "B001-RESMII" => Ok(Certificate::ResMii {
                loop_name,
                class: de::field(entries, "class")?,
                ops: usize_field(entries, "ops")?,
                units: usize_field(entries, "units")?,
                bound: u32_field(entries, "bound")?,
            }),
            "B002-RECMII" => Ok(Certificate::RecMii {
                loop_name,
                unroll_factor: u32_field(entries, "unroll_factor")?,
                bound: u32_field(entries, "bound")?,
            }),
            "B003-IILIMIT" => Ok(Certificate::IiLimit {
                loop_name,
                mii: u32_field(entries, "mii")?,
                limit: u32_field(entries, "limit")?,
            }),
            "B004-STORAGE" => Ok(Certificate::Storage {
                loop_name,
                min_live: usize_field(entries, "min_live")?,
                value_slots: usize_field(entries, "value_slots")?,
                ii_cap: u32_field(entries, "ii_cap")?,
            }),
            "B005-COPYBUS" => Ok(Certificate::CopyBus {
                loop_name,
                copies: usize_field(entries, "copies")?,
                copy_units: usize_field(entries, "copy_units")?,
                bound: u32_field(entries, "bound")?,
            }),
            "B006-MONOTONE" => Ok(Certificate::Monotone {
                loop_name,
                queues_needed: usize_field(entries, "queues_needed")?,
                capacity_needed: usize_field(entries, "capacity_needed")?,
                link_depth_needed: usize_field(entries, "link_depth_needed")?,
                private_peak: usize_field(entries, "private_peak")?,
                comm_peak: usize_field(entries, "comm_peak")?,
            }),
            other => Err(de::Error::custom(format!("unknown reason code `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_certificate() -> Vec<Certificate> {
        vec![
            Certificate::ResMii {
                loop_name: "synth_0001".into(),
                class: "adder".into(),
                ops: 12,
                units: 4,
                bound: 3,
            },
            Certificate::RecMii { loop_name: "synth_0001".into(), unroll_factor: 2, bound: 5 },
            Certificate::IiLimit { loop_name: "synth_0002".into(), mii: 9, limit: 8 },
            Certificate::Storage {
                loop_name: "synth_0003".into(),
                min_live: 40,
                value_slots: 32,
                ii_cap: 73,
            },
            Certificate::CopyBus {
                loop_name: "synth_0004".into(),
                copies: 9,
                copy_units: 4,
                bound: 3,
            },
            Certificate::Monotone {
                loop_name: "synth_0005".into(),
                queues_needed: 3,
                capacity_needed: 4,
                link_depth_needed: 2,
                private_peak: 11,
                comm_peak: 5,
            },
        ]
    }

    #[test]
    fn codes_are_stable_unique_and_complete() {
        let codes: Vec<&str> = every_certificate().iter().map(|c| c.code()).collect();
        assert_eq!(codes, Certificate::ALL_CODES);
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), Certificate::ALL_CODES.len());
        assert!(codes.iter().all(|c| c.starts_with('B')));
    }

    #[test]
    fn display_leads_with_the_code_and_names_the_loop() {
        for c in every_certificate() {
            let s = c.to_string();
            assert!(s.starts_with(&format!("[{}]", c.code())), "{s}");
            assert!(s.contains(&format!("`{}`", c.loop_name())), "{s}");
        }
    }

    #[test]
    fn certificates_round_trip_through_the_wire_form() {
        for c in every_certificate() {
            let json = serde_json::to_string(&c).unwrap();
            let back: Certificate = serde_json::from_str(&json).unwrap();
            assert_eq!(back, c, "{json}");
            assert!(json.contains(&format!("\"code\":\"{}\"", c.code())), "{json}");
        }
    }

    #[test]
    fn unknown_codes_are_rejected() {
        assert!(serde_json::from_str::<Certificate>(
            "{\"code\": \"B099-MADE-UP\", \"loop\": \"x\"}"
        )
        .is_err());
        assert!(serde_json::from_str::<Certificate>("{\"loop\": \"x\"}").is_err());
        assert!(serde_json::from_str::<Certificate>("[3]").is_err());
    }
}
