//! `vliw-bounds`: certified static admissibility analysis for the design-space
//! sweep.
//!
//! The sweep asks, for every (config, loop) pair, three questions the compiler
//! answers by scheduling, allocating and simulating: *schedulable?  does the
//! allocation fit?  is the simulation clean?*  This crate answers a cheaper
//! question first — **can the answer be proved from DDG arithmetic alone?** —
//! and hands the sweep a machine-checkable [`Certificate`] whenever it can:
//!
//! * [`B001-RESMII`](Certificate::ResMii) / [`B002-RECMII`](Certificate::RecMii)
//!   — the classic lower bounds of modulo scheduling, generalized to
//!   shape-only inputs so one analysis covers every storage config of a shape;
//! * [`B003-IILIMIT`](Certificate::IiLimit) — an explicit II search limit
//!   below the certified MII proves the scheduler would refuse;
//! * [`B004-STORAGE`](Certificate::Storage) — a lifetime pigeonhole: the body
//!   keeps more values live than the config's private + link pools can store;
//! * [`B005-COPYBUS`](Certificate::CopyBus) — the copy-traffic row of the
//!   resource bound, the topology-relevant cost of clustering;
//! * [`B006-MONOTONE`](Certificate::Monotone) — threshold transfer from one
//!   witness compilation per shape, exploiting the proven storage
//!   monotonicity of the sweep's verdict bits.
//!
//! The analyzer is *trusted because it is tested*, not assumed: the pruned
//! sweep's `--audit` mode compiles a seeded sample of pruned points and
//! asserts verdict agreement, and `tests/bounds_soundness.rs` differentially
//! tests every bound against both schedulers on random loops.
//!
//! ```
//! use vliw_bounds::BoundsAnalyzer;
//! use vliw_ddg::{kernels, LatencyModel};
//! use vliw_machine::Machine;
//!
//! let lat = LatencyModel::default();
//! let machine = Machine::paper_clustered(4, lat);
//! let lp = kernels::daxpy(lat, 100);
//! let bounds = BoundsAnalyzer::new(lat).analyze(0, &lp, &machine);
//! assert!(bounds.mii() >= 1);
//! assert_eq!(bounds.res_certificate().code(), "B001-RESMII");
//! ```

pub mod analyzer;
pub mod certificate;

pub use analyzer::{class_name, value_slots, BoundsAnalyzer, LoopBounds};
pub use certificate::Certificate;
