//! Microbenchmarks of the individual compiler passes: MII computation, iterative
//! modulo scheduling, partitioning, queue allocation and copy insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vliw_bench::bench_config;
use vliw_core::pipeline::CompilerConfig;
use vliw_core::qrf::{allocate_queues, insert_copies, use_lifetimes};
use vliw_core::sched::{mii, modulo_schedule, ImsOptions};
use vliw_core::unroll::unroll_ddg;
use vliw_core::{kernels, partition_schedule, LatencyModel, Machine, PartitionOptions, Session};

fn bench_ims(c: &mut Criterion) {
    let lat = LatencyModel::default();
    let machine = Machine::single_cluster(12, 4, 32, lat);
    let mut group = c.benchmark_group("ims");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    for lp in kernels::all_kernels(lat) {
        let unrolled = unroll_ddg(&lp.ddg, 4).ddg;
        group.bench_with_input(BenchmarkId::new("mii", &lp.name), &unrolled, |b, g| {
            b.iter(|| mii(g, &machine).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("modulo_schedule_x4", &lp.name),
            &unrolled,
            |b, g| b.iter(|| modulo_schedule(g, &machine, ImsOptions::default()).unwrap()),
        );
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let lat = LatencyModel::default();
    let machine = Machine::paper_clustered(4, lat);
    let mut group = c.benchmark_group("partition");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    for lp in kernels::all_kernels(lat) {
        let body = insert_copies(&unroll_ddg(&lp.ddg, 2).ddg, &lat).ddg;
        group.bench_with_input(
            BenchmarkId::new("partition_schedule_x2", &lp.name),
            &body,
            |b, g| b.iter(|| partition_schedule(g, &machine, PartitionOptions::default()).unwrap()),
        );
    }
    group.finish();
}

fn bench_qrf(c: &mut Criterion) {
    let lat = LatencyModel::default();
    let machine = Machine::single_cluster(12, 4, 32, lat);
    let mut group = c.benchmark_group("qrf");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    for lp in kernels::all_kernels(lat) {
        let body = insert_copies(&unroll_ddg(&lp.ddg, 4).ddg, &lat).ddg;
        let sched = modulo_schedule(&body, &machine, ImsOptions::default()).unwrap().schedule;
        let lts = use_lifetimes(&body, &sched);
        group.bench_with_input(BenchmarkId::new("allocate_queues", &lp.name), &lts, |b, l| {
            b.iter(|| allocate_queues(l, sched.ii))
        });
        group.bench_with_input(BenchmarkId::new("insert_copies", &lp.name), &lp.ddg, |b, g| {
            b.iter(|| insert_copies(g, &lat))
        });
    }
    group.finish();
}

fn bench_placement_engine(c: &mut Criterion) {
    // Cold scheduling of the whole 32-loop bench corpus, isolated from the rest
    // of the pipeline — the before/after comparison point for hot-path work on
    // the shared placement engine (ready queue, indexed MRT probes).  CI runs
    // this bench and uploads the report so the trend is tracked per PR;
    // EXPERIMENTS.md records the history.
    let lat = LatencyModel::default();
    let single = Machine::paper_single(6);
    let clustered = Machine::paper_clustered(4, lat);
    let bodies: Vec<_> =
        bench_config().corpus().iter().map(|lp| insert_copies(&lp.ddg, &lat).ddg).collect();
    let mut group = c.benchmark_group("placement");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("ims_corpus_cold", |b| {
        b.iter(|| {
            bodies
                .iter()
                .map(|g| modulo_schedule(g, &single, ImsOptions::default()).unwrap().schedule.ii)
                .sum::<u32>()
        })
    });
    group.bench_function("partition_corpus_cold", |b| {
        b.iter(|| {
            bodies
                .iter()
                .map(|g| {
                    partition_schedule(g, &clustered, PartitionOptions::default())
                        .unwrap()
                        .schedule
                        .ii
                })
                .sum::<u32>()
        })
    });
    group.finish();
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    // Cold: one compilation per loop through the memo store (fresh session each
    // iteration).  The delta against `modulo_schedule` above is the session's
    // bookkeeping overhead.
    group.bench_function("compile_corpus_cold", |b| {
        b.iter(|| {
            let session = Session::new(bench_config());
            let compiler =
                session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
            session.sweep(|i, _| compiler.compile(i).is_ok())
        })
    });
    // Warm: every request is a cache hit — the per-request cost of the store's
    // lock-free fast path.
    let session = Session::new(bench_config());
    let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
    session.sweep(|i, _| compiler.compile(i).is_ok());
    group.bench_function("compile_corpus_warm", |b| {
        b.iter(|| session.sweep(|i, _| compiler.compile(i).is_ok()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ims,
    bench_partition,
    bench_qrf,
    bench_placement_engine,
    bench_session
);
criterion_main!(benches);
