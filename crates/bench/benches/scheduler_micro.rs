//! Microbenchmarks of the individual compiler passes: MII computation, iterative
//! modulo scheduling, partitioning, queue allocation and copy insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vliw_core::qrf::{allocate_queues, insert_copies, use_lifetimes};
use vliw_core::sched::{mii, modulo_schedule, ImsOptions};
use vliw_core::unroll::unroll_ddg;
use vliw_core::{kernels, partition_schedule, LatencyModel, Machine, PartitionOptions};

fn bench_ims(c: &mut Criterion) {
    let lat = LatencyModel::default();
    let machine = Machine::single_cluster(12, 4, 32, lat);
    let mut group = c.benchmark_group("ims");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    for lp in kernels::all_kernels(lat) {
        let unrolled = unroll_ddg(&lp.ddg, 4).ddg;
        group.bench_with_input(BenchmarkId::new("mii", &lp.name), &unrolled, |b, g| {
            b.iter(|| mii(g, &machine).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("modulo_schedule_x4", &lp.name),
            &unrolled,
            |b, g| b.iter(|| modulo_schedule(g, &machine, ImsOptions::default()).unwrap()),
        );
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let lat = LatencyModel::default();
    let machine = Machine::paper_clustered(4, lat);
    let mut group = c.benchmark_group("partition");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    for lp in kernels::all_kernels(lat) {
        let body = insert_copies(&unroll_ddg(&lp.ddg, 2).ddg, &lat).ddg;
        group.bench_with_input(
            BenchmarkId::new("partition_schedule_x2", &lp.name),
            &body,
            |b, g| b.iter(|| partition_schedule(g, &machine, PartitionOptions::default()).unwrap()),
        );
    }
    group.finish();
}

fn bench_qrf(c: &mut Criterion) {
    let lat = LatencyModel::default();
    let machine = Machine::single_cluster(12, 4, 32, lat);
    let mut group = c.benchmark_group("qrf");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    for lp in kernels::all_kernels(lat) {
        let body = insert_copies(&unroll_ddg(&lp.ddg, 4).ddg, &lat).ddg;
        let sched = modulo_schedule(&body, &machine, ImsOptions::default()).unwrap().schedule;
        let lts = use_lifetimes(&body, &sched);
        group.bench_with_input(BenchmarkId::new("allocate_queues", &lp.name), &lts, |b, l| {
            b.iter(|| allocate_queues(l, sched.ii))
        });
        group.bench_with_input(BenchmarkId::new("insert_copies", &lp.name), &lp.ddg, |b, g| {
            b.iter(|| insert_copies(g, &lat))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ims, bench_partition, bench_qrf);
criterion_main!(benches);
