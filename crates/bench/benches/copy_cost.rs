//! Times the Section-2 copy-cost driver (II / stage-count impact of copy insertion).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vliw_bench::bench_config;
use vliw_core::experiments::copy_cost_experiment;
use vliw_core::Session;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    // A fresh session per iteration keeps the measurement cache-cold (the session
    // memoizes compilations, so reusing one would time pure cache hits).
    let mut group = c.benchmark_group("copy_cost");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("copy_insertion_cost_4_6_12_fus", |b| {
        b.iter(|| copy_cost_experiment(&Session::new(cfg.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
