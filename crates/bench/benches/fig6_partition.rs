//! Times the Fig. 6 driver (partitioned vs single-cluster II for 4/5/6 clusters).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vliw_bench::bench_config;
use vliw_core::experiments::fig6::fig6_experiment_for;
use vliw_core::Session;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    // A fresh session per iteration keeps the measurement cache-cold (the session
    // memoizes compilations, so reusing one would time pure cache hits).
    let mut group = c.benchmark_group("fig6_partition");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("partition_vs_single_cluster_4_clusters", |b| {
        b.iter(|| fig6_experiment_for(&Session::new(cfg.clone()), &[4]))
    });
    group.bench_function("partition_vs_single_cluster_6_clusters", |b| {
        b.iter(|| fig6_experiment_for(&Session::new(cfg.clone()), &[6]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
