//! Times the Fig. 9 driver (IPC curves over resource-constrained loops).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vliw_bench::bench_config;
use vliw_core::experiments::ipc::ipc_curves;
use vliw_core::Session;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    // A fresh session per iteration keeps the measurement cache-cold (the session
    // memoizes compilations, so reusing one would time pure cache hits).
    let mut group = c.benchmark_group("fig9_ipc_constrained");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("ipc_resource_constrained_4_12_18_fus", |b| {
        b.iter(|| ipc_curves(&Session::new(cfg.clone()), &[4, 12, 18], true))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
