//! Times the cluster-resource sizing driver (Fig. 7 / Section 4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vliw_bench::bench_config;
use vliw_core::experiments::cluster_resources_experiment;
use vliw_core::Session;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    // A fresh session per iteration keeps the measurement cache-cold (the session
    // memoizes compilations, so reusing one would time pure cache hits).
    let mut group = c.benchmark_group("cluster_resources");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("queue_demand_4_5_6_clusters", |b| {
        b.iter(|| cluster_resources_experiment(&Session::new(cfg.clone()), &[4, 5, 6]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
