//! Microbenchmarks of the cycle-accurate kernel simulator: per-kernel runs at
//! increasing trip counts, and a cold sweep of the whole 32-loop bench corpus —
//! the before/after comparison point for hot-path work on the simulation
//! engine (slot lists, issue-record ring buffer, queue accounting).  CI runs
//! this bench and uploads the report so the trend is tracked per PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vliw_bench::bench_config;
use vliw_core::pipeline::CompilerConfig;
use vliw_core::sim::simulate;
use vliw_core::{kernels, LatencyModel, Machine, Session};

fn bench_sim_kernels(c: &mut Criterion) {
    let lat = LatencyModel::default();
    let single = Machine::paper_single(6);
    let clustered = Machine::paper_clustered(4, lat);
    let mut group = c.benchmark_group("sim");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    for lp in kernels::all_kernels(lat) {
        for (machine, tag) in [(&single, "single6"), (&clustered, "clustered4")] {
            let compiler =
                vliw_core::Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
            let compiled = compiler.compile(&lp).expect("kernels schedule");
            for n in [10u64, 1000] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{tag}_n{n}"), &lp.name),
                    &compiled,
                    |b, c| {
                        b.iter(|| {
                            let run = simulate(&c.transformed, machine, &c.schedule, n).unwrap();
                            assert!(run.schedule_is_sound());
                            run.measurement.total_cycles
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_sim_corpus(c: &mut Criterion) {
    // The whole bench corpus, compiled once and then simulated per iteration —
    // the simulation-only cost of one `figures simulate` sweep point.
    let session = Session::new(bench_config());
    let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
    let compiled: Vec<_> = (0..session.num_loops())
        .filter_map(|i| {
            let r = compiler.compile_full(i);
            r.as_ref().as_ref().ok().cloned()
        })
        .collect();
    let machine = Machine::paper_single(6);
    let mut group = c.benchmark_group("sim");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("corpus_cold_n1000", |b| {
        b.iter(|| {
            compiled
                .iter()
                .map(|c| {
                    simulate(&c.transformed, &machine, &c.schedule, 1000)
                        .unwrap()
                        .measurement
                        .total_cycles
                })
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim_kernels, bench_sim_corpus);
criterion_main!(benches);
