//! Times the Fig. 7 design-space sweep on the 32-loop bench corpus: the cold
//! cost (compile + simulate + classify the whole small grid in a fresh session)
//! and the warm cost (re-classifying the grid when every compile and sim run is
//! already memoised — the marginal price of adding grid points to a session).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vliw_bench::bench_config;
use vliw_core::experiments::sweep_experiment;
use vliw_core::{Session, SweepGrid};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("sweep_grid");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    // A fresh session per iteration keeps the measurement cache-cold (the
    // session memoizes compilations and sim runs, so reusing one would time
    // pure cache hits).
    group.bench_function("small_grid_cold", |b| {
        b.iter(|| sweep_experiment(&Session::new(cfg.clone()), SweepGrid::Small))
    });
    // The warm half of the sweep's bargain: with one machine shape in the
    // grid, every point after the first is classification over cached
    // artifacts.
    let warm = Session::new(cfg.clone());
    sweep_experiment(&warm, SweepGrid::Small).expect("warm-up sweep runs");
    group.bench_function("small_grid_warm", |b| {
        b.iter(|| sweep_experiment(&warm, SweepGrid::Small))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
