//! Times the Fig. 3 driver (queue requirements across 4/6/12-FU machines).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vliw_bench::bench_config;
use vliw_core::experiments::fig3_experiment;
use vliw_core::Session;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    // A fresh session per iteration keeps the measurement cache-cold (the session
    // memoizes compilations, so reusing one would time pure cache hits).
    let mut group = c.benchmark_group("fig3_queues");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("queue_requirements_4_6_12_fus", |b| {
        b.iter(|| fig3_experiment(&Session::new(cfg.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
