//! Client for the `vliw-serve` daemon.
//!
//! [`ServeClient`] speaks the length-prefixed JSON frame protocol of
//! [`vliw_core::protocol`] over a TCP or Unix socket and exposes the four
//! request kinds as typed methods.  Each method performs one id-matched
//! round trip; server-side failures come back as [`VliwError::Remote`]
//! values carrying the daemon's error kind and message.
//!
//! The `figures` CLI builds one client per `--server` invocation; tests drive
//! the same type against an in-process daemon.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use vliw_core::experiments::{ExperimentRequest, ExperimentResponse};
use vliw_core::protocol::{
    read_message, write_message, RequestEnvelope, ResponseEnvelope, ServerInfo, WireRequest,
    WireResponse, PROTOCOL_VERSION,
};
use vliw_core::{SessionStats, VliwError};

/// Byte streams the client can run on.
trait Transport: Read + Write {}
impl<T: Read + Write> Transport for T {}

/// A connection to a `vliw-serve` daemon.
pub struct ServeClient {
    stream: Box<dyn Transport>,
    next_id: u64,
}

impl ServeClient {
    /// Connects to `addr`: `unix:/path/to.sock` for a Unix socket, anything
    /// else as a TCP `host:port`.
    pub fn connect(addr: &str) -> Result<ServeClient, VliwError> {
        let stream: Box<dyn Transport> = if let Some(path) = addr.strip_prefix("unix:") {
            Box::new(UnixStream::connect(path)?)
        } else {
            Box::new(TcpStream::connect(addr)?)
        };
        Ok(ServeClient { stream, next_id: 1 })
    }

    /// One id-matched request/response round trip; unwraps error responses.
    fn round_trip(&mut self, body: WireRequest) -> Result<WireResponse, VliwError> {
        let id = self.next_id;
        self.next_id += 1;
        write_message(&mut self.stream, &RequestEnvelope { id, body })?;
        let response: ResponseEnvelope = read_message(&mut self.stream)?.ok_or_else(|| {
            VliwError::Protocol("server closed the connection before answering".to_string())
        })?;
        // Surface error bodies before checking ids: the daemon answers
        // protocol-level failures (malformed frame, oversized frame) with an
        // error envelope carrying id 0 because it never decoded a request id.
        // Hiding that behind an id-mismatch message would lose the structured
        // kind/message the server went to the trouble of sending.
        if let WireResponse::Error(e) = response.body {
            return Err(e);
        }
        if response.id != id {
            return Err(VliwError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        Ok(response.body)
    }

    /// Asks the daemon what it serves.
    pub fn info(&mut self) -> Result<ServerInfo, VliwError> {
        match self.round_trip(WireRequest::Info)? {
            WireResponse::Info(info) => Ok(info),
            other => Err(unexpected("info", &other)),
        }
    }

    /// Runs experiments over the daemon's session, in order.
    pub fn run(
        &mut self,
        requests: Vec<ExperimentRequest>,
    ) -> Result<Vec<ExperimentResponse>, VliwError> {
        let expected = requests.len();
        match self.round_trip(WireRequest::Run(requests))? {
            WireResponse::Run(responses) if responses.len() == expected => Ok(responses),
            WireResponse::Run(responses) => Err(VliwError::Protocol(format!(
                "server answered {} experiments, expected {expected}",
                responses.len()
            ))),
            other => Err(unexpected("run", &other)),
        }
    }

    /// Fetches the daemon session's cache statistics.
    pub fn stats(&mut self) -> Result<SessionStats, VliwError> {
        match self.round_trip(WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetches the daemon's telemetry as Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, VliwError> {
        match self.round_trip(WireRequest::Metrics)? {
            WireResponse::Metrics(text) => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Asks the daemon to stop accepting connections and exit.
    pub fn shutdown(&mut self) -> Result<(), VliwError> {
        match self.round_trip(WireRequest::Shutdown)? {
            WireResponse::Shutdown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

/// Diagnoses a response body of the wrong kind.
fn unexpected(asked: &str, got: &WireResponse) -> VliwError {
    let kind = match got {
        WireResponse::Info(_) => "info",
        WireResponse::Run(_) => "run",
        WireResponse::Stats(_) => "stats",
        WireResponse::Metrics(_) => "metrics",
        WireResponse::Shutdown => "shutdown",
        WireResponse::Error(_) => "error",
    };
    VliwError::Protocol(format!("asked for `{asked}`, server answered `{kind}`"))
}

/// Checks that a daemon serves the session this run expects: same corpus,
/// same seed, same protocol version.  Returns a user-facing message naming
/// each mismatch.
pub fn validate_server(info: &ServerInfo, corpus_size: usize, seed: u64) -> Result<(), String> {
    if info.protocol_version != PROTOCOL_VERSION {
        return Err(format!(
            "server speaks protocol version {}, this client speaks {PROTOCOL_VERSION}",
            info.protocol_version
        ));
    }
    if info.corpus_size != corpus_size || info.seed != seed {
        return Err(format!(
            "server session is {} loops seed {}, this run wants {} loops seed {} \
             (pass --corpus-size/--seed matching the daemon, or restart it)",
            info.corpus_size, info.seed, corpus_size, seed
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_accepts_a_matching_server_and_names_mismatches() {
        let info = ServerInfo {
            corpus_size: 32,
            seed: 386,
            threads: 4,
            protocol_version: PROTOCOL_VERSION,
            store_version: vliw_core::session::STORE_VERSION,
            persistent: false,
        };
        assert_eq!(validate_server(&info, 32, 386), Ok(()));
        assert!(validate_server(&info, 64, 386).unwrap_err().contains("64"));
        assert!(validate_server(&info, 32, 1).unwrap_err().contains("seed 1"));
        let old = ServerInfo { protocol_version: PROTOCOL_VERSION + 1, ..info };
        assert!(validate_server(&old, 32, 386).unwrap_err().contains("protocol"));
    }

    #[test]
    fn an_error_envelope_with_id_zero_surfaces_as_the_remote_error() {
        // A daemon that cannot decode a frame answers with id 0 (the real id
        // never arrived); the client must surface that structured error, not
        // an id-mismatch diagnostic that hides it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("client connects");
            // Drain the request frame, then answer with an id-0 error.
            let _: Option<RequestEnvelope> = read_message(&mut stream).expect("request decodes");
            write_message(
                &mut stream,
                &ResponseEnvelope {
                    id: 0,
                    body: WireResponse::Error(VliwError::Protocol("bad frame".to_string())),
                },
            )
            .expect("error envelope writes");
        });
        let mut client = ServeClient::connect(&addr).expect("client connects");
        let err = client.info().expect_err("the error envelope must surface");
        assert_eq!(err.kind(), "protocol");
        assert!(err.to_string().contains("bad frame"), "{err}");
        server.join().unwrap();
    }

    #[test]
    fn connecting_to_a_dead_address_is_an_io_error() {
        // Port 1 on localhost is essentially never listening.
        let Err(err) = ServeClient::connect("127.0.0.1:1") else {
            panic!("connected to a dead port")
        };
        assert_eq!(err.kind(), "io");
        let Err(err) = ServeClient::connect("unix:/nonexistent/vliw.sock") else {
            panic!("connected to a dead socket")
        };
        assert_eq!(err.kind(), "io");
    }
}
