//! Command-line definition and parsing for the `figures` experiment CLI.
//!
//! Kept in the library (rather than the binary) so the argument handling is unit-
//! and integration-testable.

use clap::{Arg, ArgMatches, Command};
use vliw_core::experiments::Classify;
use vliw_core::{CorpusConfig, SweepGrid};

use crate::{OutputFormat, RunConfig, Selection, PAPER_CORPUS_LOOPS};

/// Builds the `figures` command: one subcommand per paper artefact plus `all`, and
/// global sweep options usable before or after the subcommand.
pub fn command() -> Command {
    let global = |arg: Arg| arg.global(true);
    Command::new("figures")
        .about(
            "Regenerates the tables and figures of 'Partitioned Schedules for \
             Clustered VLIW Architectures' (IPPS/SPDP 1998) on a synthetic corpus",
        )
        .arg(global(
            Arg::new("corpus-size")
                .long("corpus-size")
                .value_name("N")
                .default_value(PAPER_CORPUS_LOOPS.to_string())
                .help("Number of loops in the synthetic corpus"),
        ))
        .arg(global(
            Arg::new("seed")
                .long("seed")
                .value_name("S")
                .default_value(CorpusConfig::paper_default().seed.to_string())
                .help("Corpus generator seed"),
        ))
        .arg(global(
            Arg::new("threads")
                .long("threads")
                .value_name("T")
                .help("Worker threads for the corpus sweeps (default: all cores, max 8)"),
        ))
        .arg(global(
            Arg::new("format")
                .long("format")
                .value_name("FMT")
                .default_value("text")
                .help("Output format: text or json"),
        ))
        .arg(global(Arg::new("server").long("server").value_name("ADDR").help(
            "Run against a vliw-serve daemon (host:port or unix:/path.sock) \
                     instead of compiling in-process",
        )))
        .arg(global(
            Arg::new("cache-dir")
                .long("cache-dir")
                .value_name("DIR")
                .help("Persist compile/simulate artifacts under DIR (in-process runs only)"),
        ))
        .arg(global(Arg::new("trace").long("trace").value_name("FILE").help(
            "Capture a Chrome trace_event JSON of this run to FILE and print a \
                     per-stage breakdown on stderr (in-process runs only)",
        )))
        .subcommand(Command::new("fig3").about("Fig. 3 - number of queues required"))
        .subcommand(Command::new("copy-cost").about("Section 2 - cost of copy operations"))
        .subcommand(Command::new("fig4").about("Fig. 4 - II speedup from loop unrolling"))
        .subcommand(Command::new("fig6").about("Fig. 6 - II variation of partitioned schedules"))
        .subcommand(Command::new("resources").about("Fig. 7 / Section 4 - cluster resource sizing"))
        .subcommand(Command::new("ipc").about("Figs. 8 and 9 - operations issued per cycle"))
        .subcommand(Command::new("simulate").about(
            "Cycle-accurate kernel simulation - dynamic schedule verification \
             and simulated IPC (trip counts 10/100/1000)",
        ))
        .subcommand(
            Command::new("sweep")
                .about(
                    "Fig. 7 machine design-space sweep - sizing Pareto frontier \
                     over cluster count, queues, depths and FU mix",
                )
                .arg(
                    Arg::new("grid")
                        .long("grid")
                        .value_name("GRID")
                        .default_value("small")
                        .help("Design-space preset: small, paper, full or huge"),
                )
                .arg(
                    Arg::new("classify")
                        .long("classify")
                        .value_name("MODE")
                        .default_value("dynamic")
                        .help(
                            "Loop classification: dynamic (simulate) or static \
                             (prove with the verifier; same verdicts, no execution)",
                        ),
                )
                .arg(
                    Arg::new("prune").long("prune").value_name("BOOL").default_value("false").help(
                        "Use the certificate-pruned driver: one bounds \
                             consultation per machine shape instead of one \
                             classification per config (verdict-identical)",
                    ),
                )
                .arg(Arg::new("audit").long("audit").value_name("N").default_value("0").help(
                    "With --prune true: re-derive N seeded-random \
                             (config, loop) pairs through the exhaustive path \
                             and assert the verdicts agree",
                )),
        )
        .subcommand(
            Command::new("stream")
                .about(
                    "Streamed corpus compile - bounded shards, flat memory; \
                     reports aggregate metrics and peak RSS",
                )
                .arg(
                    Arg::new("shard-size")
                        .long("shard-size")
                        .value_name("N")
                        .default_value(vliw_core::session::DEFAULT_SHARD_SIZE.to_string())
                        .help("Loops generated and compiled per shard"),
                ),
        )
        .subcommand(Command::new("verify").about(
            "Static schedule/allocation verification - proves the simulate \
             invariants without executing a cycle",
        ))
        .subcommand(Command::new("metrics").about(
            "Scrape a vliw-serve daemon's telemetry (Prometheus text) - \
             requires --server",
        ))
        .subcommand(Command::new("all").about("Every figure experiment above (the default)"))
}

/// Resolves parsed matches into the run parameters and experiment selection.
///
/// Returns a user-facing error message for out-of-range or unparsable values (the
/// vendored clap stores raw strings, so numeric validation happens here).
pub fn resolve(matches: &ArgMatches) -> Result<(Selection, RunConfig), String> {
    let selection = match matches.subcommand() {
        None => Selection::All,
        Some((name, _)) => Selection::from_subcommand(name)
            .ok_or_else(|| format!("unknown subcommand `{name}`"))?,
    };

    let corpus_size: usize = parse_number(matches, "corpus-size")?;
    if corpus_size == 0 {
        return Err("--corpus-size must be at least 1".to_string());
    }
    let seed: u64 = parse_number(matches, "seed")?;
    let threads: Option<usize> = matches
        .get_one::<String>("threads")
        .map(|raw| raw.parse().map_err(|e| format!("invalid --threads `{raw}`: {e}")))
        .transpose()?;
    let format: OutputFormat = matches
        .get_one::<String>("format")
        .expect("--format has a default")
        .parse()
        .map_err(|e: String| format!("invalid --format: {e}"))?;
    // `--grid`, `--classify`, `--prune` and `--audit` live on the `sweep`
    // subcommand (they mean nothing elsewhere).
    let (grid, classify, prune, audit): (SweepGrid, Classify, bool, usize) =
        match matches.subcommand() {
            Some(("sweep", sub)) => (
                sub.get_one::<String>("grid")
                    .expect("--grid has a default")
                    .parse()
                    .map_err(|e: String| format!("invalid --grid: {e}"))?,
                sub.get_one::<String>("classify")
                    .expect("--classify has a default")
                    .parse()
                    .map_err(|e: String| format!("invalid --classify: {e}"))?,
                {
                    let raw: String = sub.get_one("prune").expect("--prune has a default");
                    raw.parse().map_err(|e| format!("invalid --prune `{raw}`: {e}"))?
                },
                {
                    let raw: String = sub.get_one("audit").expect("--audit has a default");
                    raw.parse().map_err(|e| format!("invalid --audit `{raw}`: {e}"))?
                },
            ),
            _ => (SweepGrid::default(), Classify::default(), false, 0),
        };
    if audit > 0 && !prune {
        return Err("--audit samples the pruned driver's verdicts; pass --prune true".to_string());
    }
    // Likewise `--shard-size` belongs to `stream` alone.
    let shard_size: usize = match matches.subcommand() {
        Some(("stream", sub)) => {
            let raw: String = sub.get_one("shard-size").expect("--shard-size has a default");
            let n: usize = raw.parse().map_err(|e| format!("invalid --shard-size `{raw}`: {e}"))?;
            if n == 0 {
                return Err("--shard-size must be at least 1".to_string());
            }
            n
        }
        _ => vliw_core::session::DEFAULT_SHARD_SIZE,
    };

    let server = matches.get_one::<String>("server");
    let cache_dir = matches.get_one::<String>("cache-dir").map(std::path::PathBuf::from);
    let trace = matches.get_one::<String>("trace").map(std::path::PathBuf::from);

    if trace.is_some() && server.is_some() {
        return Err("--trace captures this process's spans; a --server run compiles in the \
                    daemon, so there is nothing to trace (drop one of the two)"
            .to_string());
    }
    if selection == Selection::Metrics && server.is_none() {
        return Err("`metrics` scrapes a daemon's telemetry; pass --server ADDR".to_string());
    }

    Ok((
        selection,
        RunConfig {
            corpus_size,
            seed,
            threads,
            format,
            grid,
            classify,
            prune,
            audit,
            shard_size,
            server,
            cache_dir,
            trace,
        },
    ))
}

/// Parses option `id` as a number with a clean diagnostic.
fn parse_number<T>(matches: &ArgMatches, id: &str) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let raw: String = matches.get_one(id).ok_or_else(|| format!("--{id} needs a value"))?;
    raw.parse().map_err(|e| format!("invalid --{id} `{raw}`: {e}"))
}

/// Parses an argv (including the program name) into selection + run config.
pub fn parse_from<I, S>(argv: I) -> Result<(Selection, RunConfig), String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let matches = command().try_get_matches_from(argv).map_err(|e| e.to_string())?;
    resolve(&matches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<(Selection, RunConfig), String> {
        parse_from(std::iter::once("figures").chain(args.iter().copied()))
    }

    #[test]
    fn no_arguments_selects_everything_with_paper_defaults() {
        let (selection, run) = parse(&[]).unwrap();
        assert_eq!(selection, Selection::All);
        assert_eq!(run.corpus_size, PAPER_CORPUS_LOOPS);
        assert_eq!(run.seed, CorpusConfig::paper_default().seed);
        assert_eq!(run.threads, None);
        assert_eq!(run.format, OutputFormat::Text);
    }

    #[test]
    fn every_subcommand_maps_to_its_selection() {
        for (name, expected) in [
            ("fig3", Selection::Fig3),
            ("copy-cost", Selection::CopyCost),
            ("fig4", Selection::Fig4),
            ("fig6", Selection::Fig6),
            ("resources", Selection::Resources),
            ("ipc", Selection::Ipc),
            ("simulate", Selection::Simulate),
            ("sweep", Selection::Sweep),
            ("stream", Selection::Stream),
            ("verify", Selection::Verify),
            ("all", Selection::All),
        ] {
            let (selection, _) = parse(&[name]).unwrap();
            assert_eq!(selection, expected, "subcommand {name}");
        }
    }

    #[test]
    fn stream_shard_size_parses_with_a_bounded_default() {
        let (selection, run) = parse(&["stream"]).unwrap();
        assert_eq!(selection, Selection::Stream);
        assert_eq!(run.shard_size, vliw_core::session::DEFAULT_SHARD_SIZE);
        let (_, run) =
            parse(&["stream", "--shard-size", "256", "--corpus-size", "100000"]).unwrap();
        assert_eq!(run.shard_size, 256);
        assert_eq!(run.corpus_size, 100000);
        assert!(parse(&["stream", "--shard-size", "0"]).unwrap_err().contains("at least 1"));
        assert!(parse(&["stream", "--shard-size", "many"]).unwrap_err().contains("--shard-size"));
        // `--shard-size` belongs to `stream` alone.
        assert!(parse(&["fig3", "--shard-size", "64"]).is_err());
    }

    #[test]
    fn sweep_grid_parses_with_a_small_default() {
        let (selection, run) = parse(&["sweep"]).unwrap();
        assert_eq!(selection, Selection::Sweep);
        assert_eq!(run.grid, SweepGrid::Small);
        for (raw, expected) in [
            ("small", SweepGrid::Small),
            ("paper", SweepGrid::Paper),
            ("full", SweepGrid::Full),
            ("huge", SweepGrid::Huge),
        ] {
            let (_, run) = parse(&["sweep", "--grid", raw]).unwrap();
            assert_eq!(run.grid, expected, "--grid {raw}");
        }
        assert!(parse(&["sweep", "--grid", "tiny"]).unwrap_err().contains("--grid"));
        // `--grid` belongs to `sweep` alone.
        assert!(parse(&["fig3", "--grid", "small"]).is_err());
    }

    #[test]
    fn sweep_classify_parses_with_a_dynamic_default() {
        let (_, run) = parse(&["sweep"]).unwrap();
        assert_eq!(run.classify, Classify::Dynamic);
        let (_, run) = parse(&["sweep", "--classify", "static"]).unwrap();
        assert_eq!(run.classify, Classify::Static);
        let (_, run) = parse(&["sweep", "--classify", "dynamic"]).unwrap();
        assert_eq!(run.classify, Classify::Dynamic);
        assert!(parse(&["sweep", "--classify", "cycle"]).unwrap_err().contains("--classify"));
        // `--classify` belongs to `sweep` alone.
        assert!(parse(&["verify", "--classify", "static"]).is_err());
    }

    #[test]
    fn sweep_prune_and_audit_parse_with_safe_defaults() {
        let (_, run) = parse(&["sweep"]).unwrap();
        assert!(!run.prune);
        assert_eq!(run.audit, 0);
        let (_, run) = parse(&["sweep", "--prune", "true"]).unwrap();
        assert!(run.prune);
        assert_eq!(run.audit, 0);
        let (_, run) =
            parse(&["sweep", "--grid", "huge", "--prune", "true", "--audit", "64"]).unwrap();
        assert!(run.prune);
        assert_eq!(run.audit, 64);
        assert!(parse(&["sweep", "--prune", "maybe"]).unwrap_err().contains("--prune"));
        assert!(parse(&["sweep", "--prune", "true", "--audit", "many"])
            .unwrap_err()
            .contains("--audit"));
        // Auditing without pruning has nothing to compare against.
        assert!(parse(&["sweep", "--audit", "8"]).unwrap_err().contains("--prune"));
        // Both belong to `sweep` alone.
        assert!(parse(&["fig3", "--prune", "true"]).is_err());
        assert!(parse(&["verify", "--audit", "4"]).is_err());
    }

    #[test]
    fn verify_acceptance_command_line_parses() {
        // The exact invocation the verification baseline is generated with.
        let (selection, run) =
            parse(&["verify", "--format", "json", "--corpus-size", "32", "--seed", "386"]).unwrap();
        assert_eq!(selection, Selection::Verify);
        assert_eq!(run.corpus_size, 32);
        assert_eq!(run.seed, 386);
        assert_eq!(run.format, OutputFormat::Json);
    }

    #[test]
    fn sweep_acceptance_command_line_parses() {
        // The exact invocation the sweep baseline is generated with.
        let (selection, run) = parse(&[
            "sweep",
            "--grid",
            "small",
            "--format",
            "json",
            "--corpus-size",
            "32",
            "--seed",
            "386",
        ])
        .unwrap();
        assert_eq!(selection, Selection::Sweep);
        assert_eq!(run.grid, SweepGrid::Small);
        assert_eq!(run.corpus_size, 32);
        assert_eq!(run.seed, 386);
        assert_eq!(run.format, OutputFormat::Json);
    }

    #[test]
    fn simulate_acceptance_command_line_parses() {
        // The exact invocation the simulated-IPC baseline is generated with.
        let (selection, run) =
            parse(&["simulate", "--format", "json", "--corpus-size", "32", "--seed", "386"])
                .unwrap();
        assert_eq!(selection, Selection::Simulate);
        assert_eq!(run.corpus_size, 32);
        assert_eq!(run.seed, 386);
        assert_eq!(run.format, OutputFormat::Json);
    }

    #[test]
    fn acceptance_command_line_parses() {
        // The exact invocation the golden baseline is generated with.
        let (selection, run) =
            parse(&["all", "--format", "json", "--corpus-size", "32", "--seed", "386"]).unwrap();
        assert_eq!(selection, Selection::All);
        assert_eq!(run.corpus_size, 32);
        assert_eq!(run.seed, 386);
        assert_eq!(run.format, OutputFormat::Json);
    }

    #[test]
    fn trace_parses_in_process_and_is_rejected_with_server() {
        let (_, run) = parse(&["all", "--trace", "out.json"]).unwrap();
        assert_eq!(run.trace, Some(std::path::PathBuf::from("out.json")));
        let (_, run) = parse(&["fig3"]).unwrap();
        assert_eq!(run.trace, None);
        let err = parse(&["all", "--trace", "out.json", "--server", "127.0.0.1:7421"]).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
    }

    #[test]
    fn metrics_requires_a_server() {
        let err = parse(&["metrics"]).unwrap_err();
        assert!(err.contains("--server"), "{err}");
        let (selection, run) = parse(&["metrics", "--server", "127.0.0.1:7421"]).unwrap();
        assert_eq!(selection, Selection::Metrics);
        assert_eq!(run.server.as_deref(), Some("127.0.0.1:7421"));
    }

    #[test]
    fn global_options_work_before_the_subcommand_too() {
        let (_, run) = parse(&["--corpus-size", "7", "--threads", "2", "fig3"]).unwrap();
        assert_eq!(run.corpus_size, 7);
        assert_eq!(run.threads, Some(2));
    }

    #[test]
    fn invalid_values_produce_clean_errors() {
        assert!(parse(&["--corpus-size", "zero"]).unwrap_err().contains("--corpus-size"));
        assert!(parse(&["--corpus-size", "0"]).unwrap_err().contains("at least 1"));
        assert!(parse(&["--seed", "-4"]).unwrap_err().contains("--seed"));
        assert!(parse(&["--format", "xml"]).unwrap_err().contains("format"));
        assert!(parse(&["fig5"]).is_err());
        assert!(parse(&["--nope"]).is_err());
    }

    #[test]
    fn help_renders_subcommands_and_options() {
        let err = parse(&["--help"]).unwrap_err();
        for needle in ["fig3", "copy-cost", "ipc", "--corpus-size", "--seed", "--format"] {
            assert!(err.contains(needle), "help is missing {needle}: {err}");
        }
    }
}
