//! Emits the `BENCH_session.json` perf-trend document.
//!
//! ```text
//! cargo run --release -p vliw-bench --bin perf                         # JSON on stdout
//! cargo run --release -p vliw-bench --bin perf -- --out BENCH_new.json
//! cargo run --release -p vliw-bench --bin perf -- \
//!     --out BENCH_new.json --compare BENCH_session.json               # + delta table on stderr
//! ```
//!
//! `--compare` prints the per-probe delta against a previous document on
//! stderr and never fails the run: shared CI runners are noisy, so the trend
//! file is a warn-only instrument.  Regenerate the committed baseline with
//! `--out BENCH_session.json` when a PR deliberately moves the numbers.

use std::process::ExitCode;

use vliw_bench::perf::{collect, render_delta, PerfReport};

struct Args {
    out: Option<String>,
    compare: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { out: None, compare: None };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let slot = match flag.as_str() {
            "--out" => &mut args.out,
            "--compare" => &mut args.compare,
            other => return Err(format!("unknown argument `{other}` (expected --out/--compare)")),
        };
        *slot = Some(argv.next().ok_or_else(|| format!("{flag} needs a path"))?);
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let report = collect();
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("failed to serialize the report: {e}"))?;
    match &args.out {
        Some(path) => {
            std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => println!("{json}"),
    }
    if let Some(path) = &args.compare {
        // Warn-only by design: a missing or unreadable baseline is reported,
        // not fatal, so the first run of a new probe set still succeeds.
        match std::fs::read_to_string(path) {
            Ok(raw) => match serde_json::from_str::<PerfReport>(&raw) {
                Ok(baseline) => eprint!("{}", render_delta(&report, &baseline)),
                Err(e) => eprintln!("warning: cannot parse baseline {path}: {e}"),
            },
            Err(e) => eprintln!("warning: cannot read baseline {path}: {e}"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args().and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
