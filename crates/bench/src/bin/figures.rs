//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures             # everything, full corpus
//! cargo run --release -p vliw-bench --bin figures -- --fig 6  # one figure
//! cargo run --release -p vliw-bench --bin figures -- --loops 200 --seed 7
//! ```
//!
//! The output of a full-corpus run is recorded in EXPERIMENTS.md next to the
//! numbers reported by the paper.

use std::process::ExitCode;

use vliw_core::experiments::{
    cluster_resources_experiment, copy_cost_experiment, fig3_experiment, fig4_experiment,
    fig6_experiment, fig8_experiment, fig9_experiment, ExperimentConfig,
};
use vliw_core::experiments::{copy_cost, fig3, fig4, fig6, ipc, resources};
use vliw_core::CorpusConfig;

#[derive(Debug, Clone)]
struct Args {
    fig: Option<String>,
    loops: usize,
    seed: u64,
    threads: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { fig: None, loops: 1258, seed: CorpusConfig::default().seed, threads: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => args.fig = Some(it.next().ok_or("--fig needs a value")?),
            "--loops" => {
                args.loops = it
                    .next()
                    .ok_or("--loops needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --loops: {e}"))?
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?
            }
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|e| format!("invalid --threads: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig 3|4|6|8|9|copy-cost|cluster-resources|all] \
                     [--loops N] [--seed S] [--threads T]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = ExperimentConfig::quick(args.loops, args.seed);
    if let Some(t) = args.threads {
        cfg.threads = t.max(1);
    }
    let which = args.fig.as_deref().unwrap_or("all");
    println!(
        "# Reproduction run: {} loops, seed {}, {} threads\n",
        args.loops, args.seed, cfg.threads
    );

    let run_fig3 = || {
        println!("## Fig. 3 — Number of queues (cumulative % of loops)\n");
        println!("{}", fig3::render(&fig3_experiment(&cfg)));
    };
    let run_copy_cost = || {
        println!("## Section 2 — Cost of copy operations\n");
        println!("{}", copy_cost::render(&copy_cost_experiment(&cfg)));
    };
    let run_fig4 = || {
        println!("## Fig. 4 — II speedup from loop unrolling\n");
        println!("{}", fig4::render(&fig4_experiment(&cfg)));
    };
    let run_fig6 = || {
        println!("## Fig. 6 — II variation of partitioned schedules\n");
        println!("{}", fig6::render(&fig6_experiment(&cfg)));
    };
    let run_resources = || {
        println!("## Fig. 7 / Section 4 — Cluster resource sizing\n");
        println!(
            "{}",
            resources::render(&cluster_resources_experiment(&cfg, &[4, 5, 6]))
        );
    };
    let run_fig8 = || {
        println!("## Fig. 8 — Operations issued per cycle (all loops)\n");
        println!("{}", ipc::render(&fig8_experiment(&cfg)));
    };
    let run_fig9 = || {
        println!("## Fig. 9 — Operations issued per cycle (resource-constrained loops)\n");
        println!("{}", ipc::render(&fig9_experiment(&cfg)));
    };

    match which {
        "3" => run_fig3(),
        "copy-cost" => run_copy_cost(),
        "4" => run_fig4(),
        "6" => run_fig6(),
        "cluster-resources" => run_resources(),
        "8" => run_fig8(),
        "9" => run_fig9(),
        "all" => {
            run_fig3();
            run_copy_cost();
            run_fig4();
            run_fig6();
            run_resources();
            run_fig8();
            run_fig9();
        }
        other => {
            eprintln!("error: unknown figure '{other}'");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
