//! Regenerates the tables and figures of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures                  # everything, full corpus
//! cargo run --release -p vliw-bench --bin figures -- fig6          # one figure
//! cargo run --release -p vliw-bench --bin figures -- \
//!     all --format json --corpus-size 32 --seed 386                # the golden-baseline run
//! ```
//!
//! Subcommands: `fig3`, `copy-cost`, `fig4`, `fig6`, `resources`, `ipc`,
//! `simulate`, `sweep`, `all` (default; covers the figure experiments but not
//! `simulate` or `sweep`, whose reports are separate documents).  Global
//! options: `--corpus-size`, `--seed`, `--threads`, `--format text|json`; the
//! `sweep` subcommand additionally takes `--grid small|paper|full`.  The output
//! of a full-corpus text run is recorded in EXPERIMENTS.md next to the numbers
//! reported by the paper; the JSON format is what CI's bench-smoke job archives
//! and what `baselines/figures_small.json` (and, for `simulate` / `sweep`,
//! `baselines/sim_small.json` / `baselines/sweep_small.json`) pins.
//!
//! All selected experiments run through one shared compilation session, so
//! overlapping sweep points compile once.  The session's cache statistics
//! (`compilations`, `hits`, `unique_keys`) are reported as a trailing section in
//! text mode and as a one-line JSON object on **stderr** in JSON mode — stdout
//! stays byte-identical to the baseline report, so redirecting it still produces
//! a valid `FiguresReport` document.

use std::process::ExitCode;

use vliw_bench::{
    cli, render_simulate_text, render_stats, render_sweep_text, render_text, run_experiments_in,
    run_simulate_in, run_sweep_in, OutputFormat, Selection,
};
use vliw_core::Session;

/// Serializes and prints one report document on stdout (pretty) and the session
/// cache statistics on stderr (one line), the JSON-mode contract of every
/// subcommand.
fn emit_json<T: serde::Serialize>(
    report: &T,
    stats: &vliw_core::SessionStats,
) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| format!("failed to serialize the report: {e}"))?;
    println!("{json}");
    let stats_json = serde_json::to_string(stats)
        .map_err(|e| format!("failed to serialize the cache stats: {e}"))?;
    eprintln!("{stats_json}");
    Ok(())
}

fn main() -> ExitCode {
    let matches = cli::command().get_matches();
    let (selection, run) = match cli::resolve(&matches) {
        Ok(resolved) => resolved,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let session = Session::new(run.experiment_config());
    if selection == Selection::Simulate {
        let report = run_simulate_in(&session);
        let stats = session.stats();
        match run.format {
            OutputFormat::Json => {
                if let Err(message) = emit_json(&report, &stats) {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
            }
            OutputFormat::Text => {
                println!(
                    "# Simulation run: {} loops, seed {}, {} threads\n",
                    report.corpus_size,
                    report.seed,
                    session.threads()
                );
                print!("{}", render_simulate_text(&report));
                println!();
                print!("{}", render_stats(&stats));
            }
        }
        return ExitCode::SUCCESS;
    }

    if selection == Selection::Sweep {
        let report = run_sweep_in(&session, run.grid);
        let stats = session.stats();
        match run.format {
            OutputFormat::Json => {
                if let Err(message) = emit_json(&report, &stats) {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
            }
            OutputFormat::Text => {
                println!(
                    "# Design-space sweep: {} loops, seed {}, {} threads\n",
                    report.corpus_size,
                    report.seed,
                    session.threads()
                );
                print!("{}", render_sweep_text(&report));
                println!();
                print!("{}", render_stats(&stats));
            }
        }
        return ExitCode::SUCCESS;
    }

    let report = run_experiments_in(&session, selection);
    let stats = session.stats();
    match run.format {
        OutputFormat::Json => {
            if let Err(message) = emit_json(&report, &stats) {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        }
        OutputFormat::Text => {
            println!(
                "# Reproduction run: {} loops, seed {}, {} threads\n",
                report.corpus_size,
                report.seed,
                session.threads()
            );
            print!("{}", render_text(&report));
            println!();
            print!("{}", render_stats(&stats));
        }
    }
    ExitCode::SUCCESS
}
