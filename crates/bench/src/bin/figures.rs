//! Regenerates the tables and figures of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures                  # everything, full corpus
//! cargo run --release -p vliw-bench --bin figures -- fig6          # one figure
//! cargo run --release -p vliw-bench --bin figures -- \
//!     all --format json --corpus-size 32 --seed 386                # the golden-baseline run
//! ```
//!
//! Subcommands: `fig3`, `copy-cost`, `fig4`, `fig6`, `resources`, `ipc`, `all`
//! (default).  Global options: `--corpus-size`, `--seed`, `--threads`,
//! `--format text|json`.  The output of a full-corpus text run is recorded in
//! EXPERIMENTS.md next to the numbers reported by the paper; the JSON format is
//! what CI's bench-smoke job archives and what `baselines/figures_small.json`
//! pins.

use std::process::ExitCode;

use vliw_bench::{cli, render_text, run_experiments, OutputFormat};

fn main() -> ExitCode {
    let matches = cli::command().get_matches();
    let (selection, run) = match cli::resolve(&matches) {
        Ok(resolved) => resolved,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let report = run_experiments(selection, &run);
    match run.format {
        OutputFormat::Json => match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: failed to serialize the report: {e}");
                return ExitCode::FAILURE;
            }
        },
        OutputFormat::Text => {
            println!(
                "# Reproduction run: {} loops, seed {}, {} threads\n",
                run.corpus_size,
                run.seed,
                run.experiment_config().threads
            );
            print!("{}", render_text(&report));
        }
    }
    ExitCode::SUCCESS
}
