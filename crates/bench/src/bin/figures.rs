//! Regenerates the tables and figures of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures                  # everything, full corpus
//! cargo run --release -p vliw-bench --bin figures -- fig6          # one figure
//! cargo run --release -p vliw-bench --bin figures -- \
//!     all --format json --corpus-size 32 --seed 386                # the golden-baseline run
//! ```
//!
//! Subcommands: `fig3`, `copy-cost`, `fig4`, `fig6`, `resources`, `ipc`, `all`
//! (default).  Global options: `--corpus-size`, `--seed`, `--threads`,
//! `--format text|json`.  The output of a full-corpus text run is recorded in
//! EXPERIMENTS.md next to the numbers reported by the paper; the JSON format is
//! what CI's bench-smoke job archives and what `baselines/figures_small.json`
//! pins.
//!
//! All selected experiments run through one shared compilation session, so
//! overlapping sweep points compile once.  The session's cache statistics
//! (`compilations`, `hits`, `unique_keys`) are reported as a trailing section in
//! text mode and as a one-line JSON object on **stderr** in JSON mode — stdout
//! stays byte-identical to the baseline report, so redirecting it still produces
//! a valid `FiguresReport` document.

use std::process::ExitCode;

use vliw_bench::{cli, render_stats, render_text, run_experiments_in, OutputFormat};
use vliw_core::Session;

fn main() -> ExitCode {
    let matches = cli::command().get_matches();
    let (selection, run) = match cli::resolve(&matches) {
        Ok(resolved) => resolved,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let session = Session::new(run.experiment_config());
    let report = run_experiments_in(&session, selection);
    let stats = session.stats();
    match run.format {
        OutputFormat::Json => {
            match serde_json::to_string_pretty(&report) {
                Ok(json) => println!("{json}"),
                Err(e) => {
                    eprintln!("error: failed to serialize the report: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match serde_json::to_string(&stats) {
                Ok(json) => eprintln!("{json}"),
                Err(e) => {
                    eprintln!("error: failed to serialize the cache stats: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        OutputFormat::Text => {
            println!(
                "# Reproduction run: {} loops, seed {}, {} threads\n",
                report.corpus_size,
                report.seed,
                session.threads()
            );
            print!("{}", render_text(&report));
            println!();
            print!("{}", render_stats(&stats));
        }
    }
    ExitCode::SUCCESS
}
