//! Regenerates the tables and figures of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures                  # everything, full corpus
//! cargo run --release -p vliw-bench --bin figures -- fig6          # one figure
//! cargo run --release -p vliw-bench --bin figures -- \
//!     all --format json --corpus-size 32 --seed 386                # the golden-baseline run
//! cargo run --release -p vliw-bench --bin figures -- \
//!     all --format json --corpus-size 32 --seed 386 \
//!     --server 127.0.0.1:7421                                      # same, via vliw-serve
//! ```
//!
//! Subcommands: `fig3`, `copy-cost`, `fig4`, `fig6`, `resources`, `ipc`,
//! `simulate`, `sweep`, `stream`, `verify`, `all` (default; covers the figure
//! experiments but not `simulate`, `sweep`, `stream` or `verify`, whose
//! reports are separate documents).  `stream` compiles the corpus in bounded
//! shards without ever materialising it (flat memory at 100k+ loops, reporting
//! peak RSS) and is strictly in-process.  `verify` proves every schedule sound
//! statically — the same verdicts `simulate` observes, with no execution.
//! Global options: `--corpus-size`, `--seed`, `--threads`,
//! `--format text|json`, `--cache-dir DIR` (persist artifacts across
//! in-process runs), `--server ADDR` (run the experiments on a `vliw-serve`
//! daemon instead of compiling in-process) and `--trace FILE` (capture a
//! Chrome `trace_event` JSON of the run and print a per-stage breakdown on
//! stderr — in-process only, stdout stays byte-identical); the `sweep`
//! subcommand additionally takes `--grid small|paper|full|huge`,
//! `--classify dynamic|static`, `--prune true` (the certificate-pruned driver:
//! one bounds consultation per machine shape, verdict-identical rows plus a
//! `prune` accounting section) and `--audit N` (re-derive N seeded-random
//! (config, loop) pairs exhaustively and assert the verdicts agree).  The
//! `metrics` subcommand scrapes a daemon's
//! telemetry (`--server` required) as Prometheus text on stdout.  The output of a full-corpus text run is
//! recorded in EXPERIMENTS.md next to the numbers reported by the paper; the
//! JSON format is what CI's bench-smoke job archives and what
//! `baselines/figures_small.json` (and, for `simulate` / `sweep` / `verify`,
//! `baselines/sim_small.json` / `baselines/sweep_small.json` /
//! `baselines/verify_small.json`) pins.  A
//! `--server` run produces byte-identical stdout to the in-process run: the
//! daemon answers with the same typed rows, re-serialized through the same
//! report structs.
//!
//! All selected experiments run through one shared compilation session — in
//! this process or in the daemon's — so overlapping sweep points compile once.
//! The session's cache statistics (`compilations`, `hits`, `disk hits`,
//! `unique_keys`) are reported as a trailing section in text mode and as a
//! one-line JSON object on **stderr** in JSON mode — stdout stays
//! byte-identical to the baseline report, so redirecting it still produces a
//! valid `FiguresReport` document.

use std::process::ExitCode;

use vliw_bench::{
    assemble_report, cli, render_simulate_text, render_stats, render_stream_text,
    render_sweep_text, render_text, render_verify_text, requests_for, run_experiments_in,
    run_pruned_sweep_in, run_simulate_in, run_stream, run_sweep_in, run_verify_in, validate_server,
    FiguresReport, OutputFormat, RunConfig, Selection, ServeClient,
};
use vliw_core::experiments::{ExperimentResponse, SimulateReport, SweepReport, VerifyReport};
use vliw_core::{Session, SessionStats, VliwError};

/// Where this run's experiments execute: an in-process session, or a
/// `vliw-serve` daemon reached over a socket.
enum Backend {
    Local(Box<Session>),
    /// Connected client plus the daemon's worker-thread count (reported in
    /// text-mode headers in place of the local session's).
    Remote(ServeClient, usize),
}

impl Backend {
    /// Opens the backend the run configuration asks for.  A `--server` run
    /// validates the daemon's protocol version, corpus size and seed up front
    /// so a mismatched daemon fails with a clear message, not a wrong report.
    fn open(run: &RunConfig) -> Result<Backend, String> {
        let Some(addr) = &run.server else {
            let session = Session::try_new(run.experiment_config()).map_err(|e| e.to_string())?;
            return Ok(Backend::Local(Box::new(session)));
        };
        if run.cache_dir.is_some() {
            return Err(
                "--cache-dir configures the in-process store; the daemon owns its own cache \
                 (pass --cache-dir to vliw-serve instead)"
                    .to_string(),
            );
        }
        let mut client =
            ServeClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let info = client.info().map_err(|e| e.to_string())?;
        validate_server(&info, run.corpus_size, run.seed)?;
        Ok(Backend::Remote(client, info.threads))
    }

    /// Worker threads of whichever session runs the experiments.
    fn threads(&self) -> usize {
        match self {
            Backend::Local(session) => session.threads(),
            Backend::Remote(_, threads) => *threads,
        }
    }

    /// Cache statistics of whichever session ran the experiments.  Queried
    /// after the reports so the numbers cover this run's work.
    fn stats(&mut self) -> Result<SessionStats, String> {
        match self {
            Backend::Local(session) => Ok(session.stats()),
            Backend::Remote(client, _) => client.stats().map_err(|e| e.to_string()),
        }
    }

    /// Runs the figure experiments of `selection` into one report.
    fn figures(&mut self, selection: Selection, run: &RunConfig) -> Result<FiguresReport, String> {
        match self {
            Backend::Local(session) => {
                run_experiments_in(session, selection).map_err(|e| e.to_string())
            }
            Backend::Remote(client, _) => {
                let responses = client
                    .run(requests_for(selection, run.grid, run.classify, run.prune, run.audit))
                    .map_err(|e| e.to_string())?;
                assemble_report(run.corpus_size, run.seed, responses).map_err(|e| e.to_string())
            }
        }
    }

    /// Runs the cycle-accurate simulation experiment.
    fn simulate(&mut self, run: &RunConfig) -> Result<SimulateReport, String> {
        match self {
            Backend::Local(session) => run_simulate_in(session).map_err(|e| e.to_string()),
            Backend::Remote(client, _) => match one_response(client, Selection::Simulate, run)? {
                ExperimentResponse::Simulate(report) => Ok(report),
                other => Err(wrong_document("simulate", &other)),
            },
        }
    }

    /// Runs the Fig. 7 design-space sweep (certificate-pruned with `--prune
    /// true`).
    fn sweep(&mut self, run: &RunConfig) -> Result<SweepReport, String> {
        match self {
            Backend::Local(session) => if run.prune {
                run_pruned_sweep_in(session, run.grid, run.classify, run.audit)
            } else {
                run_sweep_in(session, run.grid, run.classify)
            }
            .map_err(|e| e.to_string()),
            Backend::Remote(client, _) => match one_response(client, Selection::Sweep, run)? {
                ExperimentResponse::Sweep(report) => Ok(report),
                other => Err(wrong_document("sweep", &other)),
            },
        }
    }

    /// Runs the static-verification experiment.
    fn verify(&mut self, run: &RunConfig) -> Result<VerifyReport, String> {
        match self {
            Backend::Local(session) => run_verify_in(session).map_err(|e| e.to_string()),
            Backend::Remote(client, _) => match one_response(client, Selection::Verify, run)? {
                ExperimentResponse::Verify(report) => Ok(report),
                other => Err(wrong_document("verify", &other)),
            },
        }
    }
}

/// Runs a single-document selection on the daemon and returns its one response.
fn one_response(
    client: &mut ServeClient,
    selection: Selection,
    run: &RunConfig,
) -> Result<ExperimentResponse, String> {
    let mut responses = client
        .run(requests_for(selection, run.grid, run.classify, run.prune, run.audit))
        .map_err(|e| e.to_string())?;
    match responses.len() {
        1 => Ok(responses.remove(0)),
        n => {
            Err(VliwError::Protocol(format!("expected one response document, got {n}")).to_string())
        }
    }
}

/// Diagnoses a daemon answering a single-document request with the wrong kind.
fn wrong_document(asked: &str, got: &ExperimentResponse) -> String {
    format!("asked the server for `{asked}`, it answered `{}`", got.name())
}

/// Serializes and prints one report document on stdout (pretty) and the session
/// cache statistics on stderr (one line), the JSON-mode contract of every
/// subcommand.
fn emit_json<T: serde::Serialize>(report: &T, stats: &SessionStats) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| format!("failed to serialize the report: {e}"))?;
    println!("{json}");
    let stats_json = serde_json::to_string(stats)
        .map_err(|e| format!("failed to serialize the cache stats: {e}"))?;
    eprintln!("{stats_json}");
    Ok(())
}

/// Runs the resolved selection end to end; returns a user-facing error message.
fn run_selection(selection: Selection, run: &RunConfig) -> Result<(), String> {
    if selection == Selection::Metrics {
        // A metrics scrape reads the daemon's own telemetry, so it skips the
        // corpus-size/seed validation the experiment paths perform — any
        // healthy daemon can answer it.
        let addr = run.server.as_ref().expect("cli::resolve rejects `metrics` without --server");
        let mut client =
            ServeClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let text = client.metrics().map_err(|e| e.to_string())?;
        print!("{text}");
        return Ok(());
    }

    if selection == Selection::Stream {
        // Streamed runs measure *this* process's memory, so there is no
        // backend to open: no session, no memo store, and no daemon.
        if run.server.is_some() {
            return Err("`stream` runs in-process only (it measures this process's memory); \
                 drop --server"
                .to_string());
        }
        let report = run_stream(run).map_err(|e| e.to_string())?;
        match run.format {
            OutputFormat::Json => {
                let json = serde_json::to_string_pretty(&report)
                    .map_err(|e| format!("failed to serialize the report: {e}"))?;
                println!("{json}");
            }
            OutputFormat::Text => {
                println!(
                    "# Streamed run: {} loops, seed {}, {} threads\n",
                    report.corpus_size,
                    report.seed,
                    run.stream_config().threads
                );
                print!("{}", render_stream_text(&report));
            }
        }
        return Ok(());
    }

    let mut backend = Backend::open(run)?;

    if selection == Selection::Simulate {
        let report = backend.simulate(run)?;
        let stats = backend.stats()?;
        match run.format {
            OutputFormat::Json => emit_json(&report, &stats)?,
            OutputFormat::Text => {
                println!(
                    "# Simulation run: {} loops, seed {}, {} threads\n",
                    report.corpus_size,
                    report.seed,
                    backend.threads()
                );
                print!("{}", render_simulate_text(&report));
                println!();
                print!("{}", render_stats(&stats));
            }
        }
        return Ok(());
    }

    if selection == Selection::Verify {
        let report = backend.verify(run)?;
        let stats = backend.stats()?;
        match run.format {
            OutputFormat::Json => emit_json(&report, &stats)?,
            OutputFormat::Text => {
                println!(
                    "# Verification run: {} loops, seed {}, {} threads\n",
                    report.corpus_size,
                    report.seed,
                    backend.threads()
                );
                print!("{}", render_verify_text(&report));
                println!();
                print!("{}", render_stats(&stats));
            }
        }
        return Ok(());
    }

    if selection == Selection::Sweep {
        let report = backend.sweep(run)?;
        let stats = backend.stats()?;
        match run.format {
            OutputFormat::Json => emit_json(&report, &stats)?,
            OutputFormat::Text => {
                println!(
                    "# Design-space sweep: {} loops, seed {}, {} threads\n",
                    report.corpus_size,
                    report.seed,
                    backend.threads()
                );
                print!("{}", render_sweep_text(&report));
                println!();
                print!("{}", render_stats(&stats));
            }
        }
        return Ok(());
    }

    let report = backend.figures(selection, run)?;
    let stats = backend.stats()?;
    match run.format {
        OutputFormat::Json => emit_json(&report, &stats)?,
        OutputFormat::Text => {
            println!(
                "# Reproduction run: {} loops, seed {}, {} threads\n",
                report.corpus_size,
                report.seed,
                backend.threads()
            );
            print!("{}", render_text(&report));
            println!();
            print!("{}", render_stats(&stats));
        }
    }
    Ok(())
}

/// Writes the accumulated span buffers as Chrome `trace_event` JSON to
/// `path` and prints the per-stage breakdown on stderr.  Stdout is never
/// touched: a traced run's report stays byte-identical to an untraced one.
fn export_trace(path: &std::path::Path) -> Result<(), String> {
    vliw_core::obs::disable();
    let threads = vliw_core::obs::snapshot();
    std::fs::write(path, vliw_core::obs::chrome_trace(&threads))
        .map_err(|e| format!("cannot write trace to {}: {e}", path.display()))?;
    let stats = vliw_core::obs::stage_stats(&threads);
    eprint!("{}", vliw_core::obs::render_stage_table(&stats));
    eprintln!("trace written to {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let matches = cli::command().get_matches();
    let (selection, run) = match cli::resolve(&matches) {
        Ok(resolved) => resolved,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    if run.trace.is_some() {
        vliw_core::obs::enable();
    }
    let mut result = run_selection(selection, &run);
    if let Some(path) = &run.trace {
        // Export even when the run failed: a partial trace is exactly what a
        // debugging session wants.
        let exported = export_trace(path);
        result = result.and(exported);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
