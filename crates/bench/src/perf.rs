//! The self-timed probe suite behind the `BENCH_session.json` perf-trend file.
//!
//! The Criterion benches (`cargo bench -p vliw-bench`) are the statistically
//! careful instrument; this module is the *trend* instrument: a fixed set of
//! named probes, each timed with a plain warm-up + repeat loop, serialized to
//! one small JSON document.  CI's bench-smoke job runs the `perf` binary on
//! every push, compares the result against the committed `BENCH_session.json`
//! and prints the per-probe delta — warn-only, no hard gate, because shared
//! runners are noisy.  The committed file is regenerated (same binary, `--out`)
//! whenever a PR deliberately moves the numbers, so the file's history *is*
//! the perf trajectory of the repo.
//!
//! Probe names mirror the Criterion groups they shadow
//! (`scheduler_micro/...`, `placement/...`, `session/...`, `sweep_grid/...`),
//! so EXPERIMENTS.md tables and the trend file speak the same language.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use vliw_core::experiments::{pruned_sweep_experiment, sweep_experiment, Classify};
use vliw_core::pipeline::CompilerConfig;
use vliw_core::qrf::{allocate_queues, insert_copies, use_lifetimes};
use vliw_core::sched::{modulo_schedule, ImsOptions};
use vliw_core::unroll::unroll_ddg;
use vliw_core::{
    kernels, partition_schedule, LatencyModel, Machine, PartitionOptions, Session, SweepGrid,
};

use crate::{bench_config, BENCH_CORPUS_LOOPS, BENCH_SEED};

/// Format version of the trend file; bump when probes change incompatibly.
pub const PERF_SCHEMA: u32 = 1;

/// One timed probe of the suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfProbe {
    /// Stable probe name (`group/benchmark`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations the mean was taken over.
    pub iters: u64,
}

/// The whole trend document — what `BENCH_session.json` holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Format version ([`PERF_SCHEMA`]).
    pub schema: u32,
    /// Corpus size of the corpus-level probes.
    pub corpus_loops: usize,
    /// Corpus seed of the corpus-level probes.
    pub seed: u64,
    /// The probes, in suite order.
    pub probes: Vec<PerfProbe>,
}

impl PerfReport {
    /// Looks a probe up by name.
    pub fn probe(&self, name: &str) -> Option<&PerfProbe> {
        self.probes.iter().find(|p| p.name == name)
    }
}

/// Times `f`: one untimed warm-up call, then repeats until the probe has both
/// `min_iters` iterations and `min_millis` of accumulated wall clock (capped
/// at 100k iterations), reporting the mean.
pub fn time_probe<R>(
    name: &str,
    min_iters: u64,
    min_millis: u64,
    mut f: impl FnMut() -> R,
) -> PerfProbe {
    std::hint::black_box(f());
    let budget = std::time::Duration::from_millis(min_millis);
    let mut iters = 0u64;
    let mut elapsed = std::time::Duration::ZERO;
    while iters < min_iters || elapsed < budget {
        let start = Instant::now();
        std::hint::black_box(f());
        elapsed += start.elapsed();
        iters += 1;
        if iters >= 100_000 {
            break;
        }
    }
    PerfProbe {
        name: name.to_string(),
        ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
        iters,
    }
}

/// Runs the standard suite and returns the trend document.
///
/// Kept deliberately small (seconds, not minutes): the corpus-level probes use
/// the 32-loop bench corpus ([`BENCH_CORPUS_LOOPS`]), the kernel-level probes
/// the shared kernel set.
pub fn collect() -> PerfReport {
    let lat = LatencyModel::default();
    let kernel_set = kernels::all_kernels(lat);
    let single12 = Machine::single_cluster(12, 4, 32, lat);
    let clustered = Machine::paper_clustered(4, lat);
    let paper6 = Machine::paper_single(6);
    let cfg = bench_config();

    let mut probes = Vec::new();

    // scheduler_micro — one iteration schedules the whole kernel set.
    let unrolled4: Vec<_> = kernel_set.iter().map(|lp| unroll_ddg(&lp.ddg, 4).ddg).collect();
    probes.push(time_probe("scheduler_micro/modulo_schedule_x4", 5, 250, || {
        unrolled4
            .iter()
            .map(|g| modulo_schedule(g, &single12, ImsOptions::default()).unwrap().schedule.ii)
            .sum::<u32>()
    }));
    let bodies2: Vec<_> =
        kernel_set.iter().map(|lp| insert_copies(&unroll_ddg(&lp.ddg, 2).ddg, &lat).ddg).collect();
    probes.push(time_probe("scheduler_micro/partition_schedule_x2", 5, 250, || {
        bodies2
            .iter()
            .map(|g| {
                partition_schedule(g, &clustered, PartitionOptions::default()).unwrap().schedule.ii
            })
            .sum::<u32>()
    }));
    // allocator micro — queue allocation over precomputed lifetimes.
    let lifetime_sets: Vec<_> = kernel_set
        .iter()
        .map(|lp| {
            let body = insert_copies(&unroll_ddg(&lp.ddg, 4).ddg, &lat).ddg;
            let sched = modulo_schedule(&body, &single12, ImsOptions::default()).unwrap().schedule;
            let lts = use_lifetimes(&body, &sched);
            (lts, sched.ii)
        })
        .collect();
    probes.push(time_probe("scheduler_micro/allocate_queues", 5, 250, || {
        lifetime_sets.iter().map(|(lts, ii)| allocate_queues(lts, *ii).num_queues()).sum::<usize>()
    }));

    // placement — cold scheduling of the whole bench corpus.
    let corpus_bodies: Vec<_> =
        cfg.corpus().iter().map(|lp| insert_copies(&lp.ddg, &lat).ddg).collect();
    probes.push(time_probe("placement/ims_corpus_cold", 5, 250, || {
        corpus_bodies
            .iter()
            .map(|g| modulo_schedule(g, &paper6, ImsOptions::default()).unwrap().schedule.ii)
            .sum::<u32>()
    }));

    // session — the cold compile path through the memo store, untraced and
    // with tracing spans recording.  The two sides are timed in *alternating*
    // iterations of one measurement window so machine-load drift hits both
    // equally: the traced/untraced ratio is what CI asserts (< 1.05), and on
    // a shared runner two windows seconds apart wobble by more than the
    // overhead being measured.
    let run_cold = || {
        let session = Session::new(cfg.clone());
        let compiler = session.compiler(CompilerConfig::paper_defaults(paper6.clone()));
        session.sweep(|i, _| compiler.compile(i).is_ok())
    };
    std::hint::black_box(run_cold());
    let budget = std::time::Duration::from_millis(500);
    let mut cold_elapsed = std::time::Duration::ZERO;
    let mut traced_elapsed = std::time::Duration::ZERO;
    let mut cold_iters = 0u64;
    while cold_iters < 5 || cold_elapsed + traced_elapsed < budget {
        let start = Instant::now();
        std::hint::black_box(run_cold());
        cold_elapsed += start.elapsed();
        // Clear the previous iteration's events outside the timed section so
        // the buffers stay bounded and every iteration pays the same
        // recording cost.
        vliw_obs::enable();
        vliw_obs::clear();
        let start = Instant::now();
        std::hint::black_box(run_cold());
        traced_elapsed += start.elapsed();
        vliw_obs::disable();
        cold_iters += 1;
        if cold_iters >= 100_000 {
            break;
        }
    }
    vliw_obs::clear();
    probes.push(PerfProbe {
        name: "session/compile_corpus_cold".to_string(),
        ns_per_iter: cold_elapsed.as_nanos() as f64 / cold_iters as f64,
        iters: cold_iters,
    });
    probes.push(PerfProbe {
        name: "session/compile_corpus_cold_traced".to_string(),
        ns_per_iter: traced_elapsed.as_nanos() as f64 / cold_iters as f64,
        iters: cold_iters,
    });
    let warm = Session::new(cfg.clone());
    let warm_compiler = warm.compiler(CompilerConfig::paper_defaults(paper6.clone()));
    warm.sweep(|i, _| warm_compiler.compile(i).is_ok());
    probes.push(time_probe("session/compile_corpus_warm", 5, 250, || {
        warm.sweep(|i, _| warm_compiler.compile(i).is_ok())
    }));

    // session — static verification throughput over precompiled loops (the
    // per-loop cost `figures verify` pays once the compilations are cached).
    let compiler6 = vliw_core::Compiler::new(CompilerConfig::paper_defaults(paper6.clone()));
    let compiled: Vec<_> =
        cfg.corpus().iter().filter_map(|lp| compiler6.compile(lp).ok()).collect();
    probes.push(time_probe("session/verify_corpus", 5, 250, || {
        compiled
            .iter()
            .filter(|c| {
                vliw_core::verify::verify_with_allocation(
                    &c.transformed,
                    &paper6,
                    &c.schedule,
                    &c.queues,
                )
                .is_clean()
            })
            .count()
    }));
    // ...and the dynamic cost it replaces: simulating the same schedules to
    // steady state (N = 1000, the trip count the acceptance ratio quotes).
    probes.push(time_probe("session/sim_corpus_n1000", 2, 500, || {
        compiled
            .iter()
            .filter(|c| {
                vliw_core::sim::simulate(&c.transformed, &paper6, &c.schedule, 1000)
                    .expect("compiled schedules simulate")
                    .is_clean()
            })
            .count()
    }));

    // sweep_grid — the small design-space grid, cold.
    probes.push(time_probe("sweep_grid/small_grid_cold", 2, 500, || {
        sweep_experiment(&Session::new(cfg.clone()), SweepGrid::Small).unwrap()
    }));

    // sweep — the certificate-pruned driver.  `pruned_paper` pays the full
    // cold cost of the paper grid (3 shapes consulted, 192 configs recovered
    // by threshold transfer); `huge_smoke` times the pruned aggregation over
    // the 103,680-config huge grid on a warm session, so the probe tracks the
    // prefix-sum machinery rather than the 60 shape compilations the warm-up
    // already paid for.
    probes.push(time_probe("sweep/pruned_paper", 2, 500, || {
        pruned_sweep_experiment(&Session::new(cfg.clone()), SweepGrid::Paper, Classify::Static)
            .unwrap()
    }));
    let huge_session = Session::new(cfg.clone());
    probes.push(time_probe("sweep/huge_smoke", 2, 500, || {
        pruned_sweep_experiment(&huge_session, SweepGrid::Huge, Classify::Static).unwrap()
    }));

    PerfReport { schema: PERF_SCHEMA, corpus_loops: BENCH_CORPUS_LOOPS, seed: BENCH_SEED, probes }
}

/// Renders the per-probe delta of `current` against `baseline` as an aligned
/// table.  Informational only — the caller decides nothing on it (CI prints it
/// warn-only).
pub fn render_delta(current: &PerfReport, baseline: &PerfReport) -> String {
    let mut out =
        String::from("probe                                  baseline      current        delta\n");
    if baseline.schema != current.schema {
        out.push_str(&format!(
            "(schema changed {} -> {}; deltas may not be comparable)\n",
            baseline.schema, current.schema
        ));
    }
    for probe in &current.probes {
        let line = match baseline.probe(&probe.name) {
            Some(base) if base.ns_per_iter > 0.0 => {
                let delta = 100.0 * (probe.ns_per_iter - base.ns_per_iter) / base.ns_per_iter;
                format!(
                    "{:<38} {:>10.1}us {:>10.1}us {:>+10.1}%\n",
                    probe.name,
                    base.ns_per_iter / 1e3,
                    probe.ns_per_iter / 1e3,
                    delta
                )
            }
            _ => format!(
                "{:<38} {:>12} {:>10.1}us {:>11}\n",
                probe.name,
                "-",
                probe.ns_per_iter / 1e3,
                "new"
            ),
        };
        out.push_str(&line);
    }
    for base in &baseline.probes {
        if current.probe(&base.name).is_none() {
            out.push_str(&format!("{:<38} (probe removed)\n", base.name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(probes: &[(&str, f64)]) -> PerfReport {
        PerfReport {
            schema: PERF_SCHEMA,
            corpus_loops: BENCH_CORPUS_LOOPS,
            seed: BENCH_SEED,
            probes: probes
                .iter()
                .map(|(name, ns)| PerfProbe { name: name.to_string(), ns_per_iter: *ns, iters: 10 })
                .collect(),
        }
    }

    #[test]
    fn time_probe_counts_its_iterations() {
        let mut calls = 0u64;
        let probe = time_probe("test/probe", 7, 0, || calls += 1);
        assert_eq!(probe.name, "test/probe");
        assert_eq!(probe.iters, 7);
        // One warm-up call on top of the timed iterations.
        assert_eq!(calls, 8);
        assert!(probe.ns_per_iter >= 0.0);
    }

    #[test]
    fn delta_table_covers_changed_new_and_removed_probes() {
        let baseline = report(&[("a/one", 1000.0), ("a/gone", 500.0)]);
        let current = report(&[("a/one", 1500.0), ("a/new", 2000.0)]);
        let table = render_delta(&current, &baseline);
        assert!(table.contains("a/one"));
        assert!(table.contains("+50.0%"));
        assert!(table.contains("a/new"));
        assert!(table.contains("new"));
        assert!(table.contains("a/gone"));
        assert!(table.contains("removed"));
    }

    #[test]
    fn report_round_trips_through_serde() {
        let report = report(&[("a/one", 123.4)]);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
