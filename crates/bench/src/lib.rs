//! Shared helpers for the benchmark harness and the `figures` binary.
//!
//! The `vliw-bench` crate regenerates every table and figure of the paper's
//! evaluation:
//!
//! * `cargo run --release -p vliw-bench --bin figures` prints the data series of
//!   Figs. 3, 4, 6, 8 and 9 plus the Section-2 copy-cost statistics and the
//!   Section-4 cluster-resource sizing (EXPERIMENTS.md records that output);
//! * `cargo bench -p vliw-bench` times each experiment driver and the individual
//!   scheduler passes with Criterion.

use vliw_core::experiments::ExperimentConfig;

/// Corpus size used by the Criterion benches.
///
/// The benches time the experiment *machinery*; a few dozen loops keep each
/// iteration affordable while exercising every code path.  The `figures` binary uses
/// the full 1258-loop corpus instead.
pub const BENCH_CORPUS_LOOPS: usize = 32;

/// Seed shared by the benches so their corpora are identical across runs.
pub const BENCH_SEED: u64 = 386;

/// The experiment configuration used by the Criterion benches.
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(BENCH_CORPUS_LOOPS, BENCH_SEED);
    // Criterion already parallelises across samples poorly with nested threads;
    // keep the sweep itself modestly parallel.
    cfg.threads = cfg.threads.min(4);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small_and_deterministic() {
        let a = bench_config();
        let b = bench_config();
        assert_eq!(a.corpus.num_loops, BENCH_CORPUS_LOOPS);
        assert_eq!(a.corpus.seed, BENCH_SEED);
        assert_eq!(a.corpus().len(), b.corpus().len());
    }
}
