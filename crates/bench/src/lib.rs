//! Shared machinery of the benchmark harness and the `figures` experiment CLI.
//!
//! The `vliw-bench` crate regenerates every table and figure of the paper's
//! evaluation:
//!
//! * `cargo run --release -p vliw-bench --bin figures -- all` prints the data
//!   series of Figs. 3, 4, 6, 8 and 9 plus the Section-2 copy-cost statistics and
//!   the Section-4 cluster-resource sizing (EXPERIMENTS.md records that output);
//!   `--format json` emits the same data as a machine-readable [`FiguresReport`],
//!   which the golden-baseline regression test diffs against
//!   `baselines/figures_small.json`;
//! * `cargo bench -p vliw-bench` times each experiment driver and the individual
//!   scheduler passes.
//!
//! All experiments run through one shared [`Session`] per invocation: the corpus
//! is generated once, overlapping sweep points across drivers compile once, and
//! the CLI reports the session's cache statistics (stdout in text mode, a small
//! JSON object on stderr in JSON mode — stdout stays byte-identical to the
//! baseline format).

pub mod cli;
pub mod client;
pub mod perf;

use serde::{Deserialize, Serialize};
use vliw_core::experiments::{
    cluster_resources_experiment, copy_cost_experiment, fig3_experiment, fig4_experiment,
    fig6_experiment, fig8_experiment, fig9_experiment, pruned_sweep_experiment_with,
    simulate_experiment, sweep_experiment_with, verify_experiment, Classify, ClusterResourcesRow,
    CopyCostRow, ExperimentConfig, ExperimentRequest, ExperimentResponse, Fig3Row, Fig4Row,
    Fig6Row, IpcCurvePoint, SimulateReport, SweepReport, VerifyReport,
};
use vliw_core::experiments::{
    copy_cost, fig3, fig4, fig6, ipc, resources, simulate, sweep, verify,
};
use vliw_core::pipeline::CompilerConfig;
use vliw_core::session::{compile_stream, Session, SessionStats, StreamConfig, StreamReport};
use vliw_core::{Machine, SweepGrid, VliwError};

pub use client::{validate_server, ServeClient};

/// Corpus size used by the Criterion benches and the CI bench-smoke run.
///
/// The benches time the experiment *machinery*; a few dozen loops keep each
/// iteration affordable while exercising every code path.  The `figures` binary uses
/// the full 1258-loop corpus by default instead.
pub const BENCH_CORPUS_LOOPS: usize = 32;

/// Seed shared by the benches so their corpora are identical across runs.
pub const BENCH_SEED: u64 = 386;

/// Number of loops of the paper's benchmark suite (the default `figures` corpus).
pub const PAPER_CORPUS_LOOPS: usize = 1258;

/// Cluster counts evaluated by the cluster-resource driver (the paper's machines).
pub const RESOURCE_CLUSTER_COUNTS: [usize; 3] = [4, 5, 6];

/// The experiment configuration used by the Criterion benches.
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(BENCH_CORPUS_LOOPS, BENCH_SEED);
    // Criterion already parallelises across samples poorly with nested threads;
    // keep the sweep itself modestly parallel.
    cfg.threads = cfg.threads.min(4);
    cfg
}

/// Output format of the `figures` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable aligned tables (the EXPERIMENTS.md format).
    Text,
    /// A machine-readable [`FiguresReport`] as pretty-printed JSON.
    Json,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("unknown format `{other}` (expected `text` or `json`)")),
        }
    }
}

/// Which experiments a `figures` invocation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Fig. 3 — number of queues required.
    Fig3,
    /// Section 2 — II / stage-count cost of copy insertion.
    CopyCost,
    /// Fig. 4 — II speedup from loop unrolling.
    Fig4,
    /// Fig. 6 — II variation of the partitioned schedules.
    Fig6,
    /// Fig. 7 / Section 4 — queue demand per cluster and ring link.
    Resources,
    /// Figs. 8 and 9 — static/dynamic IPC curves.
    Ipc,
    /// Cycle-accurate simulation: dynamic verification plus simulated IPC.
    ///
    /// Deliberately **not** part of [`Selection::All`]: the simulated-IPC
    /// report is a separate document ([`SimulateReport`]) with its own golden
    /// baseline, and `figures all` stdout must stay byte-identical to
    /// `baselines/figures_small.json`.
    Simulate,
    /// The Fig. 7 machine design-space sweep.
    ///
    /// Like [`Selection::Simulate`], excluded from [`Selection::All`]: its
    /// report ([`SweepReport`]) is a separate document pinned by
    /// `baselines/sweep_small.json`.
    Sweep,
    /// Streamed corpus compilation: bounded shards, flat memory, aggregate
    /// metrics only ([`StreamReport`]).
    ///
    /// Excluded from [`Selection::All`] like the other separate documents,
    /// and strictly in-process: the run exists to measure *this* process's
    /// memory behaviour, so `--server` is rejected.
    Stream,
    /// Static verification: the execution-free soundness proof of every
    /// schedule ([`VerifyReport`]), the fast counterpart of
    /// [`Selection::Simulate`].
    ///
    /// Excluded from [`Selection::All`] like the other separate documents;
    /// its report is pinned by `baselines/verify_small.json`.
    Verify,
    /// Scrape a `vliw-serve` daemon's telemetry (Prometheus text exposition).
    ///
    /// Strictly remote: the metrics live in the daemon's process, so the
    /// `figures` CLI rejects it without `--server`.  Not part of
    /// [`Selection::All`].
    Metrics,
    /// Every figure experiment (everything above except `Simulate`, `Sweep`,
    /// `Stream`, `Verify` and `Metrics`).
    All,
}

impl Selection {
    /// Maps a `figures` subcommand name to a selection.
    pub fn from_subcommand(name: &str) -> Option<Selection> {
        match name {
            "fig3" => Some(Selection::Fig3),
            "copy-cost" => Some(Selection::CopyCost),
            "fig4" => Some(Selection::Fig4),
            "fig6" => Some(Selection::Fig6),
            "resources" => Some(Selection::Resources),
            "ipc" => Some(Selection::Ipc),
            "simulate" => Some(Selection::Simulate),
            "sweep" => Some(Selection::Sweep),
            "stream" => Some(Selection::Stream),
            "verify" => Some(Selection::Verify),
            "metrics" => Some(Selection::Metrics),
            "all" => Some(Selection::All),
            _ => None,
        }
    }

    fn runs(self, which: Selection) -> bool {
        match self {
            // `all` is the figure sweep; the simulation, design-space,
            // streamed-compile and verification reports are separate documents
            // (see [`Selection::Simulate`], [`Selection::Sweep`],
            // [`Selection::Stream`] and [`Selection::Verify`]).
            Selection::All => {
                which != Selection::Simulate
                    && which != Selection::Sweep
                    && which != Selection::Stream
                    && which != Selection::Verify
                    && which != Selection::Metrics
            }
            s => s == which,
        }
    }
}

/// Parameters of a `figures` run, resolved from the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// Number of loops in the synthetic corpus.
    pub corpus_size: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Worker threads for the corpus sweeps (`None` = the driver default).
    pub threads: Option<usize>,
    /// Output format.
    pub format: OutputFormat,
    /// Design-space grid preset of the `sweep` subcommand (ignored by every
    /// other selection).
    pub grid: SweepGrid,
    /// Classification mode of the `sweep` subcommand: dynamic (simulate each
    /// loop) or static (prove the peaks with the verifier).  Ignored by every
    /// other selection.
    pub classify: Classify,
    /// Use the certificate-pruned sweep driver (the `sweep` subcommand's
    /// `--prune true`): one bounds consultation per machine shape instead of
    /// one classification per config, with verdict-identical rows.  Ignored by
    /// every other selection.
    pub prune: bool,
    /// Number of seeded-random (config, loop) pairs the pruned sweep re-derives
    /// through the exhaustive path to audit verdict agreement (the `sweep`
    /// subcommand's `--audit N`; 0 = no audit).  Ignored without `prune`.
    pub audit: usize,
    /// Shard size of the `stream` subcommand (ignored by every other
    /// selection).
    pub shard_size: usize,
    /// Address of a `vliw-serve` daemon to run against (`None` = in-process).
    pub server: Option<String>,
    /// Directory of the persistent artifact cache for in-process runs
    /// (`None` = in-memory only; ignored with `--server` — the daemon owns
    /// its own cache).
    pub cache_dir: Option<std::path::PathBuf>,
    /// File to write a Chrome `trace_event` JSON capture of this run to
    /// (`None` = tracing stays disabled).  In-process runs only: the spans
    /// live in this process, so `--trace` is rejected with `--server`.
    pub trace: Option<std::path::PathBuf>,
}

impl RunConfig {
    /// The experiment-driver configuration for this run.
    pub fn experiment_config(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(self.corpus_size, self.seed);
        if let Some(t) = self.threads {
            cfg.threads = t.max(1);
        }
        cfg.cache_dir = self.cache_dir.clone();
        cfg
    }

    /// The streamed-compile configuration for this run (the `stream`
    /// subcommand).
    pub fn stream_config(&self) -> StreamConfig {
        let mut cfg = StreamConfig::new(self.corpus_size, self.seed);
        cfg.shard_size = self.shard_size;
        if let Some(t) = self.threads {
            cfg.threads = t.max(1);
        }
        cfg
    }
}

impl Default for RunConfig {
    /// The default `figures` run: the paper-sized corpus with the paper seed, so a
    /// library caller and a flagless CLI invocation produce the same report.
    fn default() -> Self {
        RunConfig {
            corpus_size: PAPER_CORPUS_LOOPS,
            seed: vliw_core::CorpusConfig::paper_default().seed,
            threads: None,
            format: OutputFormat::Text,
            grid: SweepGrid::Small,
            classify: Classify::default(),
            prune: false,
            audit: 0,
            shard_size: vliw_core::session::DEFAULT_SHARD_SIZE,
            server: None,
            cache_dir: None,
            trace: None,
        }
    }
}

/// Everything one `figures` run produced.  Experiments that were not selected stay
/// `None` and are omitted-as-null in the JSON output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiguresReport {
    /// Number of loops in the corpus the run evaluated.
    pub corpus_size: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Fig. 3 rows, if selected.
    pub fig3: Option<Vec<Fig3Row>>,
    /// Copy-cost rows, if selected.
    pub copy_cost: Option<Vec<CopyCostRow>>,
    /// Fig. 4 rows, if selected.
    pub fig4: Option<Vec<Fig4Row>>,
    /// Fig. 6 rows, if selected.
    pub fig6: Option<Vec<Fig6Row>>,
    /// Cluster-resource rows, if selected.
    pub cluster_resources: Option<Vec<ClusterResourcesRow>>,
    /// Fig. 8 IPC curve (all loops), if selected.
    pub fig8_ipc: Option<Vec<IpcCurvePoint>>,
    /// Fig. 9 IPC curve (resource-constrained loops), if selected.
    pub fig9_ipc: Option<Vec<IpcCurvePoint>>,
}

/// Runs the selected experiments over a shared compilation session.
///
/// The corpus is generated once (by the session), identical sweep points across
/// drivers compile once, and `session.stats()` afterwards tells how much work the
/// cache shared — the `figures` CLI reports those numbers.
///
/// # Panics
///
/// Panics on [`Selection::Simulate`] and [`Selection::Sweep`]: those produce
/// their own report documents ([`SimulateReport`] / [`SweepReport`]), not a
/// [`FiguresReport`] — route them to [`run_simulate_in`] / [`run_sweep_in`]
/// instead (as the `figures` binary does).
pub fn run_experiments_in(
    session: &Session,
    selection: Selection,
) -> Result<FiguresReport, VliwError> {
    assert!(
        selection != Selection::Simulate,
        "Selection::Simulate produces a SimulateReport; call run_simulate_in"
    );
    assert!(
        selection != Selection::Sweep,
        "Selection::Sweep produces a SweepReport; call run_sweep_in"
    );
    assert!(
        selection != Selection::Stream,
        "Selection::Stream produces a StreamReport; call run_stream"
    );
    assert!(
        selection != Selection::Verify,
        "Selection::Verify produces a VerifyReport; call run_verify_in"
    );
    assert!(
        selection != Selection::Metrics,
        "Selection::Metrics scrapes a daemon; it never runs in-process"
    );
    Ok(FiguresReport {
        corpus_size: session.config().corpus.num_loops,
        seed: session.config().corpus.seed,
        fig3: run_if(selection.runs(Selection::Fig3), || fig3_experiment(session))?,
        copy_cost: run_if(selection.runs(Selection::CopyCost), || copy_cost_experiment(session))?,
        fig4: run_if(selection.runs(Selection::Fig4), || fig4_experiment(session))?,
        fig6: run_if(selection.runs(Selection::Fig6), || fig6_experiment(session))?,
        cluster_resources: run_if(selection.runs(Selection::Resources), || {
            cluster_resources_experiment(session, &RESOURCE_CLUSTER_COUNTS)
        })?,
        fig8_ipc: run_if(selection.runs(Selection::Ipc), || fig8_experiment(session))?,
        fig9_ipc: run_if(selection.runs(Selection::Ipc), || fig9_experiment(session))?,
    })
}

/// Runs `f` when `wanted`, lifting the driver's `Result` over the `Option`.
fn run_if<T>(
    wanted: bool,
    f: impl FnOnce() -> Result<T, VliwError>,
) -> Result<Option<T>, VliwError> {
    if wanted {
        f().map(Some)
    } else {
        Ok(None)
    }
}

/// Runs the selected experiments in a fresh session, discarding the cache
/// statistics.  Convenience wrapper for callers that only need the report (the
/// golden-baseline test, library users).
pub fn run_experiments(selection: Selection, run: &RunConfig) -> Result<FiguresReport, VliwError> {
    run_experiments_in(&Session::new(run.experiment_config()), selection)
}

/// Runs the simulated-IPC experiment (the `figures simulate` subcommand) over a
/// shared compilation session.  The schedules are compiled through the same
/// memo store the figure drivers use, so a session that already ran `all` only
/// pays for the simulation itself.
pub fn run_simulate_in(session: &Session) -> Result<SimulateReport, VliwError> {
    simulate_experiment(session)
}

/// Runs the Fig. 7 design-space sweep (the `figures sweep` subcommand) over a
/// shared compilation session.  Grid points sharing a machine shape compile and
/// simulate (or verify) once; the session's cache statistics afterwards show
/// the hit rate.
pub fn run_sweep_in(
    session: &Session,
    grid: SweepGrid,
    classify: Classify,
) -> Result<SweepReport, VliwError> {
    sweep_experiment_with(session, grid, classify)
}

/// Runs the certificate-pruned design-space sweep (the `figures sweep --prune
/// true` invocation) over a shared compilation session.  The bounds analyzer
/// is consulted once per (machine shape, loop) pair and the per-config rows
/// are recovered by threshold transfer — verdict-identical to
/// [`run_sweep_in`], with the [`vliw_core::experiments::PruneReport`]
/// accounting attached to the report.  `audit` seeded-random (config, loop)
/// pairs are re-derived through the exhaustive path and compared.
pub fn run_pruned_sweep_in(
    session: &Session,
    grid: SweepGrid,
    classify: Classify,
    audit: usize,
) -> Result<SweepReport, VliwError> {
    pruned_sweep_experiment_with(session, grid, classify, audit)
}

/// Runs the static-verification experiment (the `figures verify` subcommand)
/// over a shared compilation session.  Every verdict is memoised next to the
/// compilation that produced it, so a session that already ran `all` pays only
/// for the verification itself — and a repeat run pays nothing.
pub fn run_verify_in(session: &Session) -> Result<VerifyReport, VliwError> {
    verify_experiment(session)
}

/// Runs the streamed-compile experiment (the `figures stream` subcommand):
/// the configured corpus flows through the paper's 6-FU single-cluster
/// compile pipeline in bounded shards, never materialised whole, and only the
/// aggregate [`StreamReport`] survives.  Strictly in-process — no session, no
/// memo store, no daemon — because the report's `peak_rss_kb` is the
/// flat-memory evidence the 100k-loop CI smoke asserts on.
pub fn run_stream(run: &RunConfig) -> Result<StreamReport, VliwError> {
    compile_stream(&run.stream_config(), CompilerConfig::paper_defaults(Machine::paper_single(6)))
}

/// Renders a streamed-compile report in the human-readable EXPERIMENTS.md
/// format.
pub fn render_stream_text(report: &StreamReport) -> String {
    let mut out = format!(
        "## Streamed corpus compile — {} loops in {} shards of {}\n\n\
         compiled        = {} ({} failed)\n\
         mean II         = {:.3}\n\
         mean MII        = {:.3}\n\
         II == MII       = {:.1}% of compiled loops\n\
         mean queues     = {:.3}\n\
         max queue depth = {}\n",
        report.corpus_size,
        report.shards,
        report.shard_size,
        report.compiled,
        report.failed,
        report.mean_ii,
        report.mean_mii,
        100.0 * report.mii_achieved_fraction,
        report.mean_queues,
        report.max_queue_depth,
    );
    if let Some(kb) = report.peak_rss_kb {
        out.push_str(&format!("peak RSS        = {kb} kB\n"));
    }
    out
}

/// The wire requests a `figures` selection translates to, in report order.
///
/// [`Selection::Ipc`] expands to both IPC curves; [`Selection::All`] to the
/// full figure sweep (everything a [`FiguresReport`] holds).  `grid`,
/// `classify`, `prune` and `audit` only matter for [`Selection::Sweep`].
pub fn requests_for(
    selection: Selection,
    grid: SweepGrid,
    classify: Classify,
    prune: bool,
    audit: usize,
) -> Vec<ExperimentRequest> {
    match selection {
        Selection::Simulate => vec![ExperimentRequest::Simulate],
        Selection::Sweep => vec![ExperimentRequest::Sweep { grid, classify, prune, audit }],
        Selection::Verify => vec![ExperimentRequest::Verify],
        // A streamed run has no wire form: it measures this process's memory,
        // so the `figures` binary rejects `--server` before asking.
        Selection::Stream => Vec::new(),
        // A metrics scrape is a protocol-level frame, not an experiment; the
        // `figures` binary sends it through `ServeClient::metrics` directly.
        Selection::Metrics => Vec::new(),
        _ => {
            let mut requests = Vec::new();
            if selection.runs(Selection::Fig3) {
                requests.push(ExperimentRequest::Fig3);
            }
            if selection.runs(Selection::CopyCost) {
                requests.push(ExperimentRequest::CopyCost);
            }
            if selection.runs(Selection::Fig4) {
                requests.push(ExperimentRequest::Fig4);
            }
            if selection.runs(Selection::Fig6) {
                requests.push(ExperimentRequest::Fig6);
            }
            if selection.runs(Selection::Resources) {
                requests.push(ExperimentRequest::Resources {
                    cluster_counts: RESOURCE_CLUSTER_COUNTS.to_vec(),
                });
            }
            if selection.runs(Selection::Ipc) {
                requests.push(ExperimentRequest::Fig8);
                requests.push(ExperimentRequest::Fig9);
            }
            requests
        }
    }
}

/// Assembles a [`FiguresReport`] from daemon responses.
///
/// The responses self-identify, so order does not matter; a `simulate` or
/// `sweep` document in the batch is a protocol error (those are separate
/// reports, never part of a figure run).
pub fn assemble_report(
    corpus_size: usize,
    seed: u64,
    responses: Vec<ExperimentResponse>,
) -> Result<FiguresReport, VliwError> {
    let mut report = FiguresReport {
        corpus_size,
        seed,
        fig3: None,
        copy_cost: None,
        fig4: None,
        fig6: None,
        cluster_resources: None,
        fig8_ipc: None,
        fig9_ipc: None,
    };
    for response in responses {
        match response {
            ExperimentResponse::Fig3(rows) => report.fig3 = Some(rows),
            ExperimentResponse::CopyCost(rows) => report.copy_cost = Some(rows),
            ExperimentResponse::Fig4(rows) => report.fig4 = Some(rows),
            ExperimentResponse::Fig6(rows) => report.fig6 = Some(rows),
            ExperimentResponse::Resources(rows) => report.cluster_resources = Some(rows),
            ExperimentResponse::Fig8(points) => report.fig8_ipc = Some(points),
            ExperimentResponse::Fig9(points) => report.fig9_ipc = Some(points),
            other @ (ExperimentResponse::Simulate(_)
            | ExperimentResponse::Sweep(_)
            | ExperimentResponse::Verify(_)) => {
                return Err(VliwError::Protocol(format!(
                    "a figure report cannot hold a `{}` document",
                    other.name()
                )))
            }
        }
    }
    Ok(report)
}

/// Renders a design-space-sweep report in the human-readable EXPERIMENTS.md
/// format.
pub fn render_sweep_text(report: &SweepReport) -> String {
    let mut out = format!(
        "## Fig. 7 design-space sweep — grid `{}` ({} configs, {} machine shapes, N = {})\n\n{}\n",
        report.grid,
        report.configs,
        report.shapes,
        report.trip_count,
        sweep::render(&report.rows).render()
    );
    if let Some(prune) = &report.prune {
        out.push_str(&format!(
            "\n## Certificate pruning\n\n\
             (config, loop) pairs  = {}\n\
             consultations         = {}\n\
             pruned                = {} ({:.1}%)\n",
            prune.pairs,
            prune.configs_compiled,
            prune.configs_pruned,
            100.0 * prune.pruning_ratio,
        ));
        for code in &prune.codes {
            out.push_str(&format!("{:<22}= {}\n", code.code, code.count));
        }
        if prune.audited > 0 {
            out.push_str(&format!(
                "audited               = {} ({} agreed)\n",
                prune.audited, prune.audit_agreed
            ));
        }
    }
    out
}

/// Renders a simulated-IPC report in the human-readable EXPERIMENTS.md format.
pub fn render_simulate_text(report: &SimulateReport) -> String {
    format!(
        "## Simulated IPC — cycle-accurate execution (trip counts {:?})\n\n{}\n",
        report.trip_counts,
        simulate::render(&report.rows).render()
    )
}

/// Renders a static-verification report in the human-readable EXPERIMENTS.md
/// format.
pub fn render_verify_text(report: &VerifyReport) -> String {
    format!(
        "## Static verification — execution-free soundness proof ({} loops)\n\n{}\n",
        report.corpus_size,
        verify::render(&report.rows).render()
    )
}

/// Renders session cache statistics in the text-output format.
pub fn render_stats(stats: &SessionStats) -> String {
    let mut out = format!(
        "## Compilation-session cache\n\n\
         compilations = {}\ncache hits   = {}\nunique keys  = {}\n",
        stats.compilations, stats.hits, stats.unique_keys
    );
    if stats.sim_runs > 0 || stats.sim_hits > 0 {
        out.push_str(&format!(
            "simulations  = {}\nsim hits     = {}\n",
            stats.sim_runs, stats.sim_hits
        ));
    }
    if stats.verifications > 0 || stats.verify_hits > 0 {
        out.push_str(&format!(
            "verifications= {}\nverify hits  = {}\n",
            stats.verifications, stats.verify_hits
        ));
    }
    if stats.disk_hits > 0 || stats.sim_disk_hits > 0 {
        out.push_str(&format!(
            "disk hits    = {} compile, {} sim\n",
            stats.disk_hits, stats.sim_disk_hits
        ));
    }
    out
}

/// Renders a report in the human-readable EXPERIMENTS.md format.
pub fn render_text(report: &FiguresReport) -> String {
    let mut out = String::new();
    let mut section = |title: &str, table: String| {
        out.push_str(&format!("## {title}\n\n{table}\n"));
    };
    if let Some(rows) = &report.fig3 {
        section("Fig. 3 — Number of queues (cumulative % of loops)", fig3::render(rows).render());
    }
    if let Some(rows) = &report.copy_cost {
        section("Section 2 — Cost of copy operations", copy_cost::render(rows).render());
    }
    if let Some(rows) = &report.fig4 {
        section("Fig. 4 — II speedup from loop unrolling", fig4::render(rows).render());
    }
    if let Some(rows) = &report.fig6 {
        section("Fig. 6 — II variation of partitioned schedules", fig6::render(rows).render());
    }
    if let Some(rows) = &report.cluster_resources {
        section("Fig. 7 / Section 4 — Cluster resource sizing", resources::render(rows).render());
    }
    if let Some(points) = &report.fig8_ipc {
        section("Fig. 8 — Operations issued per cycle (all loops)", ipc::render(points).render());
    }
    if let Some(points) = &report.fig9_ipc {
        section(
            "Fig. 9 — Operations issued per cycle (resource-constrained loops)",
            ipc::render(points).render(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small_and_deterministic() {
        let a = bench_config();
        let b = bench_config();
        assert_eq!(a.corpus.num_loops, BENCH_CORPUS_LOOPS);
        assert_eq!(a.corpus.seed, BENCH_SEED);
        assert_eq!(a.corpus().len(), b.corpus().len());
    }

    #[test]
    fn selection_covers_every_subcommand() {
        for (name, expected) in [
            ("fig3", Selection::Fig3),
            ("copy-cost", Selection::CopyCost),
            ("fig4", Selection::Fig4),
            ("fig6", Selection::Fig6),
            ("resources", Selection::Resources),
            ("ipc", Selection::Ipc),
            ("simulate", Selection::Simulate),
            ("sweep", Selection::Sweep),
            ("stream", Selection::Stream),
            ("verify", Selection::Verify),
            ("all", Selection::All),
        ] {
            assert_eq!(Selection::from_subcommand(name), Some(expected));
        }
        assert_eq!(Selection::from_subcommand("fig5"), None);
    }

    #[test]
    fn all_does_not_include_the_simulation_report() {
        // `figures all` stdout is pinned by baselines/figures_small.json; the
        // simulated-IPC report is a separate document with its own baseline.
        assert!(!Selection::All.runs(Selection::Simulate));
        assert!(!Selection::All.runs(Selection::Sweep));
        assert!(!Selection::All.runs(Selection::Stream));
        assert!(!Selection::All.runs(Selection::Verify));
        assert!(!Selection::All.runs(Selection::Metrics));
        assert!(requests_for(Selection::Metrics, SweepGrid::Small, Classify::Dynamic, false, 0)
            .is_empty());
        assert!(Selection::Simulate.runs(Selection::Simulate));
        assert!(Selection::Sweep.runs(Selection::Sweep));
        assert!(Selection::Stream.runs(Selection::Stream));
        assert!(Selection::Verify.runs(Selection::Verify));
        assert!(!Selection::Simulate.runs(Selection::Fig3));
        assert!(!Selection::Sweep.runs(Selection::Fig3));
        assert!(!Selection::Stream.runs(Selection::Fig3));
        assert!(!Selection::Verify.runs(Selection::Fig3));
        assert!(requests_for(Selection::Stream, SweepGrid::Small, Classify::Dynamic, false, 0)
            .is_empty());
        assert_eq!(
            requests_for(Selection::Verify, SweepGrid::Small, Classify::Dynamic, false, 0),
            vec![ExperimentRequest::Verify]
        );
        assert_eq!(
            requests_for(Selection::Sweep, SweepGrid::Small, Classify::Static, false, 0),
            vec![ExperimentRequest::Sweep {
                grid: SweepGrid::Small,
                classify: Classify::Static,
                prune: false,
                audit: 0
            }]
        );
        assert_eq!(
            requests_for(Selection::Sweep, SweepGrid::Huge, Classify::Static, true, 64),
            vec![ExperimentRequest::Sweep {
                grid: SweepGrid::Huge,
                classify: Classify::Static,
                prune: true,
                audit: 64
            }]
        );
    }

    #[test]
    fn simulate_run_reports_cleanly_and_renders() {
        let run = RunConfig { corpus_size: 6, seed: 5, threads: Some(2), ..RunConfig::default() };
        let session = Session::new(run.experiment_config());
        let report = run_simulate_in(&session).unwrap();
        assert_eq!(report.corpus_size, 6);
        assert_eq!(report.total_violations(), 0);
        assert!(session.stats().sim_runs > 0);
        let text = render_simulate_text(&report);
        assert!(text.contains("Simulated IPC"));
        assert!(text.contains("violations"));
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: SimulateReport = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, report);
    }

    #[test]
    fn verify_run_reports_cleanly_and_renders() {
        let run = RunConfig { corpus_size: 6, seed: 5, threads: Some(2), ..RunConfig::default() };
        let session = Session::new(run.experiment_config());
        let report = run_verify_in(&session).unwrap();
        assert_eq!(report.corpus_size, 6);
        // Schedule faults indict the pipeline and must be zero; capacity
        // faults are a machine-sizing verdict and may legitimately fire
        // (the simulate driver files those under `loops_overflowing_queues`).
        for row in &report.rows {
            assert_eq!(row.schedule_faults, 0, "{}: unsound schedule", row.machine);
        }
        assert!(session.stats().verifications > 0);
        assert_eq!(session.stats().sim_runs, 0, "verification must not simulate");
        let text = render_verify_text(&report);
        assert!(text.contains("Static verification"));
        assert!(text.contains("sched faults"));
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: VerifyReport = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, report);
    }

    #[test]
    fn static_sweep_run_matches_the_dynamic_one() {
        let run = RunConfig { corpus_size: 8, seed: 386, threads: Some(2), ..RunConfig::default() };
        let session = Session::new(run.experiment_config());
        let dynamic = run_sweep_in(&session, run.grid, Classify::Dynamic).unwrap();
        let static_ = run_sweep_in(&session, run.grid, Classify::Static).unwrap();
        assert_eq!(static_, dynamic, "classification modes must agree row for row");
    }

    #[test]
    fn pruned_sweep_run_matches_the_exhaustive_one_and_renders_accounting() {
        let run = RunConfig { corpus_size: 8, seed: 386, threads: Some(2), ..RunConfig::default() };
        let session = Session::new(run.experiment_config());
        let exhaustive = run_sweep_in(&session, run.grid, Classify::Static).unwrap();
        let pruned = run_pruned_sweep_in(&session, run.grid, Classify::Static, 16).unwrap();
        assert_eq!(pruned.rows, exhaustive.rows, "pruning must not change a verdict");
        let prune = pruned.prune.as_ref().expect("a pruned run carries its accounting");
        assert_eq!(prune.audited, 16);
        assert!(prune.audit_clean(), "audited pairs must agree with the exhaustive path");
        let text = render_sweep_text(&pruned);
        assert!(text.contains("Certificate pruning"));
        assert!(text.contains("B006-MONOTONE"));
        assert!(text.contains("audited"));
        // The exhaustive report renders without the accounting section.
        assert!(!render_sweep_text(&exhaustive).contains("Certificate pruning"));
    }

    #[test]
    fn sweep_run_reuses_the_session_and_renders() {
        let run = RunConfig { corpus_size: 8, seed: 386, threads: Some(2), ..RunConfig::default() };
        let session = Session::new(run.experiment_config());
        let report = run_sweep_in(&session, run.grid, run.classify).unwrap();
        assert_eq!(report.grid, "small");
        assert_eq!(report.rows.len(), 8);
        let stats = session.stats();
        assert!(stats.hits > 0, "grid points sharing a machine shape must hit the cache");
        assert!(stats.sim_hits > 0, "grid points sharing a machine shape must reuse sim runs");
        let text = render_sweep_text(&report);
        assert!(text.contains("design-space sweep"));
        assert!(text.contains("storage bits"));
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: SweepReport = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, report);
    }

    #[test]
    fn stream_run_aggregates_and_renders() {
        let run = RunConfig {
            corpus_size: 12,
            seed: 386,
            threads: Some(2),
            shard_size: 5,
            ..RunConfig::default()
        };
        let report = run_stream(&run).unwrap();
        assert_eq!(report.corpus_size, 12);
        assert_eq!(report.shards, 3, "12 loops in shards of 5 is 3 shards");
        assert_eq!(report.compiled + report.failed, 12);
        assert!(report.mean_ii >= report.mean_mii, "II is bounded below by MII");
        let text = render_stream_text(&report);
        assert!(text.contains("Streamed corpus compile"));
        assert!(text.contains("max queue depth"));
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: StreamReport = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, report);
    }

    #[test]
    fn output_format_parses() {
        assert_eq!("text".parse(), Ok(OutputFormat::Text));
        assert_eq!("json".parse(), Ok(OutputFormat::Json));
        assert!("yaml".parse::<OutputFormat>().is_err());
    }

    #[test]
    fn run_config_threads_override() {
        let mut run = RunConfig { corpus_size: 10, seed: 3, ..RunConfig::default() };
        assert_eq!(run.experiment_config().corpus.num_loops, 10);
        run.threads = Some(0);
        assert_eq!(run.experiment_config().threads, 1);
        run.threads = Some(2);
        assert_eq!(run.experiment_config().threads, 2);
    }

    #[test]
    fn single_selection_runs_only_its_experiment() {
        let run = RunConfig { corpus_size: 8, seed: 5, threads: Some(1), ..RunConfig::default() };
        let report = run_experiments(Selection::Fig4, &run).unwrap();
        assert!(report.fig4.is_some());
        assert!(report.fig3.is_none());
        assert!(report.copy_cost.is_none());
        assert!(report.fig6.is_none());
        assert!(report.cluster_resources.is_none());
        assert!(report.fig8_ipc.is_none());
        assert!(report.fig9_ipc.is_none());
        let text = render_text(&report);
        assert!(text.contains("Fig. 4"));
        assert!(!text.contains("Fig. 3"));
    }

    #[test]
    fn all_run_shares_work_across_drivers() {
        // The acceptance bar of the session layer: `all` in one session performs
        // strictly fewer compilations than the individual subcommands summed, the
        // cache reports hits, and the report is identical either way.
        let run = RunConfig { corpus_size: 10, seed: 5, threads: Some(2), ..RunConfig::default() };
        let singles = [
            Selection::Fig3,
            Selection::CopyCost,
            Selection::Fig4,
            Selection::Fig6,
            Selection::Resources,
            Selection::Ipc,
        ];
        let mut sum_of_singles = 0;
        let mut merged = FiguresReport {
            corpus_size: run.corpus_size,
            seed: run.seed,
            fig3: None,
            copy_cost: None,
            fig4: None,
            fig6: None,
            cluster_resources: None,
            fig8_ipc: None,
            fig9_ipc: None,
        };
        for selection in singles {
            let session = Session::new(run.experiment_config());
            let report = run_experiments_in(&session, selection).unwrap();
            sum_of_singles += session.stats().compilations;
            match selection {
                Selection::Fig3 => merged.fig3 = report.fig3,
                Selection::CopyCost => merged.copy_cost = report.copy_cost,
                Selection::Fig4 => merged.fig4 = report.fig4,
                Selection::Fig6 => merged.fig6 = report.fig6,
                Selection::Resources => merged.cluster_resources = report.cluster_resources,
                Selection::Ipc => {
                    merged.fig8_ipc = report.fig8_ipc;
                    merged.fig9_ipc = report.fig9_ipc;
                }
                Selection::All
                | Selection::Simulate
                | Selection::Sweep
                | Selection::Stream
                | Selection::Verify
                | Selection::Metrics => {
                    unreachable!()
                }
            }
        }

        let session = Session::new(run.experiment_config());
        let all = run_experiments_in(&session, Selection::All).unwrap();
        let stats = session.stats();
        assert!(
            stats.compilations < sum_of_singles,
            "all-run compiled {} times, the subcommands summed to {sum_of_singles}",
            stats.compilations
        );
        assert!(stats.hits > 0, "the all run must share sweep points across drivers");
        assert_eq!(all, merged, "sharing the session must not change any figure");
    }

    #[test]
    fn render_stats_mentions_every_counter() {
        let s = render_stats(&vliw_core::SessionStats {
            compilations: 12,
            hits: 34,
            disk_hits: 0,
            unique_keys: 5,
            sim_runs: 0,
            sim_hits: 0,
            sim_disk_hits: 0,
            verifications: 0,
            verify_hits: 0,
        });
        assert!(s.contains("12") && s.contains("34") && s.contains('5'));
        assert!(s.contains("Compilation-session cache"));
        assert!(!s.contains("simulations"), "sim counters only appear when sims ran");
        assert!(!s.contains("verifications"), "verify counters only appear when verifies ran");
        let s = render_stats(&vliw_core::SessionStats {
            compilations: 12,
            hits: 34,
            disk_hits: 0,
            unique_keys: 5,
            sim_runs: 7,
            sim_hits: 2,
            sim_disk_hits: 0,
            verifications: 9,
            verify_hits: 3,
        });
        assert!(s.contains("simulations  = 7"));
        assert!(s.contains("sim hits     = 2"));
        assert!(s.contains("verifications= 9"));
        assert!(s.contains("verify hits  = 3"));
    }

    #[test]
    fn json_report_round_trips_through_serde() {
        let run = RunConfig { corpus_size: 8, seed: 5, threads: Some(1), ..RunConfig::default() };
        let report = run_experiments(Selection::Fig6, &run).unwrap();
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: FiguresReport = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, report);
    }
}
