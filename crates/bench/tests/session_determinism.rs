//! Determinism gate of the session layer: the same seed must produce the same
//! `FiguresReport` — and the same cache statistics — regardless of the worker
//! thread count, so the work-stealing executor and the memo store cannot leak
//! scheduling nondeterminism into the reproduced figures.  CI enforces the same
//! property end-to-end by diffing two `figures all --format json` runs.

use vliw_bench::{run_experiments_in, OutputFormat, RunConfig, Selection};
use vliw_core::Session;

#[test]
fn reports_are_identical_across_thread_counts() {
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        let run = RunConfig {
            corpus_size: 12,
            seed: 19980330,
            threads: Some(threads),
            format: OutputFormat::Json,
            ..RunConfig::default()
        };
        let session = Session::new(run.experiment_config());
        let report = run_experiments_in(&session, Selection::All).expect("experiments run");
        let stats = session.stats();
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        match &reference {
            None => reference = Some((report, stats, json)),
            Some((ref_report, ref_stats, ref_json)) => {
                assert_eq!(&report, ref_report, "report diverged at {threads} threads");
                assert_eq!(
                    &stats, ref_stats,
                    "cache statistics diverged at {threads} threads (the hit/miss \
                     accounting must be schedule-independent)"
                );
                assert_eq!(&json, ref_json, "serialized JSON diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn two_sessions_over_the_same_seed_agree() {
    let run = RunConfig { corpus_size: 10, seed: 7, threads: Some(3), ..RunConfig::default() };
    let a = Session::new(run.experiment_config());
    let b = Session::new(run.experiment_config());
    assert_eq!(
        run_experiments_in(&a, Selection::All).unwrap(),
        run_experiments_in(&b, Selection::All).unwrap()
    );
    assert_eq!(a.stats(), b.stats());
}
