//! Golden-baseline regression test: re-runs the small-corpus sweep that produced
//! `baselines/figures_small.json` and diffs the result against the checked-in
//! numbers, so any change to the reproduced paper figures fails CI deterministically.
//!
//! To regenerate the baseline after an *intentional* change to the experiment
//! pipeline:
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures -- \
//!     all --format json --corpus-size 32 --seed 386 > baselines/figures_small.json
//! ```

use std::path::PathBuf;

use vliw_bench::{run_experiments_in, FiguresReport, OutputFormat, RunConfig, Selection};
use vliw_core::Session;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines/figures_small.json")
}

fn load_baseline() -> (String, FiguresReport) {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not a valid FiguresReport: {e}", path.display()));
    (text, report)
}

#[test]
fn baseline_deserializes_into_the_row_types() {
    let (_, baseline) = load_baseline();
    assert_eq!(baseline.corpus_size, 32);
    assert_eq!(baseline.seed, 386);
    // The `all` sweep fills every experiment.
    assert!(baseline.fig3.is_some());
    assert!(baseline.copy_cost.is_some());
    assert!(baseline.fig4.is_some());
    assert!(baseline.fig6.is_some());
    assert!(baseline.cluster_resources.is_some());
    assert!(baseline.fig8_ipc.is_some());
    assert!(baseline.fig9_ipc.is_some());
}

#[test]
fn rerun_matches_the_golden_baseline() {
    let (text, baseline) = load_baseline();
    let run = RunConfig {
        corpus_size: baseline.corpus_size,
        seed: baseline.seed,
        threads: None, // results are thread-count independent
        format: OutputFormat::Json,
        ..RunConfig::default()
    };
    let session = Session::new(run.experiment_config());
    let report = run_experiments_in(&session, Selection::All).expect("experiments run");

    // The shared compilation session must not change the figures — and it must
    // actually share: every driver overlap is served from the cache.
    let stats = session.stats();
    assert!(stats.hits > 0, "the all-run must hit the session cache");
    assert!(stats.unique_keys > 0);

    // Piecewise comparison first, for a readable diff when a figure regresses.
    assert_eq!(report.fig3, baseline.fig3, "Fig. 3 rows diverged from the baseline");
    assert_eq!(report.copy_cost, baseline.copy_cost, "copy-cost rows diverged");
    assert_eq!(report.fig4, baseline.fig4, "Fig. 4 rows diverged");
    assert_eq!(report.fig6, baseline.fig6, "Fig. 6 rows diverged");
    assert_eq!(
        report.cluster_resources, baseline.cluster_resources,
        "cluster-resource rows diverged"
    );
    assert_eq!(report.fig8_ipc, baseline.fig8_ipc, "Fig. 8 IPC curve diverged");
    assert_eq!(report.fig9_ipc, baseline.fig9_ipc, "Fig. 9 IPC curve diverged");

    // And the serialized form must match byte for byte (catches format drift; see
    // the module docs for how to regenerate intentionally).
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    assert_eq!(rendered.trim_end(), text.trim_end(), "serialized JSON drifted");
}
