//! Golden-baseline regression test of the static-verification experiment:
//! re-runs the `figures verify` invocation that produced
//! `baselines/verify_small.json` and diffs the result against the checked-in
//! rows, so any drift in the verifier's verdicts — a new violation, a changed
//! steady-state peak, a moved copy-bus utilisation — fails CI
//! deterministically.
//!
//! To regenerate the baseline after an *intentional* change:
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures -- \
//!     verify --format json --corpus-size 32 --seed 386 \
//!     > baselines/verify_small.json
//! ```

use std::path::PathBuf;

use vliw_bench::{run_verify_in, RunConfig};
use vliw_core::experiments::VerifyReport;
use vliw_core::Session;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines/verify_small.json")
}

fn load_baseline() -> (String, VerifyReport) {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not a valid VerifyReport: {e}", path.display()));
    (text, report)
}

#[test]
fn baseline_proves_the_golden_corpus_clean() {
    let (_, baseline) = load_baseline();
    assert_eq!(baseline.corpus_size, 32);
    assert_eq!(baseline.seed, 386);
    assert_eq!(baseline.rows.len(), 4, "one row per simulated machine shape");
    // The acceptance bar: zero violations of either class, corpus-wide, on
    // every machine — the static proof CI relies on instead of simulating.
    assert!(baseline.is_clean(), "the golden corpus must verify clean");
    assert_eq!(baseline.total_violations(), 0);
    for row in &baseline.rows {
        assert_eq!(row.loops, 32, "{}: every corpus loop must schedule", row.machine);
        assert_eq!(row.schedule_faults, 0, "{}", row.machine);
        assert_eq!(row.capacity_faults, 0, "{}", row.machine);
        assert_eq!(row.loops_with_violations, 0, "{}", row.machine);
        assert!(row.max_private_peak > 0, "{}: peaks of a real corpus are nonzero", row.machine);
    }
    // Clustered rows route values over the ring; single-cluster rows cannot.
    for row in &baseline.rows {
        assert_eq!(row.clusters > 1, row.max_comm_peak > 0, "{}", row.machine);
    }
}

#[test]
fn rerun_matches_the_verify_baseline() {
    let (text, baseline) = load_baseline();
    let run = RunConfig {
        corpus_size: baseline.corpus_size,
        seed: baseline.seed,
        threads: None, // results are thread-count independent
        ..RunConfig::default()
    };
    let session = Session::new(run.experiment_config());
    let report = run_verify_in(&session).expect("verify runs");

    // Pure static analysis: the session must never touch the simulator.
    let stats = session.stats();
    assert_eq!(stats.sim_runs, 0, "verification must not simulate: {stats:?}");
    assert!(stats.verifications > 0);

    // Row-by-row first, for a readable diff when a verdict regresses.
    assert_eq!(report.rows.len(), baseline.rows.len());
    for (got, want) in report.rows.iter().zip(&baseline.rows) {
        assert_eq!(got, want, "verify row diverged: {}", want.machine);
    }
    assert_eq!(report, baseline);

    // And the serialized form must match byte for byte (catches format drift;
    // see the module docs for how to regenerate intentionally).
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    assert_eq!(rendered.trim_end(), text.trim_end(), "serialized JSON drifted");
}
