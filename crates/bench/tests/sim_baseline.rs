//! Golden-baseline regression test of the simulated-IPC figure: re-runs the
//! small-corpus `figures simulate` sweep that produced
//! `baselines/sim_small.json` and diffs the result against the checked-in
//! numbers, so any change to the simulator's measurements — or any schedule
//! that stops executing cleanly — fails CI deterministically.
//!
//! To regenerate the baseline after an *intentional* change:
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures -- \
//!     simulate --format json --corpus-size 32 --seed 386 > baselines/sim_small.json
//! ```

use std::path::PathBuf;

use vliw_bench::{run_simulate_in, OutputFormat, RunConfig};
use vliw_core::experiments::{sim_machines, SimulateReport, SIM_TRIP_COUNTS};
use vliw_core::Session;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines/sim_small.json")
}

fn load_baseline() -> (String, SimulateReport) {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not a valid SimulateReport: {e}", path.display()));
    (text, report)
}

#[test]
fn baseline_deserializes_and_is_clean() {
    let (_, baseline) = load_baseline();
    assert_eq!(baseline.corpus_size, 32);
    assert_eq!(baseline.seed, 386);
    assert_eq!(baseline.trip_counts, SIM_TRIP_COUNTS.to_vec());
    assert_eq!(baseline.rows.len(), sim_machines().len() * SIM_TRIP_COUNTS.len());
    // The acceptance bar of the simulator: every scheduled loop of the corpus
    // executes with zero violations, and the execution-observed cycle counts
    // and issue rates agree with the closed forms the figures are derived from.
    assert_eq!(baseline.total_violations(), 0, "scheduled loops must execute cleanly");
    for row in &baseline.rows {
        assert!(row.loops > 0, "{} N={}: no loops simulated", row.machine, row.trip_count);
        assert!(row.cycles_match_formula, "{} N={}", row.machine, row.trip_count);
        assert_eq!(row.max_ipc_abs_error, 0.0, "{} N={}", row.machine, row.trip_count);
    }
}

#[test]
fn rerun_matches_the_sim_baseline() {
    let (text, baseline) = load_baseline();
    let run = RunConfig {
        corpus_size: baseline.corpus_size,
        seed: baseline.seed,
        threads: None, // results are thread-count independent
        format: OutputFormat::Json,
        ..RunConfig::default()
    };
    let session = Session::new(run.experiment_config());
    let report = run_simulate_in(&session).expect("simulation runs");

    // The memoised simulate path must actually have simulated.
    let stats = session.stats();
    assert!(stats.sim_runs > 0);

    // Row-by-row first, for a readable diff when a measurement regresses.
    assert_eq!(report.rows.len(), baseline.rows.len());
    for (got, want) in report.rows.iter().zip(&baseline.rows) {
        assert_eq!(got, want, "sim row diverged: {} N={}", want.machine, want.trip_count);
    }
    assert_eq!(report, baseline);

    // And the serialized form must match byte for byte (catches format drift;
    // see the module docs for how to regenerate intentionally).
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    assert_eq!(rendered.trim_end(), text.trim_end(), "serialized JSON drifted");
}
