//! Golden-baseline regression test of the Fig. 7 design-space sweep: re-runs
//! the small-grid `figures sweep` that produced `baselines/sweep_small.json`
//! and diffs the result against the checked-in rows, so any drift in the
//! classification fractions, the storage accounting or the Pareto frontier
//! fails CI deterministically.
//!
//! To regenerate the baseline after an *intentional* change:
//!
//! ```text
//! cargo run --release -p vliw-bench --bin figures -- \
//!     sweep --grid small --format json --corpus-size 32 --seed 386 \
//!     > baselines/sweep_small.json
//! ```

//! The certificate-pruned driver has its own golden,
//! `baselines/sweep_pruned_small.json`, regenerated the same way with
//! `--prune true --audit 16` appended to the command line above.  Its rows
//! must stay byte-identical to the exhaustive golden's — the pruning is an
//! accounting change, never a verdict change.

use std::path::PathBuf;

use vliw_bench::{run_pruned_sweep_in, run_sweep_in, RunConfig};
use vliw_core::experiments::{Classify, SweepReport};
use vliw_core::{Session, SweepGrid};

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines/sweep_small.json")
}

fn pruned_baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines/sweep_pruned_small.json")
}

fn load_baseline() -> (String, SweepReport) {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not a valid SweepReport: {e}", path.display()));
    (text, report)
}

#[test]
fn baseline_reproduces_the_fig7_conclusion() {
    let (_, baseline) = load_baseline();
    assert_eq!(baseline.corpus_size, 32);
    assert_eq!(baseline.seed, 386);
    assert_eq!(baseline.grid, "small");
    assert_eq!(baseline.rows.len(), 8);
    // The acceptance bar of the sweep: the paper's published sizing — the
    // 8-queue × 8-entry, depth-8-link basic cluster — lies on the reported
    // Pareto frontier of its machine shape.
    assert_eq!(baseline.paper_points().count(), 1);
    assert!(
        baseline.paper_point_is_pareto(),
        "Fig. 7's 8x8 + depth-8 cluster must be Pareto-efficient"
    );
    // And it is not trivially so: the frontier is a strict subset of the grid.
    let frontier = baseline.frontier().count();
    assert!(frontier >= 2, "a one-point frontier would make the claim vacuous");
    assert!(frontier < baseline.rows.len(), "a full-grid frontier would make the claim vacuous");
    for row in &baseline.rows {
        assert_eq!(row.loops, 32);
        assert!(row.frac_clean <= row.frac_alloc_fits.min(row.frac_sim_clean) + 1e-12);
    }
}

#[test]
fn rerun_matches_the_sweep_baseline() {
    let (text, baseline) = load_baseline();
    let run = RunConfig {
        corpus_size: baseline.corpus_size,
        seed: baseline.seed,
        threads: None, // results are thread-count independent
        ..RunConfig::default()
    };
    let session = Session::new(run.experiment_config());
    let report = run_sweep_in(&session, SweepGrid::Small, Classify::Dynamic).expect("sweep runs");

    // The memoisation contract: one machine shape in the grid means one key,
    // and the seven other grid points are served from the store — the
    // compile/sim hit rate must be positive.
    let stats = session.stats();
    assert_eq!(stats.unique_keys, 1);
    assert!(stats.hits > 0, "storage sub-grid must share compilations: {stats:?}");
    assert!(stats.sim_hits > 0, "storage sub-grid must share sim runs: {stats:?}");

    // Row-by-row first, for a readable diff when a fraction regresses.
    assert_eq!(report.rows.len(), baseline.rows.len());
    for (got, want) in report.rows.iter().zip(&baseline.rows) {
        assert_eq!(
            got, want,
            "sweep row diverged: {}q x {}c x {}d",
            want.queues_per_cluster, want.queue_capacity, want.link_depth
        );
    }
    assert_eq!(report, baseline);

    // And the serialized form must match byte for byte (catches format drift;
    // see the module docs for how to regenerate intentionally).
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    assert_eq!(rendered.trim_end(), text.trim_end(), "serialized JSON drifted");
}

#[test]
fn pruned_rerun_matches_its_baseline_and_the_exhaustive_verdicts() {
    let (_, exhaustive) = load_baseline();
    let path = pruned_baseline_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let baseline: SweepReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not a valid SweepReport: {e}", path.display()));

    // Verdict identity across drivers: the pruned golden differs from the
    // exhaustive golden only by its accounting block.
    assert_eq!(baseline.rows, exhaustive.rows, "pruning changed a verdict");
    let prune = baseline.prune.as_ref().expect("the pruned golden carries its accounting");
    assert_eq!(prune.pairs, prune.configs_compiled + prune.configs_pruned);
    assert!(
        prune.configs_compiled * 5 <= prune.pairs,
        "the small grid must already prune >=5x: {} consultations for {} pairs",
        prune.configs_compiled,
        prune.pairs
    );
    assert!(prune.audited > 0, "the golden bakes in a non-trivial audit sample");
    assert!(prune.audit_clean(), "an audited certificate disagreed with the compiler");

    // And the rerun must reproduce the file byte for byte (the audit sample
    // is seeded from the corpus seed, so its counts are deterministic too).
    let run = RunConfig {
        corpus_size: baseline.corpus_size,
        seed: baseline.seed,
        threads: None,
        prune: true,
        audit: prune.audited,
        ..RunConfig::default()
    };
    let session = Session::new(run.experiment_config());
    let report = run_pruned_sweep_in(&session, SweepGrid::Small, Classify::Dynamic, run.audit)
        .expect("pruned sweep runs");
    assert_eq!(report, baseline, "pruned sweep drifted from its golden");
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    assert_eq!(rendered.trim_end(), text.trim_end(), "serialized JSON drifted");
}

#[test]
fn static_classification_reproduces_the_sweep_baseline() {
    // `figures sweep --classify static` must pin to the same golden file as
    // the dynamic run: the verifier's proved peaks classify every loop exactly
    // as the simulator's observed ones do, frontier marks included.
    let (_, baseline) = load_baseline();
    let run = RunConfig {
        corpus_size: baseline.corpus_size,
        seed: baseline.seed,
        threads: None,
        ..RunConfig::default()
    };
    let session = Session::new(run.experiment_config());
    let report = run_sweep_in(&session, SweepGrid::Small, Classify::Static).expect("sweep runs");
    assert_eq!(session.stats().sim_runs, 0, "the static sweep must not simulate");
    assert!(session.stats().verifications > 0);
    assert_eq!(report, baseline, "static classification drifted from the golden verdicts");
}
