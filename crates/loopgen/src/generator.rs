//! The synthetic loop generator.
//!
//! Each generated loop is a layered DAG (address arithmetic → loads → arithmetic →
//! stores) with optional recurrence circuits and accumulators, matching the
//! structure of numerical Fortran innermost loops.  Intra-iteration edges always go
//! from a lower-numbered operation to a higher-numbered one, so the distance-0
//! subgraph is acyclic by construction; recurrences are expressed as loop-carried
//! back edges.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use vliw_ddg::{DdgBuilder, Loop, OpId, OpKind};

use crate::config::CorpusConfig;

/// Generates the full corpus described by `cfg`.
///
/// Generation is deterministic: the same configuration (including seed) always
/// produces the same corpus, loop by loop.
pub fn generate_corpus(cfg: &CorpusConfig) -> Vec<Loop> {
    cfg.validate().expect("invalid corpus configuration");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    (0..cfg.num_loops).map(|i| generate_loop(cfg, &mut rng, i)).collect()
}

/// Generates the paper-sized corpus (1258 loops) with the default configuration and
/// the given seed.
pub fn perfect_club_like(seed: u64) -> Vec<Loop> {
    generate_corpus(&CorpusConfig::default().with_seed(seed))
}

/// A lazily generated corpus: loop-by-loop identical to [`generate_corpus`]
/// with the same configuration (one RNG seeded once, consumed sequentially),
/// but yielding one [`Loop`] at a time so corpora of any size stream through
/// bounded memory.
#[derive(Debug, Clone)]
pub struct CorpusStream {
    cfg: CorpusConfig,
    rng: SmallRng,
    next: usize,
}

impl CorpusStream {
    /// Starts a stream over the corpus described by `cfg`.
    pub fn new(cfg: CorpusConfig) -> Self {
        cfg.validate().expect("invalid corpus configuration");
        let rng = SmallRng::seed_from_u64(cfg.seed);
        CorpusStream { cfg, rng, next: 0 }
    }

    /// Number of loops not yet yielded.
    pub fn remaining(&self) -> usize {
        self.cfg.num_loops - self.next
    }
}

impl Iterator for CorpusStream {
    type Item = Loop;

    fn next(&mut self) -> Option<Loop> {
        if self.next >= self.cfg.num_loops {
            return None;
        }
        let lp = generate_loop(&self.cfg, &mut self.rng, self.next);
        self.next += 1;
        Some(lp)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for CorpusStream {}

/// Samples the number of operations of a loop body.
///
/// The distribution is skewed towards small bodies: roughly half the loops have
/// fewer than ten operations, and only a few percent are very large.
fn sample_body_size(rng: &mut SmallRng) -> usize {
    let r: f64 = rng.gen();
    if r < 0.45 {
        rng.gen_range(4..=9)
    } else if r < 0.75 {
        rng.gen_range(10..=19)
    } else if r < 0.92 {
        rng.gen_range(20..=39)
    } else {
        rng.gen_range(40..=79)
    }
}

/// Samples a trip count log-uniformly from the configured range.
fn sample_trip_count(cfg: &CorpusConfig, rng: &mut SmallRng) -> u64 {
    let (lo, hi) = cfg.trip_count_range;
    let (ln_lo, ln_hi) = ((lo as f64).ln(), (hi as f64).ln());
    let x: f64 = rng.gen_range(ln_lo..=ln_hi);
    x.exp().round().clamp(lo as f64, hi as f64) as u64
}

/// Samples the opcode of an arithmetic operation.
fn sample_arith_kind(cfg: &CorpusConfig, rng: &mut SmallRng) -> OpKind {
    let r: f64 = rng.gen();
    if r < cfg.divide_fraction {
        OpKind::Div
    } else if r < cfg.divide_fraction + cfg.multiply_fraction {
        OpKind::Mul
    } else {
        // Mostly adds, with some subtracts and the occasional compare.
        let r2: f64 = rng.gen();
        if r2 < 0.70 {
            OpKind::Add
        } else if r2 < 0.95 {
            OpKind::Sub
        } else {
            OpKind::Compare
        }
    }
}

/// Generates a single loop.
///
/// Address arithmetic is modelled implicitly (auto-increment addressing in the style
/// of the Cydra 5 / Rau's framework the paper builds on), so loads are graph sources
/// and stores are sinks; explicit address-update operations would otherwise dominate
/// the copy-operation counts with fan-out the real benchmark loops do not have.
pub fn generate_loop(cfg: &CorpusConfig, rng: &mut SmallRng, index: usize) -> Loop {
    let body_size = sample_body_size(rng);

    // Split the body between memory and arithmetic operations.
    let n_mem = ((body_size as f64) * cfg.memory_fraction).round().max(1.0) as usize;
    let n_stores = ((n_mem as f64) * cfg.store_fraction).round() as usize;
    let n_loads = (n_mem - n_stores).max(1);
    let n_arith = body_size.saturating_sub(n_loads + n_stores).max(1);

    let mut b = DdgBuilder::with_capacity(cfg.latencies, body_size);

    // Loads: graph sources (addresses are implicit auto-increments).
    let loads: Vec<OpId> = (0..n_loads).map(|_| b.op(OpKind::Load)).collect();

    // Arithmetic: expression-tree style.  Real loop bodies consume most intermediate
    // values exactly once (each value feeds the next node of its expression tree),
    // so operands are drawn from a pool of not-yet-consumed values; reuse of an
    // already-consumed value (fan-out > 1) only happens with a small probability and
    // through the explicit `extra_consumer_probability` knob below.
    let mut values: Vec<OpId> = Vec::with_capacity(n_loads + n_arith);
    values.extend_from_slice(&loads);
    let mut available: Vec<OpId> = Vec::with_capacity(n_loads + n_arith);
    available.extend_from_slice(&loads);
    let mut ariths: Vec<OpId> = Vec::with_capacity(n_arith);
    for _ in 0..n_arith {
        let kind = sample_arith_kind(cfg, rng);
        let op = b.op(kind);
        let n_operands = 1 + usize::from(rng.gen_bool(0.6));
        for _ in 0..n_operands {
            let src = if !available.is_empty() && rng.gen_bool(0.97) {
                let idx = rng.gen_range(0..available.len());
                available.swap_remove(idx)
            } else {
                values[rng.gen_range(0..values.len())]
            };
            b.flow(src, op);
        }
        ariths.push(op);
        values.push(op);
        available.push(op);
    }

    // Stores: write back not-yet-consumed values where possible and order them after
    // the loads that may alias.
    let stores: Vec<OpId> = (0..n_stores)
        .map(|_| {
            let st = b.op(OpKind::Store);
            let src = if !available.is_empty() {
                let idx = rng.gen_range(0..available.len());
                available.swap_remove(idx)
            } else {
                values[rng.gen_range(0..values.len())]
            };
            b.flow(src, st);
            if !loads.is_empty() && rng.gen_bool(0.3) {
                let ld = loads[rng.gen_range(0..loads.len())];
                b.memory(ld, st, 0);
            }
            st
        })
        .collect();

    // Extra consumers: re-use already-consumed values in later operations to create
    // fan-out greater than one (the situation that forces copy operations on a QRF).
    for (vi, &v) in values.iter().enumerate() {
        if rng.gen_bool(cfg.extra_consumer_probability) {
            // Candidate consumers are operations created after the value.  Ops are
            // created in ascending id order, so the later arithmetic ops are
            // exactly a suffix of `ariths` — index it instead of collecting.
            let later_arith = &ariths[ariths.partition_point(|op| op.0 <= v.0)..];
            if let Some(&consumer) = pick(rng, later_arith) {
                b.flow(v, consumer);
            } else if let Some(&consumer) = pick(rng, &stores) {
                if consumer.0 > v.0 {
                    b.flow(v, consumer);
                }
            }
            let _ = vi;
        }
    }

    // Cross-operation recurrence circuits: a late arithmetic value feeds an earlier
    // operation in the next iteration (e.g. `x[i] = f(x[i-1])`).  Most of the time the
    // carried value is one that has no other consumer (a pure register-carried
    // recurrence); the rest of the time it is an arbitrary late value (e.g. a value that is
    // also stored), which is the case that costs a copy operation on a QRF.
    if rng.gen_bool(cfg.recurrence_probability) && !ariths.is_empty() {
        let n_circuits = 1 + usize::from(rng.gen_bool(0.3));
        // `available` does not change while circuits are added, so the set of
        // unconsumed arithmetic values is the same for every circuit.
        let unconsumed_late: Vec<OpId> =
            ariths.iter().copied().filter(|op| available.contains(op)).collect();
        for _ in 0..n_circuits {
            let late = if !unconsumed_late.is_empty() && rng.gen_bool(0.75) {
                unconsumed_late[rng.gen_range(0..unconsumed_late.len())]
            } else {
                ariths[rng.gen_range(ariths.len() / 2..ariths.len())]
            };
            // Feed one of its ancestors (or any earlier arithmetic op) in a later
            // iteration, creating a circuit through the forward path if one exists.
            // The candidate pool is every arith with a smaller id (a prefix of
            // `ariths`, which is in ascending id order) plus every load (loads are
            // created first, so all of them precede `late`); draw the pool index
            // directly instead of materialising the concatenation.
            let n_early_ariths = ariths.partition_point(|op| op.0 < late.0);
            let pool_len = n_early_ariths + loads.len();
            if pool_len > 0 {
                let idx = rng.gen_range(0..pool_len);
                let early =
                    if idx < n_early_ariths { ariths[idx] } else { loads[idx - n_early_ariths] };
                let distance = 1 + u32::from(rng.gen_bool(0.2));
                b.flow_carried(late, early, distance);
            }
        }
    }

    // Accumulators: `s = s + ...` self-recurrences.  The accumulated value is
    // normally consumed only after the loop finishes, so the accumulator is chosen
    // among the values without an in-loop consumer; that keeps the recurrence circuit
    // free of copy operations, exactly like the real reduction loops of the
    // benchmark.
    if rng.gen_bool(cfg.accumulator_probability) {
        let unconsumed: Vec<OpId> =
            ariths.iter().copied().filter(|op| available.contains(op)).collect();
        if let Some(&acc) = pick(rng, &unconsumed) {
            b.flow_carried(acc, acc, 1);
        } else if let Some(&acc) = pick(rng, &ariths) {
            b.flow_carried(acc, acc, 1);
        }
    }

    let trip_count = sample_trip_count(cfg, rng);
    b.finish_loop(format!("synth_{index:04}"), trip_count)
}

fn pick<'a, T>(rng: &mut SmallRng, slice: &'a [T]) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.gen_range(0..slice.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::GraphStats;

    #[test]
    fn corpus_is_deterministic_for_a_seed() {
        let a = generate_corpus(&CorpusConfig::small(25, 3));
        let b = generate_corpus(&CorpusConfig::small(25, 3));
        assert_eq!(a.len(), 25);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn stream_matches_the_eager_corpus_loop_by_loop() {
        let cfg = CorpusConfig::small(60, 7);
        let eager = generate_corpus(&cfg);
        let stream = CorpusStream::new(cfg);
        assert_eq!(stream.len(), 60);
        let streamed: Vec<Loop> = stream.collect();
        assert_eq!(eager, streamed);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(&CorpusConfig::small(25, 3));
        let b = generate_corpus(&CorpusConfig::small(25, 4));
        assert_ne!(a, b);
    }

    #[test]
    fn all_generated_loops_are_valid() {
        for l in generate_corpus(&CorpusConfig::small(200, 11)) {
            assert!(l.ddg.validate().is_ok(), "{} is structurally invalid", l.name);
            assert!(l.ddg.num_ops() >= 4, "{} is too small", l.name);
            assert!(l.trip_count >= 4);
            assert!(l.trip_count <= 1000);
        }
    }

    #[test]
    fn corpus_statistics_are_plausible() {
        let corpus = generate_corpus(&CorpusConfig::small(400, 5));
        let n = corpus.len() as f64;
        let avg_ops: f64 = corpus.iter().map(|l| l.ddg.num_ops() as f64).sum::<f64>() / n;
        let frac_recurrent = corpus.iter().filter(|l| l.ddg.has_recurrence()).count() as f64 / n;
        let frac_multi_consumer =
            corpus.iter().filter(|l| l.ddg.max_fanout() > 1).count() as f64 / n;
        assert!(avg_ops > 8.0 && avg_ops < 30.0, "avg ops {avg_ops} out of expected band");
        // A substantial minority of loops carries a recurrence (accumulators plus
        // cross-operation circuits), matching the Perfect-Club-style mix the paper
        // describes; the rest are fully parallel.
        assert!(
            frac_recurrent > 0.30 && frac_recurrent < 0.85,
            "recurrence fraction {frac_recurrent} implausible"
        );
        assert!(frac_multi_consumer > 0.5, "fan-out too rare: {frac_multi_consumer}");
        let frac_cross_circuit = corpus
            .iter()
            .filter(|l| {
                vliw_ddg::analysis::strongly_connected_components(&l.ddg)
                    .iter()
                    .any(|scc| scc.len() > 1)
            })
            .count() as f64
            / n;
        assert!(
            frac_cross_circuit > 0.15 && frac_cross_circuit < 0.75,
            "cross-op recurrence fraction {frac_cross_circuit} implausible"
        );
    }

    #[test]
    fn loop_names_are_unique_and_indexed() {
        let corpus = generate_corpus(&CorpusConfig::small(50, 9));
        let mut names: Vec<&str> = corpus.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 50);
        assert_eq!(corpus[0].name, "synth_0000");
        assert_eq!(corpus[49].name, "synth_0049");
    }

    #[test]
    fn paper_sized_corpus_has_1258_loops() {
        // Generating the full corpus is cheap (a few milliseconds); verify the count
        // and spot-check validity of a sample.
        let corpus = perfect_club_like(1);
        assert_eq!(corpus.len(), 1258);
        for l in corpus.iter().step_by(100) {
            assert!(l.ddg.validate().is_ok());
        }
    }

    #[test]
    fn stats_helper_reports_classes() {
        let corpus = generate_corpus(&CorpusConfig::small(50, 2));
        let mut any_mul = false;
        let mut any_store = false;
        for l in &corpus {
            let s = GraphStats::of(&l.ddg);
            any_mul |= s.class_counts[vliw_ddg::OpClass::Multiplier.index()] > 0;
            any_store |= l.ddg.ops().any(|o| o.kind == OpKind::Store);
        }
        assert!(any_mul);
        assert!(any_store);
    }
}
