//! Corpus-generation parameters.

use vliw_ddg::LatencyModel;

/// Parameters of the synthetic innermost-loop corpus.
///
/// The defaults are tuned so that the generated corpus matches the coarse statistics
/// of the 1258 Perfect Club innermost loops used by the paper (see DESIGN.md §4):
/// loop bodies are mostly small (a handful to a few tens of operations), a bit under
/// half of the loops carry a recurrence circuit, values typically have one or two
/// consumers with occasional higher fan-out, and trip counts span two to three orders
/// of magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Number of loops to generate.  The paper's corpus has 1258 innermost loops.
    pub num_loops: usize,
    /// Seed of the deterministic pseudo-random generator.  The same seed always
    /// produces the identical corpus, so experiments are reproducible bit-for-bit.
    pub seed: u64,
    /// Latency model used to annotate flow edges.
    pub latencies: LatencyModel,
    /// Probability that a loop contains at least one cross-operation recurrence
    /// circuit (beyond the induction-variable updates every loop has).
    pub recurrence_probability: f64,
    /// Probability that an accumulator-style self-recurrence (`s = s + ...`) is
    /// added to a loop.
    pub accumulator_probability: f64,
    /// Fraction of arithmetic operations that are multiplies (the rest are adds,
    /// subtracts and compares, with a small share of divides controlled by
    /// `divide_fraction`).
    pub multiply_fraction: f64,
    /// Fraction of arithmetic operations that are divides.
    pub divide_fraction: f64,
    /// Approximate fraction of operations that access memory (loads + stores).
    pub memory_fraction: f64,
    /// Of the memory operations, the fraction that are stores.
    pub store_fraction: f64,
    /// Probability that an extra consumer is attached to an already-consumed value,
    /// creating fan-out > 1 (this is what makes copy insertion necessary on a QRF
    /// machine).
    pub extra_consumer_probability: f64,
    /// Minimum and maximum trip counts (sampled log-uniformly).
    pub trip_count_range: (u64, u64),
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_loops: 1258,
            seed: 0x0019_9806_0386,
            latencies: LatencyModel::default(),
            recurrence_probability: 0.40,
            accumulator_probability: 0.25,
            multiply_fraction: 0.35,
            divide_fraction: 0.03,
            memory_fraction: 0.38,
            store_fraction: 0.30,
            extra_consumer_probability: 0.10,
            trip_count_range: (4, 1000),
        }
    }
}

impl CorpusConfig {
    /// The default corpus: 1258 loops, the paper's latency model, default seed.
    pub fn paper_default() -> Self {
        CorpusConfig::default()
    }

    /// A reduced corpus for fast unit tests and Criterion benches.
    pub fn small(num_loops: usize, seed: u64) -> Self {
        CorpusConfig { num_loops, seed, ..CorpusConfig::default() }
    }

    /// Sets the seed, keeping everything else.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the latency model, keeping everything else.
    pub fn with_latencies(mut self, latencies: LatencyModel) -> Self {
        self.latencies = latencies;
        self
    }

    /// Validates that all probabilities and fractions are sane.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("recurrence_probability", self.recurrence_probability),
            ("accumulator_probability", self.accumulator_probability),
            ("multiply_fraction", self.multiply_fraction),
            ("divide_fraction", self.divide_fraction),
            ("memory_fraction", self.memory_fraction),
            ("store_fraction", self.store_fraction),
            ("extra_consumer_probability", self.extra_consumer_probability),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.multiply_fraction + self.divide_fraction > 1.0 {
            return Err("multiply_fraction + divide_fraction must not exceed 1".to_string());
        }
        if self.num_loops == 0 {
            return Err("num_loops must be positive".to_string());
        }
        if self.trip_count_range.0 == 0 || self.trip_count_range.0 > self.trip_count_range.1 {
            return Err(format!("invalid trip count range {:?}", self.trip_count_range));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_sized() {
        let cfg = CorpusConfig::paper_default();
        assert_eq!(cfg.num_loops, 1258);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn small_config_overrides_size_and_seed() {
        let cfg = CorpusConfig::small(10, 7);
        assert_eq!(cfg.num_loops, 10);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builders_chain() {
        let cfg = CorpusConfig::default().with_seed(99).with_latencies(LatencyModel::unit());
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.latencies, LatencyModel::unit());
    }

    #[test]
    fn validation_rejects_bad_probabilities() {
        let cfg = CorpusConfig { recurrence_probability: 1.5, ..CorpusConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = CorpusConfig {
            multiply_fraction: 0.9,
            divide_fraction: 0.2,
            ..CorpusConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = CorpusConfig { num_loops: 0, ..CorpusConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = CorpusConfig { trip_count_range: (100, 10), ..CorpusConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = CorpusConfig { trip_count_range: (0, 10), ..CorpusConfig::default() };
        assert!(cfg.validate().is_err());
    }
}
