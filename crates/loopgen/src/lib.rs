//! Synthetic benchmark-loop corpus generator.
//!
//! The paper evaluates its techniques on 1258 innermost loops extracted from the
//! Perfect Club benchmarks.  That corpus (1988 Fortran sources plus the authors'
//! in-house dependence analysis) is not available, so this crate generates a
//! **deterministic synthetic corpus** with the same coarse statistics: mostly small
//! loop bodies, a realistic mix of memory and arithmetic operations, induction
//! variables, optional recurrence circuits and accumulators, values with fan-out
//! greater than one, and trip counts spanning several orders of magnitude.
//!
//! All experiments in the paper are distributional (fractions of loops with a given
//! property, averages over the corpus), and the algorithms under test interact only
//! with DDG topology, so a corpus with matching topological statistics exercises the
//! same code paths.  See DESIGN.md §4 for the substitution rationale.
//!
//! ```
//! use vliw_loopgen::{CorpusConfig, generate_corpus};
//!
//! let corpus = generate_corpus(&CorpusConfig::small(32, 42));
//! assert_eq!(corpus.len(), 32);
//! assert!(corpus.iter().all(|l| l.ddg.validate().is_ok()));
//! ```

pub mod config;
pub mod generator;

pub use config::CorpusConfig;
pub use generator::{generate_corpus, generate_loop, perfect_club_like, CorpusStream};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example() {
        let corpus = generate_corpus(&CorpusConfig::small(32, 42));
        assert_eq!(corpus.len(), 32);
        assert!(corpus.iter().all(|l| l.ddg.validate().is_ok()));
    }
}
