//! Modulo reservation table (MRT).
//!
//! The MRT records which functional unit is busy at which *modulo slot*
//! (`cycle mod II`).  All functional units are fully pipelined and occupy their unit
//! for a single issue slot, so the table is a simple `II × num_fus` grid of optional
//! operation ids.
//!
//! The grid is mirrored by per-slot `u64` **busy words** (bit `fu` of word
//! `fu / 64`).  The hot `free_fu` probe ANDs the machine's per-class (or
//! per-cluster-and-class) candidate bitmask against the slot's busy words and takes
//! `trailing_zeros`, which returns the lowest-numbered free candidate in a handful
//! of word operations instead of a per-unit occupancy scan.  Both FU index tables
//! are in ascending id order, so the bit-scan answer is identical to the old
//! first-free-in-index-order walk.  The `Option<OpId>` grid stays as the occupant
//! record the eviction path reads.

use vliw_ddg::{OpClass, OpId};
use vliw_machine::{ClusterId, FuId, Machine};

/// Modulo reservation table for a machine at a fixed II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mrt {
    ii: u32,
    num_fus: usize,
    /// `u64` words per slot in `busy` (`⌈num_fus / 64⌉`, matching
    /// [`Machine::fu_mask_words`]).
    words: usize,
    /// `slots[slot * num_fus + fu]` is the operation issued on `fu` at modulo slot
    /// `slot`, if any.
    slots: Vec<Option<OpId>>,
    /// `busy[slot * words + fu / 64]` bit `fu % 64` is set iff `slots[slot][fu]`
    /// is occupied.
    busy: Vec<u64>,
    /// Running count of occupied slots, kept in sync by `reserve`/`release` so
    /// utilisation statistics never rescan the grid.
    occupied: usize,
}

/// An empty zero-unit table at II 1; only useful as a placeholder to
/// [`Mrt::reset`] (scratch reuse takes the table out of the arena by value).
impl Default for Mrt {
    fn default() -> Self {
        Mrt { ii: 1, num_fus: 0, words: 0, slots: Vec::new(), busy: Vec::new(), occupied: 0 }
    }
}

impl Mrt {
    /// Creates an empty table for `machine` at initiation interval `ii`.
    pub fn new(machine: &Machine, ii: u32) -> Self {
        let mut mrt = Mrt::default();
        mrt.reset(machine, ii);
        mrt
    }

    /// Re-shapes the table for `machine` at `ii` and clears every reservation,
    /// keeping the backing allocations (grown monotonically across attempts).
    pub fn reset(&mut self, machine: &Machine, ii: u32) {
        assert!(ii >= 1, "II must be at least 1");
        self.ii = ii;
        self.num_fus = machine.num_fus();
        self.words = machine.fu_mask_words();
        self.slots.clear();
        self.slots.resize(ii as usize * self.num_fus, None);
        self.busy.clear();
        self.busy.resize(ii as usize * self.words, 0);
        self.occupied = 0;
    }

    /// The initiation interval of the table.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    #[inline]
    fn idx(&self, slot: u32, fu: FuId) -> usize {
        debug_assert!(slot < self.ii);
        slot as usize * self.num_fus + fu.index()
    }

    /// The modulo slot of an absolute cycle.
    #[inline]
    pub fn slot_of(&self, cycle: u32) -> u32 {
        cycle % self.ii
    }

    /// The operation currently occupying `fu` at modulo slot `cycle % II`, if any.
    pub fn occupant(&self, cycle: u32, fu: FuId) -> Option<OpId> {
        self.slots[self.idx(self.slot_of(cycle), fu)]
    }

    /// The busy words of one modulo slot.
    #[inline]
    fn busy_words(&self, slot: u32) -> &[u64] {
        let base = slot as usize * self.words;
        &self.busy[base..base + self.words]
    }

    /// Finds a free functional unit of class `class` at `cycle`, optionally
    /// restricted to one cluster.  Returns the lowest-numbered free unit.
    ///
    /// Word-parallel: each 64-unit word is candidate-mask AND NOT busy-word; the
    /// first non-zero word's `trailing_zeros` is the answer.
    pub fn free_fu(
        &self,
        machine: &Machine,
        cycle: u32,
        class: OpClass,
        cluster: Option<ClusterId>,
    ) -> Option<FuId> {
        let candidates = match cluster {
            Some(c) => machine.fu_mask_of_class_in_cluster(c, class),
            None => machine.fu_mask_of_class(class),
        };
        let busy = self.busy_words(self.slot_of(cycle));
        for (w, (&cand, &b)) in candidates.iter().zip(busy).enumerate() {
            let free = cand & !b;
            if free != 0 {
                return Some(FuId((w * 64) as u32 + free.trailing_zeros()));
            }
        }
        None
    }

    /// Reserves `fu` at `cycle` for `op`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied (callers must evict first).
    pub fn reserve(&mut self, cycle: u32, fu: FuId, op: OpId) {
        let slot = self.slot_of(cycle);
        let idx = self.idx(slot, fu);
        assert!(
            self.slots[idx].is_none(),
            "MRT slot {} / {} already occupied by {:?}",
            slot,
            fu,
            self.slots[idx]
        );
        self.slots[idx] = Some(op);
        self.busy[slot as usize * self.words + fu.index() / 64] |= 1 << (fu.index() % 64);
        self.occupied += 1;
    }

    /// Releases the reservation of `fu` at `cycle`, returning the evicted operation.
    pub fn release(&mut self, cycle: u32, fu: FuId) -> Option<OpId> {
        let slot = self.slot_of(cycle);
        let idx = self.idx(slot, fu);
        let op = self.slots[idx].take();
        if op.is_some() {
            self.busy[slot as usize * self.words + fu.index() / 64] &= !(1 << (fu.index() % 64));
            self.occupied -= 1;
        }
        op
    }

    /// Number of occupied slots (used by utilisation statistics).  O(1): a running
    /// count maintained by `reserve`/`release`.
    pub fn occupied_slots(&self) -> usize {
        self.occupied
    }

    /// Total number of issue slots in the table (`II × num_fus`).
    pub fn total_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vliw_machine::LatencyModel;

    fn machine() -> Machine {
        Machine::paper_clustered(2, LatencyModel::default())
    }

    #[test]
    fn reserve_and_release() {
        let m = machine();
        let mut mrt = Mrt::new(&m, 3);
        let fu = m.fus_of_class(OpClass::Adder).next().unwrap().id;
        assert_eq!(mrt.occupant(4, fu), None);
        mrt.reserve(4, fu, OpId(7)); // slot 1
        assert_eq!(mrt.occupant(1, fu), Some(OpId(7)));
        assert_eq!(mrt.occupant(4, fu), Some(OpId(7)));
        assert_eq!(mrt.occupant(7, fu), Some(OpId(7)));
        assert_eq!(mrt.occupied_slots(), 1);
        assert_eq!(mrt.release(7, fu), Some(OpId(7)));
        assert_eq!(mrt.occupant(4, fu), None);
        assert_eq!(mrt.occupied_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_reserve_panics() {
        let m = machine();
        let mut mrt = Mrt::new(&m, 2);
        let fu = m.fus_of_class(OpClass::Memory).next().unwrap().id;
        mrt.reserve(0, fu, OpId(1));
        mrt.reserve(2, fu, OpId(2)); // same modulo slot
    }

    #[test]
    fn free_fu_respects_class_and_cluster() {
        let m = machine();
        let mut mrt = Mrt::new(&m, 1);
        // With II=1, each class has exactly one slot per FU.
        let c0 = ClusterId(0);
        let c1 = ClusterId(1);
        let fu0 = mrt.free_fu(&m, 0, OpClass::Multiplier, Some(c0)).unwrap();
        assert_eq!(m.fu(fu0).cluster, c0);
        mrt.reserve(0, fu0, OpId(0));
        assert_eq!(mrt.free_fu(&m, 5, OpClass::Multiplier, Some(c0)), None);
        // The other cluster still has its multiplier free.
        let fu1 = mrt.free_fu(&m, 0, OpClass::Multiplier, Some(c1)).unwrap();
        assert_eq!(m.fu(fu1).cluster, c1);
        // Unrestricted search finds the remaining unit.
        assert_eq!(mrt.free_fu(&m, 0, OpClass::Multiplier, None), Some(fu1));
    }

    #[test]
    fn slot_wraps_modulo_ii() {
        let m = machine();
        let mrt = Mrt::new(&m, 4);
        assert_eq!(mrt.slot_of(0), 0);
        assert_eq!(mrt.slot_of(4), 0);
        assert_eq!(mrt.slot_of(7), 3);
        assert_eq!(mrt.total_slots(), 4 * m.num_fus());
    }

    #[test]
    #[should_panic(expected = "II must be at least 1")]
    fn zero_ii_is_rejected() {
        let m = machine();
        let _ = Mrt::new(&m, 0);
    }

    #[test]
    fn released_empty_slot_keeps_the_count() {
        let m = machine();
        let mut mrt = Mrt::new(&m, 2);
        let fu = m.fus_of_class(OpClass::Adder).next().unwrap().id;
        assert_eq!(mrt.release(0, fu), None);
        assert_eq!(mrt.occupied_slots(), 0);
        mrt.reserve(0, fu, OpId(3));
        assert_eq!(mrt.release(1, fu), None); // other slot: still empty
        assert_eq!(mrt.occupied_slots(), 1);
    }

    /// The verbatim pre-bitmask probe: walk the per-class index and return the
    /// first unit whose occupant cell is empty.  Kept as the executable spec the
    /// word-parallel path must match bit for bit.
    fn free_fu_by_scan(
        mrt: &Mrt,
        machine: &Machine,
        cycle: u32,
        class: OpClass,
        cluster: Option<ClusterId>,
    ) -> Option<FuId> {
        let candidates = match cluster {
            Some(c) => machine.fu_ids_of_class_in_cluster(c, class),
            None => machine.fu_ids_of_class(class),
        };
        candidates.iter().copied().find(|&fu| mrt.occupant(cycle, fu).is_none())
    }

    fn occupied_by_scan(mrt: &Mrt, machine: &Machine, ii: u32) -> usize {
        (0..ii)
            .flat_map(|s| (0..machine.num_fus() as u32).map(move |f| (s, FuId(f))))
            .filter(|&(s, f)| mrt.occupant(s, f).is_some())
            .count()
    }

    proptest! {
        /// Equivalence of the word-parallel probe with the per-unit scan (and of
        /// the running occupancy count with a full-grid recount) over random
        /// reserve/release traffic on machines wide and narrow.
        #[test]
        fn mask_probe_matches_the_per_unit_scan(
            clusters in 1usize..20, // up to 76 FUs: exercises two-word busy rows
            ii in 1u32..8,
            ops in proptest::collection::vec(
                (0u32..32, 0usize..200, 0usize..4, 0u8..2),
                0..60,
            ),
        ) {
            let m = Machine::paper_clustered(clusters, LatencyModel::default());
            let mut mrt = Mrt::new(&m, ii);
            for (i, (cycle, fu_pick, class_pick, do_release)) in ops.into_iter().enumerate() {
                let fu = FuId((fu_pick % m.num_fus()) as u32);
                if do_release == 1 {
                    mrt.release(cycle, fu);
                } else if mrt.occupant(cycle, fu).is_none() {
                    mrt.reserve(cycle, fu, OpId(i as u32));
                }
                let class = OpClass::ALL[class_pick % OpClass::ALL.len()];
                prop_assert_eq!(
                    mrt.free_fu(&m, cycle, class, None),
                    free_fu_by_scan(&mrt, &m, cycle, class, None)
                );
                for c in m.cluster_ids() {
                    prop_assert_eq!(
                        mrt.free_fu(&m, cycle, class, Some(c)),
                        free_fu_by_scan(&mrt, &m, cycle, class, Some(c))
                    );
                }
                prop_assert_eq!(mrt.occupied_slots(), occupied_by_scan(&mrt, &m, ii));
            }
        }
    }
}
