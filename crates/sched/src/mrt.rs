//! Modulo reservation table (MRT).
//!
//! The MRT records which functional unit is busy at which *modulo slot*
//! (`cycle mod II`).  All functional units are fully pipelined and occupy their unit
//! for a single issue slot, so the table is a simple `II × num_fus` grid of optional
//! operation ids.

use vliw_ddg::{OpClass, OpId};
use vliw_machine::{ClusterId, FuId, Machine};

/// Modulo reservation table for a machine at a fixed II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mrt {
    ii: u32,
    num_fus: usize,
    /// `slots[slot * num_fus + fu]` is the operation issued on `fu` at modulo slot
    /// `slot`, if any.
    slots: Vec<Option<OpId>>,
}

impl Mrt {
    /// Creates an empty table for `machine` at initiation interval `ii`.
    pub fn new(machine: &Machine, ii: u32) -> Self {
        assert!(ii >= 1, "II must be at least 1");
        let num_fus = machine.num_fus();
        Mrt { ii, num_fus, slots: vec![None; ii as usize * num_fus] }
    }

    /// The initiation interval of the table.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    #[inline]
    fn idx(&self, slot: u32, fu: FuId) -> usize {
        debug_assert!(slot < self.ii);
        slot as usize * self.num_fus + fu.index()
    }

    /// The modulo slot of an absolute cycle.
    #[inline]
    pub fn slot_of(&self, cycle: u32) -> u32 {
        cycle % self.ii
    }

    /// The operation currently occupying `fu` at modulo slot `cycle % II`, if any.
    pub fn occupant(&self, cycle: u32, fu: FuId) -> Option<OpId> {
        self.slots[self.idx(self.slot_of(cycle), fu)]
    }

    /// Finds a free functional unit of class `class` at `cycle`, optionally
    /// restricted to one cluster.  Returns the lowest-numbered free unit.
    ///
    /// The probe walks the machine's pre-built per-class (or per-cluster-and-class)
    /// unit index, so it touches only candidate units rather than every FU.
    pub fn free_fu(
        &self,
        machine: &Machine,
        cycle: u32,
        class: OpClass,
        cluster: Option<ClusterId>,
    ) -> Option<FuId> {
        let candidates = match cluster {
            Some(c) => machine.fu_ids_of_class_in_cluster(c, class),
            None => machine.fu_ids_of_class(class),
        };
        candidates.iter().copied().find(|&fu| self.occupant(cycle, fu).is_none())
    }

    /// Reserves `fu` at `cycle` for `op`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied (callers must evict first).
    pub fn reserve(&mut self, cycle: u32, fu: FuId, op: OpId) {
        let idx = self.idx(self.slot_of(cycle), fu);
        assert!(
            self.slots[idx].is_none(),
            "MRT slot {} / {} already occupied by {:?}",
            self.slot_of(cycle),
            fu,
            self.slots[idx]
        );
        self.slots[idx] = Some(op);
    }

    /// Releases the reservation of `fu` at `cycle`, returning the evicted operation.
    pub fn release(&mut self, cycle: u32, fu: FuId) -> Option<OpId> {
        let idx = self.idx(self.slot_of(cycle), fu);
        self.slots[idx].take()
    }

    /// Number of occupied slots (used by utilisation statistics).
    pub fn occupied_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total number of issue slots in the table (`II × num_fus`).
    pub fn total_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::LatencyModel;

    fn machine() -> Machine {
        Machine::paper_clustered(2, LatencyModel::default())
    }

    #[test]
    fn reserve_and_release() {
        let m = machine();
        let mut mrt = Mrt::new(&m, 3);
        let fu = m.fus_of_class(OpClass::Adder).next().unwrap().id;
        assert_eq!(mrt.occupant(4, fu), None);
        mrt.reserve(4, fu, OpId(7)); // slot 1
        assert_eq!(mrt.occupant(1, fu), Some(OpId(7)));
        assert_eq!(mrt.occupant(4, fu), Some(OpId(7)));
        assert_eq!(mrt.occupant(7, fu), Some(OpId(7)));
        assert_eq!(mrt.release(7, fu), Some(OpId(7)));
        assert_eq!(mrt.occupant(4, fu), None);
        assert_eq!(mrt.occupied_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_reserve_panics() {
        let m = machine();
        let mut mrt = Mrt::new(&m, 2);
        let fu = m.fus_of_class(OpClass::Memory).next().unwrap().id;
        mrt.reserve(0, fu, OpId(1));
        mrt.reserve(2, fu, OpId(2)); // same modulo slot
    }

    #[test]
    fn free_fu_respects_class_and_cluster() {
        let m = machine();
        let mut mrt = Mrt::new(&m, 1);
        // With II=1, each class has exactly one slot per FU.
        let c0 = ClusterId(0);
        let c1 = ClusterId(1);
        let fu0 = mrt.free_fu(&m, 0, OpClass::Multiplier, Some(c0)).unwrap();
        assert_eq!(m.fu(fu0).cluster, c0);
        mrt.reserve(0, fu0, OpId(0));
        assert_eq!(mrt.free_fu(&m, 5, OpClass::Multiplier, Some(c0)), None);
        // The other cluster still has its multiplier free.
        let fu1 = mrt.free_fu(&m, 0, OpClass::Multiplier, Some(c1)).unwrap();
        assert_eq!(m.fu(fu1).cluster, c1);
        // Unrestricted search finds the remaining unit.
        assert_eq!(mrt.free_fu(&m, 0, OpClass::Multiplier, None), Some(fu1));
    }

    #[test]
    fn slot_wraps_modulo_ii() {
        let m = machine();
        let mrt = Mrt::new(&m, 4);
        assert_eq!(mrt.slot_of(0), 0);
        assert_eq!(mrt.slot_of(4), 0);
        assert_eq!(mrt.slot_of(7), 3);
        assert_eq!(mrt.total_slots(), 4 * m.num_fus());
    }

    #[test]
    #[should_panic(expected = "II must be at least 1")]
    fn zero_ii_is_rejected() {
        let m = machine();
        let _ = Mrt::new(&m, 0);
    }
}
