//! Iterative modulo scheduling for (clustered) VLIW machines.
//!
//! This crate implements the software-pipelining substrate of the IPPS 1998 paper:
//! Rau's **Iterative Modulo Scheduling** (IMS) on top of a modulo reservation table,
//! plus the MII lower bounds (ResMII/RecMII), schedule validation, and the
//! height-based priority function.  The placement loop itself lives in [`core`]: a
//! shared engine (ready queue, window search, forced placement, eviction,
//! dependence-violation unscheduling) parameterised by a [`ClusterPolicy`].  The
//! clustered *partitioning* extension lives in the `vliw-partition` crate, which
//! runs the same engine under its ring/affinity policy.
//!
//! ```
//! use vliw_ddg::{kernels, LatencyModel};
//! use vliw_machine::Machine;
//! use vliw_sched::{modulo_schedule, ImsOptions};
//!
//! let lp = kernels::dot_product(LatencyModel::default(), 1000);
//! let machine = Machine::single_cluster(6, 2, 32, LatencyModel::default());
//! let result = modulo_schedule(&lp.ddg, &machine, ImsOptions::default()).unwrap();
//! assert!(result.schedule.validate(&lp.ddg, &machine).is_ok());
//! assert!(result.schedule.ii >= result.mii);
//! ```

pub mod core;
pub mod ims;
pub mod mii;
pub mod mrt;
pub mod priority;
pub mod schedule;

pub use core::{
    run_placement, run_placement_with, AnyClusterPolicy, ClusterPolicy, Eligibility,
    PlacementEngine, SchedScratch,
};
pub use ims::{modulo_schedule, modulo_schedule_with, ImsOptions, ImsResult};
pub use mii::{has_positive_cycle, mii, rec_mii, res_mii};
pub use mrt::Mrt;
pub use priority::{height_r, height_r_into, priority_order};
pub use schedule::{Schedule, ScheduleViolation};

use std::fmt;

use vliw_ddg::{DdgError, OpClass};

/// Errors reported by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The loop body is empty.
    EmptyGraph,
    /// The dependence graph is structurally invalid.
    InvalidGraph(DdgError),
    /// The graph contains operations of a class the machine has no unit for.
    NoFunctionalUnit {
        /// The missing class.
        class: OpClass,
    },
    /// No schedule was found before the II search limit.
    IiLimitReached {
        /// The largest II tried.
        limit: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::EmptyGraph => write!(f, "cannot schedule an empty loop body"),
            SchedError::InvalidGraph(e) => write!(f, "invalid dependence graph: {e}"),
            SchedError::NoFunctionalUnit { class } => {
                write!(f, "the machine has no functional unit of class {class}")
            }
            SchedError::IiLimitReached { limit } => {
                write!(f, "no schedule found up to II = {limit}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_mention_the_cause() {
        assert!(SchedError::EmptyGraph.to_string().contains("empty"));
        assert!(SchedError::NoFunctionalUnit { class: OpClass::Copy }.to_string().contains("COPY"));
        assert!(SchedError::IiLimitReached { limit: 9 }.to_string().contains('9'));
        assert!(SchedError::InvalidGraph(DdgError::IntraIterationCycle)
            .to_string()
            .contains("cycle"));
    }
}
