//! Scheduling priorities.
//!
//! Rau's iterative modulo scheduling orders operations by *height*: the length of the
//! longest dependence chain from the operation to any other operation, measured with
//! the II-adjusted edge weights `latency − II · distance`.  Operations with large
//! heights head long chains and are scheduled first.

use vliw_ddg::Ddg;

/// II-adjusted heights (`HeightR` in Rau's paper) of every operation.
///
/// The graph may contain cycles; at any II at or above RecMII those cycles have
/// non-positive total weight, so the fixpoint iteration below terminates with the
/// longest-path values.  The iteration is capped at `num_ops + 1` rounds which is
/// sufficient for graphs without positive cycles; if a positive cycle exists (II
/// below RecMII) the values are still well-defined but meaningless, and the scheduler
/// never asks for them in that situation.
pub fn height_r(ddg: &Ddg, ii: u32) -> Vec<i64> {
    let mut h = Vec::new();
    height_r_into(ddg, ii, &mut h);
    h
}

/// [`height_r`] into a caller-owned buffer (cleared and refilled), so repeated
/// scheduling attempts reuse one allocation.
pub fn height_r_into(ddg: &Ddg, ii: u32, h: &mut Vec<i64>) {
    let n = ddg.num_ops();
    h.clear();
    h.resize(n, 0);
    // Heights flow from consumers back to producers.  Intra-iteration edges
    // always point from a lower to a higher operation id, so scanning edges in
    // decreasing id order relaxes whole chains in a single round; only carried
    // back edges (few, and non-positive around any circuit once II >= RecMII)
    // need extra rounds.  The fixpoint is unique for graphs without positive
    // cycles, so the scan direction changes the round count, never the values.
    for _ in 0..=n {
        let mut changed = false;
        for idx in (0..ddg.num_edges()).rev() {
            let e = ddg.edge(vliw_ddg::EdgeId(idx as u32));
            let cand = h[e.dst.index()] + e.weight_at(ii);
            if cand > h[e.src.index()] {
                h[e.src.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// A fixed scheduling order: operations sorted by decreasing height, ties broken by
/// operation id (which keeps the order deterministic).
pub fn priority_order(ddg: &Ddg, ii: u32) -> Vec<vliw_ddg::OpId> {
    let h = height_r(ddg, ii);
    let mut order: Vec<vliw_ddg::OpId> = ddg.op_ids().collect();
    order.sort_by_key(|op| (std::cmp::Reverse(h[op.index()]), op.0));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{DdgBuilder, LatencyModel, OpKind};

    #[test]
    fn chain_heights_decrease_along_the_chain() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let a = b.op(OpKind::Load);
        let c = b.op(OpKind::Add);
        let d = b.op(OpKind::Store);
        b.flow(a, c);
        b.flow(c, d);
        let g = b.finish();
        let h = height_r(&g, 1);
        assert!(h[a.index()] > h[c.index()]);
        assert!(h[c.index()] > h[d.index()]);
        assert_eq!(h[d.index()], 0);
    }

    #[test]
    fn heights_account_for_latency() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load); // latency 2
        let mul = b.op(OpKind::Mul); // latency 2
        let add = b.op(OpKind::Add);
        b.flow(ld, mul);
        b.flow(mul, add);
        let g = b.finish();
        let h = height_r(&g, 1);
        assert_eq!(h[add.index()], 0);
        assert_eq!(h[mul.index()], 2);
        assert_eq!(h[ld.index()], 4);
    }

    #[test]
    fn carried_edges_lower_heights_as_ii_grows() {
        // a -> b (lat 1), b -> a carried (lat 8, dist 1).  At II 9 the back edge
        // contributes nothing; at II 4 it still pushes a's height up.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let x = b.op(OpKind::Add);
        let y = b.op(OpKind::Div);
        b.flow(x, y);
        b.flow_carried(y, x, 1);
        let g = b.finish();
        let h9 = height_r(&g, 9);
        let h100 = height_r(&g, 100);
        assert!(h9[x.index()] >= h100[x.index()]);
        assert_eq!(h100[x.index()], 1);
    }

    #[test]
    fn priority_order_is_deterministic_and_complete() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ops = b.ops(OpKind::Add, 6);
        b.flow(ops[0], ops[5]);
        b.flow(ops[1], ops[4]);
        let g = b.finish();
        let o1 = priority_order(&g, 2);
        let o2 = priority_order(&g, 2);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), 6);
        let mut sorted = o1.clone();
        sorted.sort();
        assert_eq!(sorted, g.op_ids().collect::<Vec<_>>());
    }

    #[test]
    fn sources_of_long_chains_come_first() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let lone = b.op(OpKind::Add);
        let head = b.op(OpKind::Load);
        let mid = b.op(OpKind::Mul);
        let tail = b.op(OpKind::Store);
        b.flow(head, mid);
        b.flow(mid, tail);
        let g = b.finish();
        let order = priority_order(&g, 1);
        assert_eq!(order[0], head);
        // The isolated op has height 0 and sorts after the chain head and middle.
        assert!(order.iter().position(|&o| o == lone).unwrap() > 1);
    }
}
