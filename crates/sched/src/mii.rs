//! Minimum initiation interval (MII) computation.
//!
//! The MII is the larger of two lower bounds:
//!
//! * **ResMII** — the resource-constrained bound: for each functional-unit class,
//!   the number of operations of that class divided by the number of units of that
//!   class, rounded up.
//! * **RecMII** — the recurrence-constrained bound: the smallest II such that every
//!   dependence circuit `c` satisfies `delay(c) ≤ II · distance(c)`.
//!
//! RecMII is computed by a binary search on II, using a Bellman–Ford positive-cycle
//! test on edge weights `latency − II · distance` (a positive cycle at a candidate II
//! means some recurrence circuit cannot be honoured at that II).

use std::cell::RefCell;

use vliw_ddg::{Ddg, OpClass};
use vliw_machine::Machine;

use crate::SchedError;

/// Resource-constrained minimum initiation interval.
///
/// Returns an error if the graph uses a functional-unit class of which the machine
/// has no instance.
pub fn res_mii(ddg: &Ddg, machine: &Machine) -> Result<u32, SchedError> {
    let counts = ddg.class_counts();
    let fus = machine.class_counts();
    let mut bound = 1u32;
    for class in OpClass::ALL {
        let ops = counts[class.index()];
        if ops == 0 {
            continue;
        }
        let units = fus[class.index()];
        if units == 0 {
            return Err(SchedError::NoFunctionalUnit { class });
        }
        bound = bound.max(ops.div_ceil(units) as u32);
    }
    Ok(bound)
}

/// Recurrence-constrained minimum initiation interval.
///
/// Loops without any dependence circuit have `RecMII == 1`.
///
/// Every dependence circuit lies entirely inside one strongly connected
/// component of the (carried-edge-inclusive) graph, so the binary search and
/// its Bellman–Ford probes run per component over its internal edges only.
/// Typical loop bodies are chains with a few small recurrences, which turns
/// the whole-graph `O(log(Σlat) · V · E)` search into near-linear work.
pub fn rec_mii(ddg: &Ddg) -> u32 {
    MII_SCRATCH.with(|s| rec_mii_in(ddg, &mut s.borrow_mut()))
}

/// Reusable buffers of [`rec_mii`]: the SCC decomposition and the per-component
/// search are allocation-free across calls on the same thread.
#[derive(Default)]
struct MiiScratch {
    start: Vec<u32>,
    adj: Vec<u32>,
    fill: Vec<u32>,
    index: Vec<u32>,
    low: Vec<u32>,
    on_stack: Vec<bool>,
    comp: Vec<u32>,
    stack: Vec<u32>,
    frames: Vec<(u32, u32)>,
    internal: Vec<(u32, u32, u32, i64, i64)>,
    dist: Vec<i64>,
    in_comp: Vec<bool>,
    nodes: Vec<u32>,
}

thread_local! {
    static MII_SCRATCH: RefCell<MiiScratch> = RefCell::new(MiiScratch::default());
}

fn rec_mii_in(ddg: &Ddg, scratch: &mut MiiScratch) -> u32 {
    let n = ddg.num_ops();
    if n == 0 {
        return 1;
    }
    scc_ids_into(ddg, scratch);
    // An edge can participate in a circuit iff both endpoints share an SCC
    // (a self-edge trivially does).  Everything else cannot constrain RecMII.
    let comp = &scratch.comp;
    let internal = &mut scratch.internal;
    internal.clear();
    for e in ddg.edges() {
        let (s, d) = (e.src.index(), e.dst.index());
        if comp[s] == comp[d] {
            internal.push((comp[s], s as u32, d as u32, e.latency as i64, e.distance as i64));
        }
    }
    if internal.is_empty() {
        return 1;
    }
    internal.sort_unstable_by_key(|t| t.0);

    let dist = &mut scratch.dist;
    dist.clear();
    dist.resize(n, 0);
    let in_comp = &mut scratch.in_comp;
    in_comp.clear();
    in_comp.resize(n, false);
    let nodes = &mut scratch.nodes;
    let mut best = 1u32;
    let mut at = 0;
    while at < internal.len() {
        let comp_id = internal[at].0;
        let mut end = at;
        while end < internal.len() && internal[end].0 == comp_id {
            end += 1;
        }
        let edges = &internal[at..end];
        at = end;

        nodes.clear();
        for &(_, s, d, _, _) in edges {
            for v in [s, d] {
                if !in_comp[v as usize] {
                    in_comp[v as usize] = true;
                    nodes.push(v);
                }
            }
        }
        best = best.max(component_rec_mii(edges, nodes, dist));
        for &v in nodes.iter() {
            in_comp[v as usize] = false;
        }
    }
    best
}

/// Smallest II at which one SCC's circuits are all honoured — the same binary
/// search as the pre-SCC whole-graph version, restricted to `edges`.
fn component_rec_mii(edges: &[(u32, u32, u32, i64, i64)], nodes: &[u32], dist: &mut [i64]) -> u32 {
    // Upper bound: the component's latency sum is always feasible (every
    // circuit's delay is at most that sum and every circuit has distance >= 1).
    let mut lo = 1i64;
    let mut hi = edges.iter().map(|e| e.3).sum::<i64>().max(1);
    // Invariant: `hi` is always feasible, `lo - 1` is infeasible (or lo == 1).
    if positive_cycle_in(edges, nodes, hi as u32, dist) {
        // Cannot happen for a valid DDG (distance-0 subgraph acyclic), but be safe.
        return hi as u32;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if positive_cycle_in(edges, nodes, mid as u32, dist) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// Bellman–Ford positive-cycle probe over one component's edge list.  `dist`
/// is caller-provided scratch of whole-graph size; only `nodes` are touched.
fn positive_cycle_in(
    edges: &[(u32, u32, u32, i64, i64)],
    nodes: &[u32],
    ii: u32,
    dist: &mut [i64],
) -> bool {
    for &v in nodes {
        dist[v as usize] = 0;
    }
    for _ in 0..nodes.len() {
        let mut changed = false;
        for &(_, s, d, lat, dd) in edges {
            let cand = dist[s as usize] + lat - (ii as i64) * dd;
            if cand > dist[d as usize] {
                dist[d as usize] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    for &(_, s, d, lat, dd) in edges {
        if dist[s as usize] + lat - (ii as i64) * dd > dist[d as usize] {
            return true;
        }
    }
    false
}

/// Strongly connected component id per operation (Tarjan, iterative), written
/// to `scratch.comp`.  Ids carry no ordering guarantee; only equality is
/// meaningful.
fn scc_ids_into(ddg: &Ddg, scratch: &mut MiiScratch) {
    let n = ddg.num_ops();
    const UNVISITED: u32 = u32::MAX;

    // CSR successor adjacency.
    let start = &mut scratch.start;
    start.clear();
    start.resize(n + 1, 0);
    for e in ddg.edges() {
        start[e.src.index() + 1] += 1;
    }
    for i in 0..n {
        start[i + 1] += start[i];
    }
    let adj = &mut scratch.adj;
    adj.clear();
    adj.resize(ddg.num_edges(), 0);
    let fill = &mut scratch.fill;
    fill.clear();
    fill.extend_from_slice(start);
    for e in ddg.edges() {
        adj[fill[e.src.index()] as usize] = e.dst.index() as u32;
        fill[e.src.index()] += 1;
    }

    let index = &mut scratch.index;
    index.clear();
    index.resize(n, UNVISITED);
    let low = &mut scratch.low;
    low.clear();
    low.resize(n, 0);
    let on_stack = &mut scratch.on_stack;
    on_stack.clear();
    on_stack.resize(n, false);
    let comp = &mut scratch.comp;
    comp.clear();
    comp.resize(n, 0);
    let stack = &mut scratch.stack;
    stack.clear();
    // DFS frames: (node, next unexplored successor offset into `adj`).
    let frames = &mut scratch.frames;
    frames.clear();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        frames.push((root, start[root as usize]));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0 as usize;
            if frame.1 < start[v + 1] {
                let w = adj[frame.1 as usize] as usize;
                frame.1 += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, start[w]));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last_mut() {
                    let p = parent.0 as usize;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow") as usize;
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
}

/// Minimum initiation interval: `max(ResMII, RecMII)`.
pub fn mii(ddg: &Ddg, machine: &Machine) -> Result<u32, SchedError> {
    Ok(res_mii(ddg, machine)?.max(rec_mii(ddg)))
}

/// True if the dependence graph has a circuit whose total `latency − ii·distance`
/// weight is positive, i.e. the candidate `ii` violates some recurrence.
pub fn has_positive_cycle(ddg: &Ddg, ii: u32) -> bool {
    let n = ddg.num_ops();
    if n == 0 {
        return false;
    }
    // Longest-path Bellman–Ford from a virtual source connected to every node with
    // weight 0.  If any distance still relaxes after n iterations, a positive cycle
    // exists.
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in ddg.edges() {
            let cand = dist[e.src.index()] + e.weight_at(ii);
            if cand > dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    // One more pass: if anything still improves, there is a positive cycle.
    for e in ddg.edges() {
        if dist[e.src.index()] + e.weight_at(ii) > dist[e.dst.index()] {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, DepKind, LatencyModel, OpKind};
    use vliw_machine::LatencyModel as MachineLatency;

    fn machine(fus: usize) -> Machine {
        Machine::single_cluster(fus, 2, 32, MachineLatency::default())
    }

    #[test]
    fn res_mii_counts_per_class() {
        // 4 loads on a machine with 1 L/S unit -> ResMII 4.
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.ops(OpKind::Load, 4);
        let g = b.finish();
        let m = Machine::single_cluster(3, 1, 32, MachineLatency::default());
        assert_eq!(res_mii(&g, &m).unwrap(), 4);
        // On a machine with 4 L/S units -> ResMII 1.
        let m12 = machine(12);
        assert_eq!(res_mii(&g, &m12).unwrap(), 1);
    }

    #[test]
    fn res_mii_rejects_missing_class() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.op(OpKind::Copy);
        let g = b.finish();
        let m = Machine::single_cluster(6, 0, 32, MachineLatency::default());
        assert!(matches!(
            res_mii(&g, &m),
            Err(SchedError::NoFunctionalUnit { class: OpClass::Copy })
        ));
    }

    #[test]
    fn rec_mii_of_acyclic_graph_is_one() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let add = b.op(OpKind::Add);
        b.flow(ld, add);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 1);
    }

    #[test]
    fn rec_mii_of_self_accumulator_equals_latency_over_distance() {
        // add -> add with latency 1, distance 1: RecMII = 1.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let acc = b.op(OpKind::Add);
        b.flow_carried(acc, acc, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 1);

        // mul (latency 2) self-recurrence distance 1: RecMII = 2.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let acc = b.op(OpKind::Mul);
        b.flow_carried(acc, acc, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 2);
    }

    #[test]
    fn rec_mii_of_two_op_circuit() {
        // a --(lat 2, d 0)--> b --(lat 3, d 1)--> a : delay 5, distance 1 -> RecMII 5.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let x = b.op(OpKind::Add);
        let y = b.op(OpKind::Add);
        b.edge_with_latency(x, y, DepKind::Flow, 2, 0);
        b.edge_with_latency(y, x, DepKind::Flow, 3, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 5);
    }

    #[test]
    fn rec_mii_divides_by_distance() {
        // Circuit with delay 6 spread over distance 3 -> RecMII = 2.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let x = b.op(OpKind::Add);
        let y = b.op(OpKind::Add);
        b.edge_with_latency(x, y, DepKind::Flow, 3, 0);
        b.edge_with_latency(y, x, DepKind::Flow, 3, 3);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 2);
    }

    #[test]
    fn rec_mii_takes_worst_circuit() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let x = b.op(OpKind::Add);
        let y = b.op(OpKind::Add);
        let z = b.op(OpKind::Mul);
        // Circuit 1: x <-> y, delay 2, distance 2 -> needs II >= 1.
        b.edge_with_latency(x, y, DepKind::Flow, 1, 0);
        b.edge_with_latency(y, x, DepKind::Flow, 1, 2);
        // Circuit 2: z self loop delay 8 distance 2 -> needs II >= 4.
        b.edge_with_latency(z, z, DepKind::Flow, 8, 2);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 4);
    }

    #[test]
    fn mii_is_max_of_both_bounds() {
        let lat = LatencyModel::default();
        let dot = kernels::dot_product(lat, 100);
        let m1 = Machine::single_cluster(3, 1, 32, lat);
        let v = mii(&dot.ddg, &m1).unwrap();
        let r = res_mii(&dot.ddg, &m1).unwrap();
        let c = rec_mii(&dot.ddg);
        assert_eq!(v, r.max(c));
        assert!(v >= 1);
    }

    #[test]
    fn positive_cycle_detection_matches_rec_mii() {
        let lat = LatencyModel::default();
        let l = kernels::first_order_recurrence(lat, 100);
        let r = rec_mii(&l.ddg);
        assert!(r >= 2, "mul+add recurrence should force RecMII above 1, got {r}");
        assert!(!has_positive_cycle(&l.ddg, r));
        if r > 1 {
            assert!(has_positive_cycle(&l.ddg, r - 1));
        }
    }

    /// The pre-SCC implementation, kept as an executable oracle: whole-graph
    /// binary search over [1, Σ latency] with `has_positive_cycle` probes.
    fn rec_mii_whole_graph(ddg: &Ddg) -> u32 {
        let mut lo = 1i64;
        let mut hi = ddg.edges().map(|e| e.latency as i64).sum::<i64>().max(1);
        if has_positive_cycle(ddg, hi as u32) {
            return hi as u32;
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            if has_positive_cycle(ddg, mid as u32) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u32
    }

    #[test]
    fn scc_rec_mii_matches_the_whole_graph_search_on_all_kernels() {
        for lp in kernels::all_kernels(LatencyModel::default()) {
            assert_eq!(rec_mii(&lp.ddg), rec_mii_whole_graph(&lp.ddg), "{}", lp.name);
        }
    }

    #[test]
    fn scc_rec_mii_matches_the_whole_graph_search_on_multi_circuit_graphs() {
        // Two disjoint circuits of different severity plus an acyclic tail.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let a = b.op(OpKind::Mul);
        let c = b.op(OpKind::Add);
        let d = b.op(OpKind::Add);
        let e = b.op(OpKind::Load);
        b.edge_with_latency(a, c, DepKind::Flow, 2, 0);
        b.edge_with_latency(c, a, DepKind::Flow, 4, 1);
        b.edge_with_latency(d, d, DepKind::Flow, 3, 2);
        b.flow(c, e);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 6);
        assert_eq!(rec_mii(&g), rec_mii_whole_graph(&g));
    }

    #[test]
    fn rec_mii_of_empty_graph() {
        let g = Ddg::new();
        assert_eq!(rec_mii(&g), 1);
        assert!(!has_positive_cycle(&g, 1));
    }
}
