//! Minimum initiation interval (MII) computation.
//!
//! The MII is the larger of two lower bounds:
//!
//! * **ResMII** — the resource-constrained bound: for each functional-unit class,
//!   the number of operations of that class divided by the number of units of that
//!   class, rounded up.
//! * **RecMII** — the recurrence-constrained bound: the smallest II such that every
//!   dependence circuit `c` satisfies `delay(c) ≤ II · distance(c)`.
//!
//! RecMII is computed by a binary search on II, using a Bellman–Ford positive-cycle
//! test on edge weights `latency − II · distance` (a positive cycle at a candidate II
//! means some recurrence circuit cannot be honoured at that II).

use vliw_ddg::{Ddg, OpClass};
use vliw_machine::Machine;

use crate::SchedError;

/// Resource-constrained minimum initiation interval.
///
/// Returns an error if the graph uses a functional-unit class of which the machine
/// has no instance.
pub fn res_mii(ddg: &Ddg, machine: &Machine) -> Result<u32, SchedError> {
    let counts = ddg.class_counts();
    let fus = machine.class_counts();
    let mut bound = 1u32;
    for class in OpClass::ALL {
        let ops = counts[class.index()];
        if ops == 0 {
            continue;
        }
        let units = fus[class.index()];
        if units == 0 {
            return Err(SchedError::NoFunctionalUnit { class });
        }
        bound = bound.max(ops.div_ceil(units) as u32);
    }
    Ok(bound)
}

/// Recurrence-constrained minimum initiation interval.
///
/// Loops without any dependence circuit have `RecMII == 1`.
pub fn rec_mii(ddg: &Ddg) -> u32 {
    // Upper bound: the sum of all edge latencies is always a feasible II for the
    // recurrence constraints (every circuit's delay is at most that sum and every
    // circuit has distance >= 1).
    let hi: i64 = ddg.edges().map(|e| e.latency as i64).sum::<i64>().max(1);
    let mut lo = 1i64;
    let mut hi = hi;
    // Invariant: `hi` is always feasible, `lo - 1` is infeasible (or lo == 1).
    if has_positive_cycle(ddg, hi as u32) {
        // Cannot happen for a valid DDG (distance-0 subgraph acyclic), but be safe.
        return hi as u32;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if has_positive_cycle(ddg, mid as u32) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// Minimum initiation interval: `max(ResMII, RecMII)`.
pub fn mii(ddg: &Ddg, machine: &Machine) -> Result<u32, SchedError> {
    Ok(res_mii(ddg, machine)?.max(rec_mii(ddg)))
}

/// True if the dependence graph has a circuit whose total `latency − ii·distance`
/// weight is positive, i.e. the candidate `ii` violates some recurrence.
pub fn has_positive_cycle(ddg: &Ddg, ii: u32) -> bool {
    let n = ddg.num_ops();
    if n == 0 {
        return false;
    }
    // Longest-path Bellman–Ford from a virtual source connected to every node with
    // weight 0.  If any distance still relaxes after n iterations, a positive cycle
    // exists.
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in ddg.edges() {
            let cand = dist[e.src.index()] + e.weight_at(ii);
            if cand > dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    // One more pass: if anything still improves, there is a positive cycle.
    for e in ddg.edges() {
        if dist[e.src.index()] + e.weight_at(ii) > dist[e.dst.index()] {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, DepKind, LatencyModel, OpKind};
    use vliw_machine::LatencyModel as MachineLatency;

    fn machine(fus: usize) -> Machine {
        Machine::single_cluster(fus, 2, 32, MachineLatency::default())
    }

    #[test]
    fn res_mii_counts_per_class() {
        // 4 loads on a machine with 1 L/S unit -> ResMII 4.
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.ops(OpKind::Load, 4);
        let g = b.finish();
        let m = Machine::single_cluster(3, 1, 32, MachineLatency::default());
        assert_eq!(res_mii(&g, &m).unwrap(), 4);
        // On a machine with 4 L/S units -> ResMII 1.
        let m12 = machine(12);
        assert_eq!(res_mii(&g, &m12).unwrap(), 1);
    }

    #[test]
    fn res_mii_rejects_missing_class() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.op(OpKind::Copy);
        let g = b.finish();
        let m = Machine::single_cluster(6, 0, 32, MachineLatency::default());
        assert!(matches!(
            res_mii(&g, &m),
            Err(SchedError::NoFunctionalUnit { class: OpClass::Copy })
        ));
    }

    #[test]
    fn rec_mii_of_acyclic_graph_is_one() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let add = b.op(OpKind::Add);
        b.flow(ld, add);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 1);
    }

    #[test]
    fn rec_mii_of_self_accumulator_equals_latency_over_distance() {
        // add -> add with latency 1, distance 1: RecMII = 1.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let acc = b.op(OpKind::Add);
        b.flow_carried(acc, acc, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 1);

        // mul (latency 2) self-recurrence distance 1: RecMII = 2.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let acc = b.op(OpKind::Mul);
        b.flow_carried(acc, acc, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 2);
    }

    #[test]
    fn rec_mii_of_two_op_circuit() {
        // a --(lat 2, d 0)--> b --(lat 3, d 1)--> a : delay 5, distance 1 -> RecMII 5.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let x = b.op(OpKind::Add);
        let y = b.op(OpKind::Add);
        b.edge_with_latency(x, y, DepKind::Flow, 2, 0);
        b.edge_with_latency(y, x, DepKind::Flow, 3, 1);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 5);
    }

    #[test]
    fn rec_mii_divides_by_distance() {
        // Circuit with delay 6 spread over distance 3 -> RecMII = 2.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let x = b.op(OpKind::Add);
        let y = b.op(OpKind::Add);
        b.edge_with_latency(x, y, DepKind::Flow, 3, 0);
        b.edge_with_latency(y, x, DepKind::Flow, 3, 3);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 2);
    }

    #[test]
    fn rec_mii_takes_worst_circuit() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let x = b.op(OpKind::Add);
        let y = b.op(OpKind::Add);
        let z = b.op(OpKind::Mul);
        // Circuit 1: x <-> y, delay 2, distance 2 -> needs II >= 1.
        b.edge_with_latency(x, y, DepKind::Flow, 1, 0);
        b.edge_with_latency(y, x, DepKind::Flow, 1, 2);
        // Circuit 2: z self loop delay 8 distance 2 -> needs II >= 4.
        b.edge_with_latency(z, z, DepKind::Flow, 8, 2);
        let g = b.finish();
        assert_eq!(rec_mii(&g), 4);
    }

    #[test]
    fn mii_is_max_of_both_bounds() {
        let lat = LatencyModel::default();
        let dot = kernels::dot_product(lat, 100);
        let m1 = Machine::single_cluster(3, 1, 32, lat);
        let v = mii(&dot.ddg, &m1).unwrap();
        let r = res_mii(&dot.ddg, &m1).unwrap();
        let c = rec_mii(&dot.ddg);
        assert_eq!(v, r.max(c));
        assert!(v >= 1);
    }

    #[test]
    fn positive_cycle_detection_matches_rec_mii() {
        let lat = LatencyModel::default();
        let l = kernels::first_order_recurrence(lat, 100);
        let r = rec_mii(&l.ddg);
        assert!(r >= 2, "mul+add recurrence should force RecMII above 1, got {r}");
        assert!(!has_positive_cycle(&l.ddg, r));
        if r > 1 {
            assert!(has_positive_cycle(&l.ddg, r - 1));
        }
    }

    #[test]
    fn rec_mii_of_empty_graph() {
        let g = Ddg::new();
        assert_eq!(rec_mii(&g), 1);
        assert!(!has_positive_cycle(&g, 1));
    }
}
