//! Iterative Modulo Scheduling (IMS).
//!
//! This is a faithful implementation of B. R. Rau's algorithm (*Iterative Modulo
//! Scheduling*, IJPP 1996), the scheduler the paper builds on:
//!
//! 1. compute the lower bound `MII = max(ResMII, RecMII)`;
//! 2. try to find a schedule at `II = MII`; on failure increase the II and retry;
//! 3. within one attempt, operations are scheduled in height-priority order; an
//!    operation that cannot be placed in any free slot of its scheduling window is
//!    placed *by force*, evicting the operation(s) that conflict with it, which are
//!    then re-scheduled later (bounded by a budget of placements).

use vliw_ddg::{Ddg, OpId};
use vliw_machine::{FuId, Machine};

use crate::mii::{rec_mii, res_mii};
use crate::mrt::Mrt;
use crate::priority::height_r;
use crate::schedule::Schedule;
use crate::SchedError;

/// Tuning knobs of the iterative modulo scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImsOptions {
    /// Scheduling budget per attempt, expressed as a multiple of the number of
    /// operations (Rau uses 3–6; larger values backtrack more before giving up on an
    /// II).
    pub budget_ratio: u32,
    /// Schedule at an II no smaller than this (used to compare machines at a fixed
    /// II, e.g. by the partitioning experiments).
    pub min_ii: u32,
    /// Give up when the II exceeds this value (defaults to a generous multiple of
    /// the MII when `None`).
    pub max_ii: Option<u32>,
}

impl Default for ImsOptions {
    fn default() -> Self {
        ImsOptions { budget_ratio: 6, min_ii: 1, max_ii: None }
    }
}

impl ImsOptions {
    /// Options that force the schedule to start searching at `min_ii`.
    pub fn with_min_ii(mut self, min_ii: u32) -> Self {
        self.min_ii = min_ii;
        self
    }
}

/// Outcome of a successful scheduling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImsResult {
    /// The schedule found.
    pub schedule: Schedule,
    /// Resource-constrained lower bound.
    pub res_mii: u32,
    /// Recurrence-constrained lower bound.
    pub rec_mii: u32,
    /// `max(ResMII, RecMII)` — the theoretical lower bound on the II.
    pub mii: u32,
    /// Number of II values tried before a schedule was found (1 means the MII was
    /// achieved on the first attempt).
    pub attempts: u32,
}

impl ImsResult {
    /// True if the scheduler achieved the theoretical minimum II.
    pub fn achieved_mii(&self) -> bool {
        self.schedule.ii == self.mii.max(1)
    }
}

/// Runs iterative modulo scheduling of `ddg` on `machine`.
pub fn modulo_schedule(
    ddg: &Ddg,
    machine: &Machine,
    opts: ImsOptions,
) -> Result<ImsResult, SchedError> {
    if ddg.num_ops() == 0 {
        return Err(SchedError::EmptyGraph);
    }
    ddg.validate().map_err(SchedError::InvalidGraph)?;
    let res = res_mii(ddg, machine)?;
    let rec = rec_mii(ddg);
    let lower = res.max(rec);
    let start_ii = lower.max(opts.min_ii).max(1);
    let max_ii = opts.max_ii.unwrap_or(start_ii.saturating_mul(2).saturating_add(64));
    let budget = (ddg.num_ops() as u32).saturating_mul(opts.budget_ratio).max(16);

    let mut attempts = 0;
    let mut ii = start_ii;
    while ii <= max_ii {
        attempts += 1;
        if let Some((start, fu)) = try_schedule_at(ddg, machine, ii, budget) {
            let schedule = Schedule::new(ii, start, fu);
            debug_assert!(schedule.validate(ddg, machine).is_ok());
            return Ok(ImsResult { schedule, res_mii: res, rec_mii: rec, mii: lower, attempts });
        }
        ii += 1;
    }
    Err(SchedError::IiLimitReached { limit: max_ii })
}

/// One scheduling attempt at a fixed II.  Returns the per-op start times and FU
/// assignments, or `None` if the placement budget was exhausted.
fn try_schedule_at(
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    budget: u32,
) -> Option<(Vec<u32>, Vec<FuId>)> {
    let n = ddg.num_ops();
    let heights = height_r(ddg, ii);
    let mut start: Vec<Option<u32>> = vec![None; n];
    let mut fu_of: Vec<FuId> = vec![FuId(0); n];
    let mut prev_start: Vec<u32> = vec![0; n];
    let mut never_scheduled: Vec<bool> = vec![true; n];
    let mut mrt = Mrt::new(machine, ii);
    let mut budget = budget as i64;

    // Highest-priority unscheduled operation each round (deterministic tie-break
    // on id).
    while let Some(i) =
        (0..n).filter(|&i| start[i].is_none()).max_by_key(|&i| (heights[i], std::cmp::Reverse(i)))
    {
        let op = OpId(i as u32);
        budget -= 1;
        if budget < 0 {
            return None;
        }

        let class = ddg.op(op).class();

        // Earliest start consistent with the currently scheduled predecessors.
        let mut estart: i64 = 0;
        for e in ddg.pred_edges(op) {
            if e.src == op {
                continue; // self recurrences are guaranteed by II >= RecMII
            }
            if let Some(s) = start[e.src.index()] {
                estart = estart.max(s as i64 + e.weight_at(ii));
            }
        }
        let estart = estart.max(0) as u32;

        // Look for a free unit in the scheduling window [estart, estart + II - 1].
        let mut placement: Option<(u32, FuId)> = None;
        for t in estart..estart + ii {
            if let Some(fu) = mrt.free_fu(machine, t, class, None) {
                placement = Some((t, fu));
                break;
            }
        }

        let (time, fu) = match placement {
            Some(p) => p,
            None => {
                // Forced placement (Rau): at estart if this is the first time or the
                // window moved forward, otherwise one cycle after the previous
                // placement so progress is made.
                let time = if never_scheduled[op.index()] || estart > prev_start[op.index()] {
                    estart
                } else {
                    prev_start[op.index()] + 1
                };
                // Evict from the unit whose occupant has the lowest priority.
                let victim_fu = machine
                    .fus_of_class(class)
                    .map(|f| f.id)
                    .min_by_key(|&f| {
                        mrt.occupant(time, f).map(|occ| heights[occ.index()]).unwrap_or(i64::MIN)
                    })
                    .expect("ResMII guarantees at least one unit of the class");
                (time, victim_fu)
            }
        };

        // Evict the current occupant of the chosen slot, if any.
        if let Some(victim) = mrt.release(time, fu) {
            start[victim.index()] = None;
        }
        mrt.reserve(time, fu, op);
        start[op.index()] = Some(time);
        fu_of[op.index()] = fu;
        prev_start[op.index()] = time;
        never_scheduled[op.index()] = false;

        // Unschedule already-placed operations whose dependences with `op` are now
        // violated; they will be re-placed later (this is the "iterative" part).
        for e in ddg.succ_edges(op) {
            if e.dst == op {
                continue;
            }
            if let Some(s_dst) = start[e.dst.index()] {
                if (s_dst as i64) < time as i64 + e.weight_at(ii) {
                    mrt.release(s_dst, fu_of[e.dst.index()]);
                    start[e.dst.index()] = None;
                }
            }
        }
        for e in ddg.pred_edges(op) {
            if e.src == op {
                continue;
            }
            if let Some(s_src) = start[e.src.index()] {
                if (time as i64) < s_src as i64 + e.weight_at(ii) {
                    mrt.release(s_src, fu_of[e.src.index()]);
                    start[e.src.index()] = None;
                }
            }
        }
    }

    let start: Vec<u32> = start.into_iter().map(|s| s.expect("all ops scheduled")).collect();
    Some((start, fu_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, LatencyModel, OpKind};

    fn machine(fus: usize) -> Machine {
        Machine::single_cluster(fus, 2, 32, LatencyModel::default())
    }

    #[test]
    fn schedules_all_hand_written_kernels_at_mii_on_wide_machine() {
        let m = machine(12);
        for l in kernels::all_kernels(LatencyModel::default()) {
            let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).expect("schedulable");
            assert!(r.schedule.validate(&l.ddg, &m).is_ok(), "{}", l.name);
            assert!(r.schedule.ii >= r.mii);
        }
    }

    #[test]
    fn dot_product_achieves_mii_on_narrow_machine() {
        let l = kernels::dot_product(LatencyModel::default(), 100);
        let m = machine(3);
        let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        // 2 loads + 2 address adds on shared units: ResMII = 2 with 1 L/S unit... the
        // exact value depends on the balanced split; just check optimality and
        // validity.
        assert!(r.schedule.validate(&l.ddg, &m).is_ok());
        assert_eq!(r.schedule.ii, r.mii, "IMS should reach the MII on this tiny kernel");
    }

    #[test]
    fn narrow_machine_forces_larger_ii_than_wide_machine() {
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let narrow = modulo_schedule(&l.ddg, &machine(3), ImsOptions::default()).unwrap();
        let wide = modulo_schedule(&l.ddg, &machine(12), ImsOptions::default()).unwrap();
        assert!(narrow.schedule.ii >= wide.schedule.ii);
        assert!(wide.schedule.ii <= 3);
    }

    #[test]
    fn recurrence_bound_is_respected() {
        let l = kernels::first_order_recurrence(LatencyModel::default(), 100);
        let m = machine(12);
        let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        assert!(r.rec_mii >= 3, "mul(2)+add(1) recurrence");
        assert!(r.schedule.ii >= r.rec_mii);
    }

    #[test]
    fn min_ii_option_is_honoured() {
        let l = kernels::dot_product(LatencyModel::default(), 100);
        let m = machine(12);
        let base = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        let forced =
            modulo_schedule(&l.ddg, &m, ImsOptions::default().with_min_ii(base.schedule.ii + 3))
                .unwrap();
        assert_eq!(forced.schedule.ii, base.schedule.ii + 3);
        assert!(forced.schedule.validate(&l.ddg, &m).is_ok());
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = Ddg::new();
        let m = machine(4);
        assert!(matches!(
            modulo_schedule(&g, &m, ImsOptions::default()),
            Err(SchedError::EmptyGraph)
        ));
    }

    #[test]
    fn missing_fu_class_is_reported() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.op(OpKind::Copy);
        let g = b.finish();
        let m = Machine::single_cluster(3, 0, 32, LatencyModel::default());
        assert!(matches!(
            modulo_schedule(&g, &m, ImsOptions::default()),
            Err(SchedError::NoFunctionalUnit { .. })
        ));
    }

    #[test]
    fn resource_saturated_loop_gets_resource_bound_ii() {
        // Eight independent loads on a machine with exactly one L/S unit: II = 8.
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.ops(OpKind::Load, 8);
        let g = b.finish();
        let m = Machine::single_cluster(3, 1, 32, LatencyModel::default());
        let r = modulo_schedule(&g, &m, ImsOptions::default()).unwrap();
        assert_eq!(r.res_mii, 8);
        assert_eq!(r.schedule.ii, 8);
        assert!(r.schedule.validate(&g, &m).is_ok());
    }

    #[test]
    fn achieved_mii_helper() {
        let l = kernels::daxpy(LatencyModel::default(), 10);
        let m = machine(12);
        let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        assert_eq!(r.achieved_mii(), r.schedule.ii == r.mii);
    }

    #[test]
    fn stage_count_is_positive_and_consistent() {
        let l = kernels::daxpy(LatencyModel::long_latency(), 10);
        let m = machine(6);
        let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        let sc = r.schedule.stage_count();
        assert!(sc >= 1);
        let max_start = r.schedule.start.iter().max().copied().unwrap();
        assert_eq!(sc, max_start / r.schedule.ii + 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let l = kernels::wide_parallel(LatencyModel::default(), 10);
        let m = machine(6);
        let a = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        let b = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
