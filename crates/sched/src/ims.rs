//! Iterative Modulo Scheduling (IMS).
//!
//! This is a faithful implementation of B. R. Rau's algorithm (*Iterative Modulo
//! Scheduling*, IJPP 1996), the scheduler the paper builds on:
//!
//! 1. compute the lower bound `MII = max(ResMII, RecMII)`;
//! 2. try to find a schedule at `II = MII`; on failure increase the II and retry;
//! 3. within one attempt, operations are scheduled in height-priority order; an
//!    operation that cannot be placed in any free slot of its scheduling window is
//!    placed *by force*, evicting the operation(s) that conflict with it, which are
//!    then re-scheduled later (bounded by a budget of placements).

use std::cell::RefCell;

use vliw_ddg::Ddg;
use vliw_machine::{FuId, Machine};

use crate::core::{run_placement_with, AnyClusterPolicy, SchedScratch};
use crate::mii::{rec_mii, res_mii};
use crate::schedule::Schedule;
use crate::SchedError;

/// Tuning knobs of the iterative modulo scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImsOptions {
    /// Scheduling budget per attempt, expressed as a multiple of the number of
    /// operations (Rau uses 3–6; larger values backtrack more before giving up on an
    /// II).
    pub budget_ratio: u32,
    /// Schedule at an II no smaller than this (used to compare machines at a fixed
    /// II, e.g. by the partitioning experiments).
    pub min_ii: u32,
    /// Give up when the II exceeds this value (defaults to a generous multiple of
    /// the MII when `None`).
    pub max_ii: Option<u32>,
}

impl Default for ImsOptions {
    fn default() -> Self {
        ImsOptions { budget_ratio: 6, min_ii: 1, max_ii: None }
    }
}

impl ImsOptions {
    /// Options that force the schedule to start searching at `min_ii`.
    pub fn with_min_ii(mut self, min_ii: u32) -> Self {
        self.min_ii = min_ii;
        self
    }
}

/// Outcome of a successful scheduling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImsResult {
    /// The schedule found.
    pub schedule: Schedule,
    /// Resource-constrained lower bound.
    pub res_mii: u32,
    /// Recurrence-constrained lower bound.
    pub rec_mii: u32,
    /// `max(ResMII, RecMII)` — the theoretical lower bound on the II.
    pub mii: u32,
    /// Number of II values tried before a schedule was found (1 means the MII was
    /// achieved on the first attempt).
    pub attempts: u32,
}

impl ImsResult {
    /// True if the scheduler achieved the theoretical minimum II.
    pub fn achieved_mii(&self) -> bool {
        self.schedule.ii == self.mii.max(1)
    }
}

thread_local! {
    /// Per-thread scratch of the plain entry point.  Session executor workers
    /// are OS threads, so each worker amortises its own buffers across every
    /// loop it compiles; explicit `_with` callers never touch this.
    static IMS_SCRATCH: RefCell<SchedScratch> = RefCell::new(SchedScratch::default());
}

/// Runs iterative modulo scheduling of `ddg` on `machine`.
pub fn modulo_schedule(
    ddg: &Ddg,
    machine: &Machine,
    opts: ImsOptions,
) -> Result<ImsResult, SchedError> {
    IMS_SCRATCH.with(|s| modulo_schedule_with(ddg, machine, opts, &mut s.borrow_mut()))
}

/// [`modulo_schedule`] backed by a caller-owned [`SchedScratch`], so every II
/// attempt after the first reuses the same placement buffers.
pub fn modulo_schedule_with(
    ddg: &Ddg,
    machine: &Machine,
    opts: ImsOptions,
    scratch: &mut SchedScratch,
) -> Result<ImsResult, SchedError> {
    let _span = vliw_obs::span!("sched/ims", ddg.num_ops());
    if ddg.num_ops() == 0 {
        return Err(SchedError::EmptyGraph);
    }
    ddg.validate_with(scratch.validate_scratch()).map_err(SchedError::InvalidGraph)?;
    let res = res_mii(ddg, machine)?;
    let rec = rec_mii(ddg);
    let lower = res.max(rec);
    let start_ii = lower.max(opts.min_ii).max(1);
    let max_ii = opts.max_ii.unwrap_or(start_ii.saturating_mul(2).saturating_add(64));
    let budget = (ddg.num_ops() as u32).saturating_mul(opts.budget_ratio).max(16);

    let mut attempts = 0;
    let mut ii = start_ii;
    while ii <= max_ii {
        attempts += 1;
        if let Some((start, fu)) = try_schedule_at(ddg, machine, ii, budget, scratch) {
            let schedule = Schedule::new(ii, start, fu);
            debug_assert!(schedule.validate(ddg, machine).is_ok());
            return Ok(ImsResult { schedule, res_mii: res, rec_mii: rec, mii: lower, attempts });
        }
        ii += 1;
    }
    Err(SchedError::IiLimitReached { limit: max_ii })
}

/// One scheduling attempt at a fixed II.  Returns the per-op start times and FU
/// assignments, or `None` if the placement budget was exhausted.
///
/// The placement loop itself (ready queue, window search, forced placement,
/// eviction, dependence-violation unscheduling) lives in [`crate::core`]; plain
/// IMS is the engine under the trivial any-cluster policy.
fn try_schedule_at(
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    budget: u32,
    scratch: &mut SchedScratch,
) -> Option<(Vec<u32>, Vec<FuId>)> {
    run_placement_with(ddg, machine, ii, budget, &AnyClusterPolicy, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, LatencyModel, OpKind};

    fn machine(fus: usize) -> Machine {
        Machine::single_cluster(fus, 2, 32, LatencyModel::default())
    }

    #[test]
    fn schedules_all_hand_written_kernels_at_mii_on_wide_machine() {
        let m = machine(12);
        for l in kernels::all_kernels(LatencyModel::default()) {
            let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).expect("schedulable");
            assert!(r.schedule.validate(&l.ddg, &m).is_ok(), "{}", l.name);
            assert!(r.schedule.ii >= r.mii);
        }
    }

    #[test]
    fn dot_product_achieves_mii_on_narrow_machine() {
        let l = kernels::dot_product(LatencyModel::default(), 100);
        let m = machine(3);
        let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        // 2 loads + 2 address adds on shared units: ResMII = 2 with 1 L/S unit... the
        // exact value depends on the balanced split; just check optimality and
        // validity.
        assert!(r.schedule.validate(&l.ddg, &m).is_ok());
        assert_eq!(r.schedule.ii, r.mii, "IMS should reach the MII on this tiny kernel");
    }

    #[test]
    fn narrow_machine_forces_larger_ii_than_wide_machine() {
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let narrow = modulo_schedule(&l.ddg, &machine(3), ImsOptions::default()).unwrap();
        let wide = modulo_schedule(&l.ddg, &machine(12), ImsOptions::default()).unwrap();
        assert!(narrow.schedule.ii >= wide.schedule.ii);
        assert!(wide.schedule.ii <= 3);
    }

    #[test]
    fn recurrence_bound_is_respected() {
        let l = kernels::first_order_recurrence(LatencyModel::default(), 100);
        let m = machine(12);
        let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        assert!(r.rec_mii >= 3, "mul(2)+add(1) recurrence");
        assert!(r.schedule.ii >= r.rec_mii);
    }

    #[test]
    fn min_ii_option_is_honoured() {
        let l = kernels::dot_product(LatencyModel::default(), 100);
        let m = machine(12);
        let base = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        let forced =
            modulo_schedule(&l.ddg, &m, ImsOptions::default().with_min_ii(base.schedule.ii + 3))
                .unwrap();
        assert_eq!(forced.schedule.ii, base.schedule.ii + 3);
        assert!(forced.schedule.validate(&l.ddg, &m).is_ok());
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = Ddg::new();
        let m = machine(4);
        assert!(matches!(
            modulo_schedule(&g, &m, ImsOptions::default()),
            Err(SchedError::EmptyGraph)
        ));
    }

    #[test]
    fn missing_fu_class_is_reported() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.op(OpKind::Copy);
        let g = b.finish();
        let m = Machine::single_cluster(3, 0, 32, LatencyModel::default());
        assert!(matches!(
            modulo_schedule(&g, &m, ImsOptions::default()),
            Err(SchedError::NoFunctionalUnit { .. })
        ));
    }

    #[test]
    fn resource_saturated_loop_gets_resource_bound_ii() {
        // Eight independent loads on a machine with exactly one L/S unit: II = 8.
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.ops(OpKind::Load, 8);
        let g = b.finish();
        let m = Machine::single_cluster(3, 1, 32, LatencyModel::default());
        let r = modulo_schedule(&g, &m, ImsOptions::default()).unwrap();
        assert_eq!(r.res_mii, 8);
        assert_eq!(r.schedule.ii, 8);
        assert!(r.schedule.validate(&g, &m).is_ok());
    }

    #[test]
    fn achieved_mii_helper() {
        let l = kernels::daxpy(LatencyModel::default(), 10);
        let m = machine(12);
        let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        assert_eq!(r.achieved_mii(), r.schedule.ii == r.mii);
    }

    #[test]
    fn stage_count_is_positive_and_consistent() {
        let l = kernels::daxpy(LatencyModel::long_latency(), 10);
        let m = machine(6);
        let r = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        let sc = r.schedule.stage_count();
        assert!(sc >= 1);
        let max_start = r.schedule.start.iter().max().copied().unwrap();
        assert_eq!(sc, max_start / r.schedule.ii + 1);
    }

    #[test]
    fn long_latency_chain_near_u32_max_schedules_without_overflow() {
        // The issue windows of the last ops of this chain sit near u32::MAX, so
        // the historical `estart..estart + ii` u32 scan overflowed.  The engine
        // computes the window in u64; the schedule must come out intact.
        let lat = LatencyModel { load: u32::MAX / 2, mul: u32::MAX / 2, ..Default::default() };
        let mut b = DdgBuilder::new(lat);
        let ld = b.op(OpKind::Load);
        let mul = b.op(OpKind::Mul);
        let tail = b.op(OpKind::Add);
        b.flow(ld, mul);
        b.flow(mul, tail);
        let g = b.finish();
        let m = machine(6);
        let r = modulo_schedule(&g, &m, ImsOptions::default()).unwrap();
        assert!(r.schedule.validate(&g, &m).is_ok());
        assert_eq!(r.schedule.start_of(tail) as u64, u32::MAX as u64 - 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let l = kernels::wide_parallel(LatencyModel::default(), 10);
        let m = machine(6);
        let a = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        let b = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
