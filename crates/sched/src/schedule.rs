//! Modulo-schedule representation and validation.

use std::fmt;

use vliw_ddg::{Ddg, OpId};
use vliw_machine::{ClusterId, FuId, Machine};

/// A complete modulo schedule of one loop body on one machine.
///
/// `start[i]` is the absolute issue cycle of operation `i` in the *flat* schedule of
/// a single iteration (it may exceed the II); the steady-state kernel issues
/// operation `i` at slot `start[i] mod II` of every II-cycle window, `start[i] / II`
/// stages after the iteration entered the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Initiation interval in cycles.
    pub ii: u32,
    /// Per-operation issue cycle (indexed by [`OpId::index`]).
    pub start: Vec<u32>,
    /// Per-operation functional-unit assignment.
    pub fu: Vec<FuId>,
}

impl Schedule {
    /// Creates a schedule from its components.
    pub fn new(ii: u32, start: Vec<u32>, fu: Vec<FuId>) -> Self {
        assert_eq!(start.len(), fu.len());
        Schedule { ii, start, fu }
    }

    /// Issue cycle of `op`.
    #[inline]
    pub fn start_of(&self, op: OpId) -> u32 {
        self.start[op.index()]
    }

    /// Functional unit executing `op`.
    #[inline]
    pub fn fu_of(&self, op: OpId) -> FuId {
        self.fu[op.index()]
    }

    /// Modulo slot (`cycle mod II`) of `op` in the kernel.
    #[inline]
    pub fn slot_of(&self, op: OpId) -> u32 {
        self.start[op.index()] % self.ii
    }

    /// Pipeline stage (`cycle / II`) of `op`.
    #[inline]
    pub fn stage_of(&self, op: OpId) -> u32 {
        self.start[op.index()] / self.ii
    }

    /// Number of operations in the schedule.
    pub fn num_ops(&self) -> usize {
        self.start.len()
    }

    /// Stage count: the number of kernel stages (and hence the number of iterations
    /// simultaneously in flight at steady state).
    ///
    /// Defined as `⌊max start / II⌋ + 1`.  A higher stage count means a longer
    /// prologue and epilogue (Section 2 of the paper).
    pub fn stage_count(&self) -> u32 {
        match self.start.iter().max() {
            Some(&max) => max / self.ii + 1,
            None => 0,
        }
    }

    /// The cluster executing `op` under `machine`.
    pub fn cluster_of(&self, machine: &Machine, op: OpId) -> ClusterId {
        machine.fu(self.fu_of(op)).cluster
    }

    /// Total number of cycles needed to run `trip_count` iterations of the loop:
    /// `(SC − 1 + N) · II`, i.e. prologue + kernel + epilogue.
    pub fn total_cycles(&self, trip_count: u64) -> u64 {
        if self.start.is_empty() || trip_count == 0 {
            return 0;
        }
        (self.stage_count() as u64 - 1 + trip_count) * self.ii as u64
    }

    /// Checks that the schedule respects every dependence of `ddg` and never
    /// oversubscribes a functional unit of `machine`.
    pub fn validate(&self, ddg: &Ddg, machine: &Machine) -> Result<(), ScheduleViolation> {
        if self.start.len() != ddg.num_ops() {
            return Err(ScheduleViolation::WrongLength {
                expected: ddg.num_ops(),
                actual: self.start.len(),
            });
        }
        // Dependence constraints: start(dst) + II*distance >= start(src) + latency.
        for e in ddg.edges() {
            let lhs = self.start[e.dst.index()] as i64 + self.ii as i64 * e.distance as i64;
            let rhs = self.start[e.src.index()] as i64 + e.latency as i64;
            if lhs < rhs {
                return Err(ScheduleViolation::DependenceViolated { src: e.src, dst: e.dst });
            }
        }
        // Resource constraints: class match and no two ops share (fu, slot).
        let mut used: std::collections::HashMap<(u32, FuId), OpId> =
            std::collections::HashMap::new();
        for op in ddg.ops() {
            let fu = self.fu[op.id.index()];
            if fu.index() >= machine.num_fus() {
                return Err(ScheduleViolation::UnknownFu { op: op.id, fu });
            }
            if machine.fu(fu).class != op.class() {
                return Err(ScheduleViolation::WrongFuClass { op: op.id, fu });
            }
            let slot = self.start[op.id.index()] % self.ii;
            if let Some(&other) = used.get(&(slot, fu)) {
                return Err(ScheduleViolation::ResourceConflict { a: other, b: op.id, fu, slot });
            }
            used.insert((slot, fu), op.id);
        }
        Ok(())
    }
}

/// A violation detected by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// The schedule does not cover every operation of the graph.
    WrongLength {
        /// Number of operations in the graph.
        expected: usize,
        /// Number of operations in the schedule.
        actual: usize,
    },
    /// A dependence edge is not honoured.
    DependenceViolated {
        /// Producer.
        src: OpId,
        /// Consumer.
        dst: OpId,
    },
    /// Two operations occupy the same functional unit in the same modulo slot.
    ResourceConflict {
        /// First operation.
        a: OpId,
        /// Second operation.
        b: OpId,
        /// Shared functional unit.
        fu: FuId,
        /// Shared modulo slot.
        slot: u32,
    },
    /// An operation is assigned to a functional unit of the wrong class.
    WrongFuClass {
        /// Operation.
        op: OpId,
        /// Assigned unit.
        fu: FuId,
    },
    /// An operation is assigned to a functional unit that does not exist.
    UnknownFu {
        /// Operation.
        op: OpId,
        /// Assigned unit.
        fu: FuId,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::WrongLength { expected, actual } => {
                write!(f, "schedule covers {actual} operations, graph has {expected}")
            }
            ScheduleViolation::DependenceViolated { src, dst } => {
                write!(f, "dependence {src} -> {dst} violated")
            }
            ScheduleViolation::ResourceConflict { a, b, fu, slot } => {
                write!(f, "operations {a} and {b} both use {fu} at modulo slot {slot}")
            }
            ScheduleViolation::WrongFuClass { op, fu } => {
                write!(f, "operation {op} assigned to {fu} of the wrong class")
            }
            ScheduleViolation::UnknownFu { op, fu } => {
                write!(f, "operation {op} assigned to nonexistent {fu}")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{DdgBuilder, LatencyModel, OpKind};
    use vliw_machine::Machine;

    fn simple_graph() -> Ddg {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let add = b.op(OpKind::Add);
        b.flow(ld, add);
        b.finish()
    }

    fn machine() -> Machine {
        Machine::single_cluster(3, 1, 32, LatencyModel::default())
    }

    #[test]
    fn valid_schedule_passes() {
        let g = simple_graph();
        let m = machine();
        let ls = m.fus_of_class(vliw_ddg::OpClass::Memory).next().unwrap().id;
        let add = m.fus_of_class(vliw_ddg::OpClass::Adder).next().unwrap().id;
        let s = Schedule::new(2, vec![0, 2], vec![ls, add]);
        assert!(s.validate(&g, &m).is_ok());
        assert_eq!(s.stage_count(), 2);
        assert_eq!(s.slot_of(OpId(1)), 0);
        assert_eq!(s.stage_of(OpId(1)), 1);
    }

    #[test]
    fn dependence_violation_detected() {
        let g = simple_graph();
        let m = machine();
        let ls = m.fus_of_class(vliw_ddg::OpClass::Memory).next().unwrap().id;
        let add = m.fus_of_class(vliw_ddg::OpClass::Adder).next().unwrap().id;
        // Load has latency 2, so the add cannot start at cycle 1.
        let s = Schedule::new(2, vec![0, 1], vec![ls, add]);
        assert_eq!(
            s.validate(&g, &m),
            Err(ScheduleViolation::DependenceViolated { src: OpId(0), dst: OpId(1) })
        );
    }

    #[test]
    fn resource_conflict_detected() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.op(OpKind::Load);
        b.op(OpKind::Load);
        let g = b.finish();
        let m = Machine::single_cluster(3, 1, 32, LatencyModel::default());
        let ls = m.fus_of_class(vliw_ddg::OpClass::Memory).next().unwrap().id;
        let s = Schedule::new(2, vec![0, 2], vec![ls, ls]);
        assert!(matches!(s.validate(&g, &m), Err(ScheduleViolation::ResourceConflict { .. })));
        // At different modulo slots the same unit is fine.
        let s = Schedule::new(2, vec![0, 1], vec![ls, ls]);
        assert!(s.validate(&g, &m).is_ok());
    }

    #[test]
    fn wrong_class_detected() {
        let g = simple_graph();
        let m = machine();
        let add = m.fus_of_class(vliw_ddg::OpClass::Adder).next().unwrap().id;
        let s = Schedule::new(2, vec![0, 2], vec![add, add]);
        assert!(matches!(s.validate(&g, &m), Err(ScheduleViolation::WrongFuClass { .. })));
    }

    #[test]
    fn wrong_length_detected() {
        let g = simple_graph();
        let m = machine();
        let s = Schedule::new(2, vec![0], vec![FuId(0)]);
        assert!(matches!(s.validate(&g, &m), Err(ScheduleViolation::WrongLength { .. })));
    }

    #[test]
    fn unknown_fu_detected() {
        let g = simple_graph();
        let m = machine();
        let s = Schedule::new(2, vec![0, 2], vec![FuId(95), FuId(96)]);
        assert!(matches!(s.validate(&g, &m), Err(ScheduleViolation::UnknownFu { .. })));
    }

    #[test]
    fn loop_carried_dependences_relax_with_ii() {
        // acc -> acc latency 1 distance 1: any start works as long as II >= 1.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let acc = b.op(OpKind::Add);
        b.flow_carried(acc, acc, 1);
        let g = b.finish();
        let m = machine();
        let addfu = m.fus_of_class(vliw_ddg::OpClass::Adder).next().unwrap().id;
        let s = Schedule::new(1, vec![0], vec![addfu]);
        assert!(s.validate(&g, &m).is_ok());
    }

    #[test]
    fn total_cycles_accounts_for_prologue_and_epilogue() {
        let _g = simple_graph();
        let m = machine();
        let ls = m.fus_of_class(vliw_ddg::OpClass::Memory).next().unwrap().id;
        let add = m.fus_of_class(vliw_ddg::OpClass::Adder).next().unwrap().id;
        let s = Schedule::new(2, vec![0, 2], vec![ls, add]);
        // SC = 2, so N iterations take (2 - 1 + N) * 2 cycles.
        assert_eq!(s.total_cycles(1), 4);
        assert_eq!(s.total_cycles(10), 22);
        assert_eq!(s.total_cycles(0), 0);
    }

    #[test]
    fn violation_messages_are_informative() {
        let v = ScheduleViolation::DependenceViolated { src: OpId(0), dst: OpId(1) };
        assert!(v.to_string().contains("op0"));
        let v =
            ScheduleViolation::ResourceConflict { a: OpId(0), b: OpId(1), fu: FuId(2), slot: 3 };
        assert!(v.to_string().contains("slot 3"));
    }
}
