//! The shared placement engine of the modulo schedulers.
//!
//! Rau's plain IMS (`crate::ims`) and the clustered partitioner
//! (`vliw-partition`) run the same inner loop: pick the highest-priority
//! unscheduled operation, compute its earliest start from the scheduled
//! predecessors, look for a free slot in the `[estart, estart + II)` window,
//! place it by force (evicting a victim) when the window is full, and
//! unschedule any operation whose dependences the new placement violates.
//! This module implements that loop once; the two schedulers differ only in the
//! [`ClusterPolicy`] that decides *which clusters* may host each operation.
//!
//! Two data structures keep the loop fast:
//!
//! * a **ready queue** — a binary heap keyed on `(height, Reverse(id))`, so the
//!   next operation to place is popped in `O(log n)` instead of re-scanning all
//!   operations (`O(n)`) per placement.  Unscheduled operations are simply
//!   pushed back; because an operation is only pushed when it leaves the
//!   schedule and popped when it re-enters, the heap never holds duplicates,
//!   and the pop-side staleness check is a cheap invariant guard;
//! * the machine's **per-class / per-(cluster, class) unit indices**
//!   ([`Machine::fu_ids_of_class`]) — window probes and victim selection touch
//!   only the candidate units instead of filtering the full FU list.
//!
//! All window arithmetic is done in `u64`: `estart + II` can exceed `u32` for
//! long-latency chains at large IIs, which used to wrap (release) or panic
//! (debug).  An attempt that would have to place an operation beyond
//! `u32::MAX` cycles fails instead of corrupting the schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem;

use vliw_ddg::{Ddg, DepKind, OpId};
use vliw_machine::{ClusterId, FuId, Machine};

use crate::mrt::Mrt;
use crate::priority::height_r_into;

/// Reusable backing storage of one scheduling attempt: the placement arrays,
/// the ready heap, the MRT grids and the cluster ranking buffer.
///
/// One engine attempt performs a dozen allocations; an II search multiplies
/// that by the number of attempts, and a corpus compile by the number of loops.
/// A per-worker `SchedScratch` threaded through [`run_placement_with`] (or the
/// schedulers' `_with` entry points) makes every attempt after the first
/// allocation-free: buffers are taken out of the scratch, cleared, resized and
/// returned by [`PlacementEngine::recycle`], growing monotonically to the
/// high-water mark of the workload.
#[derive(Debug, Default)]
pub struct SchedScratch {
    heights: Vec<i64>,
    start: Vec<Option<u32>>,
    fu_of: Vec<FuId>,
    prev_start: Vec<u64>,
    never_scheduled: Vec<bool>,
    cluster_load: Vec<u32>,
    mrt: Mrt,
    /// Backing vector of the ready heap (kept as a `Vec` between attempts so
    /// refills use `BinaryHeap::from`'s O(n) heapify).
    ready: Vec<(i64, Reverse<u32>)>,
    ranked: Vec<ClusterId>,
    validate: vliw_ddg::ValidateScratch,
}

impl SchedScratch {
    /// The graph-validation buffers, shared with the schedulers' pre-flight
    /// [`Ddg::validate_with`] check.
    pub fn validate_scratch(&mut self) -> &mut vliw_ddg::ValidateScratch {
        &mut self.validate
    }
}

/// Cluster restriction of one placement round, as decided by a
/// [`ClusterPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eligibility {
    /// Any cluster may host the operation (plain IMS: the machine is treated as
    /// one flat pool of units).
    AnyCluster,
    /// Only the clusters the policy wrote into the scratch ranking may host the
    /// operation, probed best-first.
    Ranked,
}

/// The per-scheduler part of the placement loop: which clusters may host an
/// operation, and which inter-cluster value flows are illegal.
pub trait ClusterPolicy {
    /// Computes the clusters eligible to host `op`, best first, into `ranked`.
    ///
    /// Returning [`Eligibility::AnyCluster`] leaves the placement unrestricted
    /// (`ranked` is ignored).  Returning [`Eligibility::Ranked`] restricts the
    /// window search and victim selection to the clusters in `ranked`, probed
    /// in order.  The policy may unschedule already-placed operations through
    /// `engine` (the partitioner backtracks out of communication conflicts this
    /// way) — it must then leave `ranked` non-empty, or the attempt fails.
    fn eligible(
        &self,
        engine: &mut PlacementEngine<'_>,
        op: OpId,
        ranked: &mut Vec<ClusterId>,
    ) -> Eligibility;

    /// True if a value produced in `from` cannot be consumed in `to`.  The
    /// engine unschedules flow neighbours that a forced placement strands in
    /// incompatible clusters.  The default (plain IMS) permits everything.
    fn comm_violated(&self, machine: &Machine, from: ClusterId, to: ClusterId) -> bool {
        let _ = (machine, from, to);
        false
    }
}

/// The trivial policy of plain IMS: every cluster is always eligible.
pub struct AnyClusterPolicy;

impl ClusterPolicy for AnyClusterPolicy {
    fn eligible(
        &self,
        _engine: &mut PlacementEngine<'_>,
        _op: OpId,
        _ranked: &mut Vec<ClusterId>,
    ) -> Eligibility {
        Eligibility::AnyCluster
    }
}

/// State of one scheduling attempt at a fixed II: the modulo reservation table,
/// the per-operation placement arrays and the ready queue.
pub struct PlacementEngine<'a> {
    ddg: &'a Ddg,
    machine: &'a Machine,
    ii: u32,
    heights: Vec<i64>,
    start: Vec<Option<u32>>,
    fu_of: Vec<FuId>,
    prev_start: Vec<u64>,
    never_scheduled: Vec<bool>,
    cluster_load: Vec<u32>,
    mrt: Mrt,
    ready: BinaryHeap<(i64, Reverse<u32>)>,
    ranked_buf: Vec<ClusterId>,
}

impl<'a> PlacementEngine<'a> {
    /// Prepares an attempt: computes the II-adjusted heights and fills the
    /// ready queue with every operation.
    pub fn new(ddg: &'a Ddg, machine: &'a Machine, ii: u32) -> Self {
        Self::new_in(ddg, machine, ii, &mut SchedScratch::default())
    }

    /// [`PlacementEngine::new`] backed by `scratch`'s buffers: the attempt
    /// allocates nothing the scratch already holds.  Pair with
    /// [`PlacementEngine::recycle`] to return the buffers after the run.
    pub fn new_in(ddg: &'a Ddg, machine: &'a Machine, ii: u32, scratch: &mut SchedScratch) -> Self {
        let n = ddg.num_ops();
        let mut heights = mem::take(&mut scratch.heights);
        height_r_into(ddg, ii, &mut heights);
        let mut ready = mem::take(&mut scratch.ready);
        ready.clear();
        ready.extend(heights.iter().enumerate().map(|(i, &h)| (h, Reverse(i as u32))));
        let mut start = mem::take(&mut scratch.start);
        start.clear();
        start.resize(n, None);
        let mut fu_of = mem::take(&mut scratch.fu_of);
        fu_of.clear();
        fu_of.resize(n, FuId(0));
        let mut prev_start = mem::take(&mut scratch.prev_start);
        prev_start.clear();
        prev_start.resize(n, 0);
        let mut never_scheduled = mem::take(&mut scratch.never_scheduled);
        never_scheduled.clear();
        never_scheduled.resize(n, true);
        let mut cluster_load = mem::take(&mut scratch.cluster_load);
        cluster_load.clear();
        cluster_load.resize(machine.num_clusters(), 0);
        let mut mrt = mem::take(&mut scratch.mrt);
        mrt.reset(machine, ii);
        let mut ranked_buf = mem::take(&mut scratch.ranked);
        ranked_buf.clear();
        PlacementEngine {
            ddg,
            machine,
            ii,
            heights,
            start,
            fu_of,
            prev_start,
            never_scheduled,
            cluster_load,
            mrt,
            ready: BinaryHeap::from(ready),
            ranked_buf,
        }
    }

    /// Returns the engine's buffers to `scratch` for the next attempt.
    pub fn recycle(self, scratch: &mut SchedScratch) {
        scratch.heights = self.heights;
        scratch.start = self.start;
        scratch.fu_of = self.fu_of;
        scratch.prev_start = self.prev_start;
        scratch.never_scheduled = self.never_scheduled;
        scratch.cluster_load = self.cluster_load;
        scratch.mrt = self.mrt;
        scratch.ready = self.ready.into_vec();
        scratch.ranked = self.ranked_buf;
    }

    /// The dependence graph being scheduled.
    #[inline]
    pub fn ddg(&self) -> &'a Ddg {
        self.ddg
    }

    /// The target machine.
    #[inline]
    pub fn machine(&self) -> &'a Machine {
        self.machine
    }

    /// The initiation interval of this attempt.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The cluster currently hosting `op`, or `None` if it is unscheduled.
    #[inline]
    pub fn cluster_of(&self, op: OpId) -> Option<ClusterId> {
        self.start[op.index()].map(|_| self.machine.fu(self.fu_of[op.index()]).cluster)
    }

    /// Number of operations currently placed in cluster `c`.
    #[inline]
    pub fn cluster_load(&self, c: ClusterId) -> u32 {
        self.cluster_load[c.index()]
    }

    /// Removes `op` from the schedule (no-op if it is not scheduled), returning
    /// it to the ready queue.  Policies use this to backtrack out of
    /// communication conflicts.
    pub fn unschedule(&mut self, op: OpId) {
        if let Some(s) = self.start[op.index()] {
            self.mrt.release(s, self.fu_of[op.index()]);
            self.mark_unscheduled(op);
        }
    }

    /// Bookkeeping shared by every unscheduling path; the caller has already
    /// released the MRT slot.
    fn mark_unscheduled(&mut self, op: OpId) {
        let i = op.index();
        let c = self.machine.fu(self.fu_of[i]).cluster;
        self.cluster_load[c.index()] = self.cluster_load[c.index()].saturating_sub(1);
        self.start[i] = None;
        self.ready.push((self.heights[i], Reverse(op.0)));
    }

    /// Pops the highest-priority unscheduled operation (height, then lowest
    /// id), or `None` when every operation is placed.
    fn pop_ready(&mut self) -> Option<OpId> {
        while let Some((_, Reverse(id))) = self.ready.pop() {
            if self.start[id as usize].is_none() {
                return Some(OpId(id));
            }
        }
        None
    }

    /// Earliest start of `op` consistent with its scheduled predecessors.
    fn estart(&self, op: OpId) -> u64 {
        let mut estart: i64 = 0;
        for e in self.ddg.pred_edges(op) {
            if e.src == op {
                continue; // self recurrences are guaranteed by II >= RecMII
            }
            if let Some(s) = self.start[e.src.index()] {
                estart = estart.max(s as i64 + e.weight_at(self.ii));
            }
        }
        estart.max(0) as u64
    }

    /// The unit among `candidates` whose occupant at `cycle` has the lowest
    /// priority (free units sort first); ties go to the lowest unit id because
    /// the index lists are ascending.
    fn victim_fu(&self, cycle: u32, candidates: &[FuId]) -> Option<FuId> {
        candidates.iter().copied().min_by_key(|&f| {
            self.mrt.occupant(cycle, f).map(|occ| self.heights[occ.index()]).unwrap_or(i64::MIN)
        })
    }

    /// Runs the placement loop until every operation is scheduled or the budget
    /// is exhausted.  Returns the per-op start times and unit assignments.
    ///
    /// The engine survives the run (`&mut self`) so its buffers can be
    /// [recycled](PlacementEngine::recycle) into a [`SchedScratch`].
    pub fn run<P: ClusterPolicy>(
        &mut self,
        budget: u32,
        policy: &P,
    ) -> Option<(Vec<u32>, Vec<FuId>)> {
        // The ranking buffer is lent to the loop (the policy callback already
        // borrows the whole engine mutably) and restored on every exit path.
        let mut ranked = mem::take(&mut self.ranked_buf);
        let result = self.run_inner(budget, policy, &mut ranked);
        self.ranked_buf = ranked;
        result
    }

    fn run_inner<P: ClusterPolicy>(
        &mut self,
        budget: u32,
        policy: &P,
        ranked: &mut Vec<ClusterId>,
    ) -> Option<(Vec<u32>, Vec<FuId>)> {
        let ddg = self.ddg;
        let ii = self.ii;
        let mut budget = budget as i64;

        while let Some(op) = self.pop_ready() {
            budget -= 1;
            if budget < 0 {
                return None;
            }

            let class = ddg.op(op).class();
            // The estart is computed *before* the policy runs: a backtracking
            // policy may unschedule predecessors, and the window deliberately
            // keeps the bound they implied (matching the original schedulers).
            let estart = self.estart(op);
            ranked.clear();
            let eligibility = policy.eligible(self, op, ranked);

            // Look for a free unit in the scheduling window
            // [estart, estart + II - 1], best cluster first.
            let mut placement: Option<(u64, FuId)> = None;
            'window: for t in estart..estart + ii as u64 {
                if t > u32::MAX as u64 {
                    break;
                }
                let cycle = t as u32;
                match eligibility {
                    Eligibility::AnyCluster => {
                        if let Some(fu) = self.mrt.free_fu(self.machine, cycle, class, None) {
                            placement = Some((t, fu));
                            break 'window;
                        }
                    }
                    Eligibility::Ranked => {
                        for &c in ranked.iter() {
                            if let Some(fu) = self.mrt.free_fu(self.machine, cycle, class, Some(c))
                            {
                                placement = Some((t, fu));
                                break 'window;
                            }
                        }
                    }
                }
            }

            let (time, fu) = match placement {
                Some(p) => p,
                None => {
                    // Forced placement (Rau): at estart if this is the first
                    // time or the window moved forward, otherwise one cycle
                    // after the previous placement so progress is made.
                    let i = op.index();
                    let time = if self.never_scheduled[i] || estart > self.prev_start[i] {
                        estart
                    } else {
                        self.prev_start[i] + 1
                    };
                    if time > u32::MAX as u64 {
                        return None; // the schedule no longer fits the cycle domain
                    }
                    // Evict from the unit whose occupant has the lowest
                    // priority, restricted to the best eligible cluster that
                    // has units of the class at all.  If no eligible cluster
                    // can execute the class the attempt fails — escaping to an
                    // ineligible cluster would break the policy's invariants.
                    let candidates: &[FuId] = match eligibility {
                        Eligibility::AnyCluster => self.machine.fu_ids_of_class(class),
                        Eligibility::Ranked => ranked
                            .iter()
                            .map(|&c| self.machine.fu_ids_of_class_in_cluster(c, class))
                            .find(|units| !units.is_empty())
                            .unwrap_or(&[]),
                    };
                    match self.victim_fu(time as u32, candidates) {
                        Some(f) => (time, f),
                        None => return None,
                    }
                }
            };

            let cycle = time as u32;
            // Evict the current occupant of the chosen slot, if any.
            if let Some(victim) = self.mrt.release(cycle, fu) {
                self.mark_unscheduled(victim);
            }
            self.mrt.reserve(cycle, fu, op);
            let i = op.index();
            self.start[i] = Some(cycle);
            self.fu_of[i] = fu;
            self.prev_start[i] = time;
            self.never_scheduled[i] = false;
            let placed_cluster = self.machine.fu(fu).cluster;
            self.cluster_load[placed_cluster.index()] += 1;

            // Unschedule already-placed operations whose dependences with `op`
            // are now violated — and, under a restrictive policy, flow
            // neighbours the placement stranded in incompatible clusters; they
            // will be re-placed later (this is the "iterative" part).
            for e in ddg.succ_edges(op) {
                if e.dst == op {
                    continue;
                }
                if let Some(s_dst) = self.start[e.dst.index()] {
                    let dep_violated = (s_dst as i64) < time as i64 + e.weight_at(ii);
                    let comm_violated = e.kind == DepKind::Flow
                        && policy.comm_violated(
                            self.machine,
                            placed_cluster,
                            self.machine.fu(self.fu_of[e.dst.index()]).cluster,
                        );
                    if dep_violated || comm_violated {
                        self.unschedule(e.dst);
                    }
                }
            }
            for e in ddg.pred_edges(op) {
                if e.src == op {
                    continue;
                }
                if let Some(s_src) = self.start[e.src.index()] {
                    let dep_violated = (time as i64) < s_src as i64 + e.weight_at(ii);
                    let comm_violated = e.kind == DepKind::Flow
                        && policy.comm_violated(
                            self.machine,
                            self.machine.fu(self.fu_of[e.src.index()]).cluster,
                            placed_cluster,
                        );
                    if dep_violated || comm_violated {
                        self.unschedule(e.src);
                    }
                }
            }
        }

        // The result vectors escape into the schedule, so they are the one
        // fresh allocation of a successful attempt; the working buffers stay
        // with the engine for recycling.
        let start: Vec<u32> = self.start.iter().map(|s| s.expect("all ops scheduled")).collect();
        Some((start, self.fu_of.clone()))
    }
}

/// Runs one scheduling attempt of `ddg` on `machine` at the given II under
/// `policy`, bounded by `budget` placements.
pub fn run_placement<P: ClusterPolicy>(
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    budget: u32,
    policy: &P,
) -> Option<(Vec<u32>, Vec<FuId>)> {
    PlacementEngine::new(ddg, machine, ii).run(budget, policy)
}

/// [`run_placement`] backed by a caller-owned [`SchedScratch`]: repeated
/// attempts (the II search, a corpus compile) reuse one set of buffers.
pub fn run_placement_with<P: ClusterPolicy>(
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    budget: u32,
    policy: &P,
    scratch: &mut SchedScratch,
) -> Option<(Vec<u32>, Vec<FuId>)> {
    let mut engine = PlacementEngine::new_in(ddg, machine, ii, scratch);
    let result = engine.run(budget, policy);
    engine.recycle(scratch);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::height_r;
    use vliw_ddg::{DdgBuilder, LatencyModel, OpKind};

    fn machine(fus: usize) -> Machine {
        Machine::single_cluster(fus, 2, 32, LatencyModel::default())
    }

    #[test]
    fn ready_queue_orders_by_height_then_lowest_id() {
        // Three independent adds plus a chain head: the chain head (highest
        // height) is placed at cycle 0, then the ties go in id order.
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let ops = b.ops(OpKind::Add, 3);
        let tail = b.op(OpKind::Add);
        b.flow(ops[1], tail);
        let g = b.finish();
        let m = machine(6);
        let (start, _) = run_placement(&g, &m, 2, 64, &AnyClusterPolicy).unwrap();
        // op1 heads the only chain: scheduled first, at its estart.
        assert_eq!(start[ops[1].index()], 0);
    }

    /// The historical scan-based IMS attempt (pre-engine), kept verbatim as an
    /// executable specification of the placement order: highest-priority
    /// unscheduled op by `(height, Reverse(id))` maximised, window search,
    /// Rau's forced placement, lowest-priority victim eviction,
    /// dependence-violation unscheduling.
    fn naive_schedule_at(
        ddg: &Ddg,
        mach: &Machine,
        ii: u32,
        budget: u32,
    ) -> Option<(Vec<u32>, Vec<FuId>)> {
        let n = ddg.num_ops();
        let heights = height_r(ddg, ii);
        let mut start: Vec<Option<u32>> = vec![None; n];
        let mut fu_of: Vec<FuId> = vec![FuId(0); n];
        let mut prev_start: Vec<u32> = vec![0; n];
        let mut never_scheduled: Vec<bool> = vec![true; n];
        let mut mrt = Mrt::new(mach, ii);
        let mut budget = budget as i64;
        while let Some(i) = (0..n)
            .filter(|&i| start[i].is_none())
            .max_by_key(|&i| (heights[i], std::cmp::Reverse(i)))
        {
            let op = OpId(i as u32);
            budget -= 1;
            if budget < 0 {
                return None;
            }
            let class = ddg.op(op).class();
            let mut estart: i64 = 0;
            for e in ddg.pred_edges(op) {
                if e.src == op {
                    continue;
                }
                if let Some(s) = start[e.src.index()] {
                    estart = estart.max(s as i64 + e.weight_at(ii));
                }
            }
            let estart = estart.max(0) as u32;
            let mut placement: Option<(u32, FuId)> = None;
            for t in estart..estart + ii {
                if let Some(fu) = mrt.free_fu(mach, t, class, None) {
                    placement = Some((t, fu));
                    break;
                }
            }
            let (time, fu) = match placement {
                Some(p) => p,
                None => {
                    let time = if never_scheduled[i] || estart > prev_start[i] {
                        estart
                    } else {
                        prev_start[i] + 1
                    };
                    let victim_fu = mach
                        .fus_of_class(class)
                        .map(|f| f.id)
                        .min_by_key(|&f| {
                            mrt.occupant(time, f)
                                .map(|occ| heights[occ.index()])
                                .unwrap_or(i64::MIN)
                        })
                        .expect("at least one unit of the class");
                    (time, victim_fu)
                }
            };
            if let Some(victim) = mrt.release(time, fu) {
                start[victim.index()] = None;
            }
            mrt.reserve(time, fu, op);
            start[i] = Some(time);
            fu_of[i] = fu;
            prev_start[i] = time;
            never_scheduled[i] = false;
            for e in ddg.succ_edges(op) {
                if e.dst == op {
                    continue;
                }
                if let Some(s_dst) = start[e.dst.index()] {
                    if (s_dst as i64) < time as i64 + e.weight_at(ii) {
                        mrt.release(s_dst, fu_of[e.dst.index()]);
                        start[e.dst.index()] = None;
                    }
                }
            }
            for e in ddg.pred_edges(op) {
                if e.src == op {
                    continue;
                }
                if let Some(s_src) = start[e.src.index()] {
                    if (time as i64) < s_src as i64 + e.weight_at(ii) {
                        mrt.release(s_src, fu_of[e.src.index()]);
                        start[e.src.index()] = None;
                    }
                }
            }
        }
        let start: Vec<u32> = start.into_iter().map(|s| s.expect("all ops scheduled")).collect();
        Some((start, fu_of))
    }

    #[test]
    fn engine_matches_the_naive_priority_scan() {
        // The heap-based ready queue must reproduce the exact placements of
        // the historical `filter().max_by_key()` scan — same start cycles,
        // same unit assignments — including on tie-heavy graphs, eviction
        // (forced placement) and dependence-violation backtracking.
        use vliw_ddg::kernels;
        let budget = 512;
        let mut cases: Vec<Ddg> = Vec::new();
        // Tie-heavy: six independent load→add chains (equal heights per rank).
        let mut b = DdgBuilder::new(LatencyModel::default());
        let lds = b.ops(OpKind::Load, 6);
        let adds = b.ops(OpKind::Add, 6);
        for (l, a) in lds.iter().zip(&adds) {
            b.flow(*l, *a);
        }
        cases.push(b.finish());
        for lp in kernels::all_kernels(LatencyModel::default()) {
            cases.push(lp.ddg);
        }
        for g in &cases {
            for fus in [3, 6] {
                let m = machine(fus);
                for ii in 1..=6 {
                    assert_eq!(
                        run_placement(g, &m, ii, budget, &AnyClusterPolicy),
                        naive_schedule_at(g, &m, ii, budget),
                        "engine diverges from the naive scan at II {ii} on {fus} FUs"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_engines() {
        // One scratch carried across kernels, machine widths and IIs (so every
        // buffer is resized up and down and the MRT is re-shaped) must yield
        // exactly the placements of a fresh engine every time.
        use vliw_ddg::kernels;
        let mut scratch = SchedScratch::default();
        for lp in kernels::all_kernels(LatencyModel::default()) {
            for fus in [3, 6] {
                let m = machine(fus);
                for ii in 1..=5 {
                    let fresh = run_placement(&lp.ddg, &m, ii, 256, &AnyClusterPolicy);
                    let reused =
                        run_placement_with(&lp.ddg, &m, ii, 256, &AnyClusterPolicy, &mut scratch);
                    assert_eq!(fresh, reused, "II {ii} on {fus} FUs");
                }
            }
        }
    }

    #[test]
    fn exhausted_budget_fails_the_attempt() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.ops(OpKind::Add, 8);
        let g = b.finish();
        let m = machine(3);
        assert_eq!(run_placement(&g, &m, 1, 2, &AnyClusterPolicy), None);
    }

    #[test]
    fn long_latency_window_does_not_overflow() {
        // A chain whose estart approaches u32::MAX: the window `estart + II`
        // overflows u32 but must neither wrap nor panic.  Latencies are per-op
        // in the model, so build the reach with a chain of huge latencies.
        let lat = LatencyModel { load: u32::MAX / 2, mul: u32::MAX / 2, ..Default::default() };
        let mut b = DdgBuilder::new(lat);
        let a = b.op(OpKind::Load);
        let m1 = b.op(OpKind::Mul);
        let tail = b.op(OpKind::Add);
        b.flow(a, m1);
        b.flow(m1, tail);
        let g = b.finish();
        let m = machine(6);
        let (start, _) = run_placement(&g, &m, 8, 64, &AnyClusterPolicy).unwrap();
        assert_eq!(start[tail.index()] as u64, u32::MAX as u64 - 1);
    }
}
