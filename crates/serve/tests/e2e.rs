//! End-to-end daemon tests over real sockets: a `vliw-serve` instance in this
//! process, driven by the same [`ServeClient`] the `figures` CLI uses.
//!
//! Covered here: daemon-backed reports are byte-identical to in-process runs
//! (TCP and Unix transports), two concurrent clients coalesce onto one
//! compilation pass, a shutdown request ends the accept loop, and a warm
//! restart over a persistent cache serves everything from disk with zero cold
//! compiles.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use vliw_bench::{
    assemble_report, requests_for, run_experiments_in, validate_server, RunConfig, Selection,
    ServeClient,
};
use vliw_core::experiments::{fig3_experiment, Classify};
use vliw_core::{Session, SweepGrid};
use vliw_serve::{Listen, ServeConfig, Server};

/// A fresh scratch directory under the system temp dir, unique per test.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> ScratchDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("vliw_serve_{label}_{}_{n}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("scratch dir is creatable");
        ScratchDir(path)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Binds a daemon on `listen`, runs its accept loop on a background thread,
/// and returns the address plus the join handle (which resolves once a client
/// sends shutdown).
fn spawn_daemon(config: ServeConfig) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("daemon binds");
    let addr = server.local_addr().to_string();
    let handle = thread::spawn(move || server.run().expect("accept loop exits cleanly"));
    (addr, handle)
}

/// A daemon config over a small corpus on an ephemeral TCP port.
fn tcp_config(corpus_size: usize, seed: u64) -> ServeConfig {
    ServeConfig {
        listen: Listen::Tcp("127.0.0.1:0".to_string()),
        corpus_size,
        seed,
        threads: Some(2),
        cache_dir: None,
    }
}

#[test]
fn tcp_daemon_reports_are_byte_identical_to_in_process_runs() {
    let (corpus_size, seed) = (16, 386);
    let (addr, daemon) = spawn_daemon(tcp_config(corpus_size, seed));

    let mut client = ServeClient::connect(&addr).expect("client connects");
    let info = client.info().expect("info answers");
    validate_server(&info, corpus_size, seed).expect("daemon serves what we asked for");
    assert_eq!(info.threads, 2);
    assert!(!info.persistent);

    let run = RunConfig { corpus_size, seed, threads: Some(2), ..RunConfig::default() };
    let responses = client
        .run(requests_for(Selection::All, SweepGrid::default(), Classify::default(), false, 0))
        .unwrap();
    let remote = assemble_report(corpus_size, seed, responses).expect("responses assemble");
    let local = run_experiments_in(&Session::new(run.experiment_config()), Selection::All)
        .expect("in-process run succeeds");

    assert_eq!(remote, local, "daemon-backed report diverged from the in-process run");
    assert_eq!(
        serde_json::to_string_pretty(&remote).unwrap(),
        serde_json::to_string_pretty(&local).unwrap(),
        "serialized reports must be byte-identical"
    );

    // The daemon also answers static-verification requests, clean on the
    // warm session it just compiled for the figure run.
    let verify = client
        .run(requests_for(Selection::Verify, SweepGrid::default(), Classify::default(), false, 0))
        .unwrap();
    assert_eq!(verify.len(), 1);
    match &verify[0] {
        vliw_core::experiments::ExperimentResponse::Verify(report) => {
            assert!(report.is_clean(), "daemon-verified corpus must be clean");
            assert_eq!(report.corpus_size, corpus_size);
        }
        other => panic!("asked for verify, got `{}`", other.name()),
    }

    client.shutdown().expect("shutdown acknowledged");
    daemon.join().expect("accept loop thread exits after shutdown");
}

#[test]
fn unix_daemon_serves_and_removes_its_socket_file() {
    let dir = ScratchDir::new("unix");
    let socket = dir.0.join("vliw.sock");
    let config = ServeConfig {
        listen: Listen::Unix(socket.clone()),
        corpus_size: 10,
        seed: 7,
        threads: Some(2),
        cache_dir: None,
    };
    let (addr, daemon) = spawn_daemon(config);
    assert_eq!(addr, format!("unix:{}", socket.display()));

    let mut client = ServeClient::connect(&addr).expect("client connects over unix socket");
    let responses = client.run(vec![vliw_core::experiments::ExperimentRequest::Fig3]).unwrap();
    let direct = fig3_experiment(&Session::quick(10, 7)).unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(
        serde_json::to_string(&responses[0]).unwrap(),
        serde_json::to_string(&vliw_core::experiments::ExperimentResponse::Fig3(direct)).unwrap()
    );

    client.shutdown().unwrap();
    daemon.join().unwrap();
    assert!(!socket.exists(), "the daemon must remove its socket file on exit");
}

#[test]
fn concurrent_clients_coalesce_onto_one_compilation_pass() {
    let (corpus_size, seed) = (12, 19980330);
    let (addr, daemon) = spawn_daemon(tcp_config(corpus_size, seed));

    // What one pass costs, measured on an identical in-process session.
    let reference = Session::quick(corpus_size, seed);
    fig3_experiment(&reference).unwrap();
    let single = reference.stats();
    assert!(single.compilations > 0);

    // Two clients ask for the same experiment at the same time.
    let answers: Vec<String> = thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = ServeClient::connect(&addr).expect("client connects");
                    let responses = client
                        .run(vec![vliw_core::experiments::ExperimentRequest::Fig3])
                        .expect("run answers");
                    serde_json::to_string(&responses).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    assert_eq!(answers[0], answers[1], "concurrent clients must see identical bytes");

    // The daemon's session must have coalesced: every unique artifact was
    // compiled exactly once, the second client's requests were served as hits
    // (either from the memo store or by waiting on the in-flight slot).
    let mut client = ServeClient::connect(&addr).expect("stats client connects");
    let stats = client.stats().expect("stats answers");
    assert_eq!(
        stats.compilations, single.compilations,
        "duplicate in-flight work must not recompile: {stats:?}"
    );
    assert!(
        stats.hits >= single.compilations,
        "the second client's requests must be cache hits: {stats:?}"
    );

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn malformed_and_oversized_frames_get_structured_error_frames() {
    use std::io::Write;
    use vliw_core::protocol::{read_message, write_frame, ResponseEnvelope, MAX_FRAME_BYTES};
    use vliw_core::protocol::{WireResponse, PROTOCOL_VERSION};
    use vliw_core::VliwError;

    let (addr, daemon) = spawn_daemon(tcp_config(4, 1));

    // Expects the daemon to answer the broken frame with an error envelope
    // carrying id 0 (it never decoded a request id) and a structured
    // `protocol`-kind error, then drop the connection.
    let expect_protocol_error = |stream: &mut std::net::TcpStream| {
        let response: ResponseEnvelope =
            read_message(stream).expect("error envelope decodes").expect("daemon answers");
        assert_eq!(response.id, 0, "the real request id never arrived");
        match response.body {
            WireResponse::Error(e) => {
                assert_eq!(e.kind(), "protocol");
                match e {
                    VliwError::Remote { kind, message } => {
                        assert_eq!(kind, "protocol");
                        assert!(!message.is_empty());
                    }
                    other => panic!("wire errors deserialize as Remote, got {other:?}"),
                }
            }
            other => panic!("expected Error, got {other:?}"),
        }
        let eof: Option<ResponseEnvelope> = read_message(stream).expect("clean close");
        assert!(eof.is_none(), "the daemon drops the connection after a broken frame");
    };

    // A well-formed frame that is not a request envelope.
    let mut stream = std::net::TcpStream::connect(&addr).expect("raw client connects");
    write_frame(&mut stream, &serde_json::to_value(&7u32)).unwrap();
    expect_protocol_error(&mut stream);

    // A length prefix over the frame cap; the daemon must reject it without
    // reading (or allocating) the body.
    let mut stream = std::net::TcpStream::connect(&addr).expect("raw client connects");
    stream.write_all(&(MAX_FRAME_BYTES + 1).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    expect_protocol_error(&mut stream);

    // The daemon survives both broken clients and still serves real ones.
    let mut client = ServeClient::connect(&addr).expect("client connects");
    assert_eq!(client.info().expect("info answers").protocol_version, PROTOCOL_VERSION);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn metrics_frame_scrapes_daemon_telemetry() {
    let (addr, daemon) = spawn_daemon(tcp_config(8, 5));

    let mut client = ServeClient::connect(&addr).expect("client connects");
    client.run(vec![vliw_core::experiments::ExperimentRequest::Fig3]).expect("run answers");
    let text = client.metrics().expect("metrics answers");

    // Per-request-type latency histograms: the run request above must have
    // been recorded before the scrape.
    assert!(text.contains("# TYPE vliw_request_duration_seconds histogram"), "{text}");
    assert!(text.contains("vliw_request_duration_seconds_count{type=\"run\"} 1"), "{text}");
    assert!(text.contains("vliw_request_duration_seconds_bucket{type=\"run\",le=\"+Inf\"} 1"));
    // Store counters: the fig3 sweep compiled something.
    let compiled_line = text
        .lines()
        .find(|l| l.starts_with("vliw_store_events_total{kind=\"compile\",outcome=\"compiled\"}"))
        .expect("compile counter series present");
    let compiled: u64 = compiled_line.split_whitespace().last().unwrap().parse().unwrap();
    assert!(compiled > 0, "the fig3 run must have compiled: {compiled_line}");
    // Daemon gauges.
    assert!(text.contains("vliw_uptime_seconds"), "{text}");
    assert!(text.contains("vliw_connections_total 1"), "{text}");
    assert!(text.contains("vliw_protocol_errors_total 0"), "{text}");

    // A second scrape sees the first one in its own histogram.
    let text = client.metrics().expect("second scrape answers");
    assert!(text.contains("vliw_request_duration_seconds_count{type=\"metrics\"} 1"), "{text}");

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn a_warm_restart_over_a_persistent_cache_compiles_nothing() {
    let dir = ScratchDir::new("warm");
    let (corpus_size, seed) = (10, 8644);
    let config = |listen: Listen| ServeConfig {
        listen,
        corpus_size,
        seed,
        threads: Some(2),
        cache_dir: Some(dir.0.clone()),
    };

    // Cold daemon: pays for the compilations, persists the artifacts.
    let (addr, daemon) = spawn_daemon(config(Listen::Tcp("127.0.0.1:0".to_string())));
    let mut client = ServeClient::connect(&addr).unwrap();
    assert!(client.info().unwrap().persistent);
    let cold_answer = serde_json::to_string(
        &client.run(vec![vliw_core::experiments::ExperimentRequest::Fig3]).unwrap(),
    )
    .unwrap();
    let cold = client.stats().unwrap();
    assert!(cold.compilations > 0);
    assert_eq!(cold.disk_hits, 0);
    client.shutdown().unwrap();
    daemon.join().unwrap();

    // Warm daemon over the same cache dir: zero cold compiles, all disk hits,
    // identical bytes.
    let (addr, daemon) = spawn_daemon(config(Listen::Tcp("127.0.0.1:0".to_string())));
    let mut client = ServeClient::connect(&addr).unwrap();
    let warm_answer = serde_json::to_string(
        &client.run(vec![vliw_core::experiments::ExperimentRequest::Fig3]).unwrap(),
    )
    .unwrap();
    let warm = client.stats().unwrap();
    assert_eq!(warm_answer, cold_answer, "disk round-trip must be lossless");
    assert_eq!(warm.compilations, 0, "a warm daemon must not compile: {warm:?}");
    assert_eq!(warm.disk_hits, cold.compilations, "every artifact must come from disk");
    client.shutdown().unwrap();
    daemon.join().unwrap();
}
