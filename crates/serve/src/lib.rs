//! `vliw-serve` — a persistent compile/simulate daemon behind the Experiment
//! API.
//!
//! The daemon owns exactly one [`Session`] (one corpus, one memo store, one
//! optional on-disk artifact cache) and serves it to any number of concurrent
//! clients over a Unix or TCP socket, speaking the length-prefixed JSON frame
//! protocol of [`vliw_core::protocol`].  The point is amortization: the
//! session's corpus is generated once at startup, every compilation and
//! simulation is memoized across *all* clients and — with `--cache-dir` —
//! across daemon restarts, and duplicate in-flight work is coalesced (two
//! clients requesting the same experiment concurrently pay for one compile;
//! the session's per-key once-slots block the second requester until the
//! first one's artifact lands, then both share it).
//!
//! The accept loop admits connections until a client sends
//! [`WireRequest::Shutdown`]; the daemon then stops accepting, drains the
//! in-flight connections and exits.  Each connection runs on its own thread,
//! handling one request at a time in arrival order (clients may still
//! pipeline: responses are matched by envelope id).
//!
//! The `figures` CLI is one such client (`figures all --server ADDR`); the
//! in-process and daemon-backed runs produce byte-identical reports because
//! the wire format round-trips every row losslessly.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vliw_core::protocol::{
    read_message, write_message, RequestEnvelope, ResponseEnvelope, ServerInfo, WireRequest,
    WireResponse, PROTOCOL_VERSION,
};
use vliw_core::session::{peak_rss_kb, STORE_VERSION};
use vliw_core::{CorpusConfig, Session, SessionBuilder, VliwError};
use vliw_obs::{fmt_duration, prom_header, prom_sample_f64, prom_sample_u64, LatencyHistogram};

/// Default listen address of the daemon.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7421";

/// Where the daemon listens: a TCP address or a Unix socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address in `host:port` form (port 0 picks a free port).
    Tcp(String),
    /// A Unix domain socket path.
    Unix(PathBuf),
}

impl std::str::FromStr for Listen {
    type Err = String;

    /// Parses `unix:/path/to.sock` as a Unix socket, anything else as a TCP
    /// address.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix socket path is empty".to_string());
            }
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if s.is_empty() {
            Err("listen address is empty".to_string())
        } else {
            Ok(Listen::Tcp(s.to_string()))
        }
    }
}

impl std::fmt::Display for Listen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listen::Tcp(addr) => f.write_str(addr),
            Listen::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Startup parameters of a daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Where to listen.
    pub listen: Listen,
    /// Number of loops in the session corpus.
    pub corpus_size: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Worker threads of the session executor (`None` = the session default).
    pub threads: Option<usize>,
    /// Directory of the persistent artifact cache (`None` = in-memory only).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let corpus = CorpusConfig::paper_default();
        ServeConfig {
            listen: Listen::Tcp(DEFAULT_ADDR.to_string()),
            corpus_size: corpus.num_loops,
            seed: corpus.seed,
            threads: None,
            cache_dir: None,
        }
    }
}

/// The wire request kinds the daemon tracks per-type latency for, in the
/// order of the [`ServeMetrics::latency`] histograms.
const REQUEST_KINDS: [&str; 5] = ["info", "run", "stats", "metrics", "shutdown"];

/// Daemon-side telemetry: request latencies, connection and error counters,
/// uptime.  One instance per [`Server`], shared with every connection thread;
/// all updates are relaxed atomics, so a scrape never blocks a request.
///
/// The session's own counters (memo-store hits, persist I/O) are *not*
/// duplicated here — [`ServeMetrics::render`] reads them live from the
/// session when a scrape asks.
#[derive(Debug)]
pub struct ServeMetrics {
    /// When the daemon started serving; scrapes report the elapsed time.
    started: Instant,
    /// Connections accepted since startup (also the connection id source).
    connections_total: AtomicU64,
    /// Requests currently being executed across all connections.
    requests_in_flight: AtomicU64,
    /// Frames that failed to decode into a request envelope.
    protocol_errors_total: AtomicU64,
    /// Per-request-type latency, indexed like [`REQUEST_KINDS`].
    latency: [LatencyHistogram; REQUEST_KINDS.len()],
}

impl ServeMetrics {
    /// Fresh telemetry with the uptime clock starting now.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            started: Instant::now(),
            connections_total: AtomicU64::new(0),
            requests_in_flight: AtomicU64::new(0),
            protocol_errors_total: AtomicU64::new(0),
            latency: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    /// Claims the next connection id (1-based) and counts the connection.
    pub fn next_connection(&self) -> u64 {
        self.connections_total.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records one served request of `REQUEST_KINDS[kind]`.
    fn observe(&self, kind: usize, elapsed: Duration) {
        self.latency[kind].record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Renders the full scrape: daemon telemetry plus the session's live
    /// memo-store and persist counters, in Prometheus text exposition.
    pub fn render(&self, session: &Session) -> String {
        let mut out = String::new();

        prom_header(&mut out, "vliw_uptime_seconds", "gauge", "Seconds since the daemon started");
        prom_sample_f64(&mut out, "vliw_uptime_seconds", "", self.started.elapsed().as_secs_f64());

        prom_header(
            &mut out,
            "vliw_connections_total",
            "counter",
            "Connections accepted since startup",
        );
        prom_sample_u64(
            &mut out,
            "vliw_connections_total",
            "",
            self.connections_total.load(Ordering::Relaxed),
        );

        prom_header(
            &mut out,
            "vliw_requests_in_flight",
            "gauge",
            "Requests currently executing across all connections",
        );
        prom_sample_u64(
            &mut out,
            "vliw_requests_in_flight",
            "",
            self.requests_in_flight.load(Ordering::Relaxed),
        );

        prom_header(
            &mut out,
            "vliw_protocol_errors_total",
            "counter",
            "Frames that failed to decode into a request envelope",
        );
        prom_sample_u64(
            &mut out,
            "vliw_protocol_errors_total",
            "",
            self.protocol_errors_total.load(Ordering::Relaxed),
        );

        prom_header(
            &mut out,
            "vliw_request_duration_seconds",
            "histogram",
            "Wall-clock time serving one request, by request type",
        );
        for (i, kind) in REQUEST_KINDS.iter().enumerate() {
            let labels = format!("type=\"{kind}\"");
            self.latency[i].render_prometheus(&mut out, "vliw_request_duration_seconds", &labels);
        }

        // The session's counters, read live: misses mean real work, hits mean
        // memoization paid off, and the gap between concurrent requests and
        // compilations is the in-flight coalescing the once-slots bought.
        let stats = session.stats();
        prom_header(
            &mut out,
            "vliw_store_events_total",
            "counter",
            "Session memo-store requests by kind and how they were satisfied",
        );
        let store = [
            ("compile", "compiled", stats.compilations),
            ("compile", "hit", stats.hits),
            ("compile", "disk_hit", stats.disk_hits),
            ("sim", "run", stats.sim_runs),
            ("sim", "hit", stats.sim_hits),
            ("sim", "disk_hit", stats.sim_disk_hits),
            ("verify", "verified", stats.verifications),
            ("verify", "hit", stats.verify_hits),
        ];
        for (kind, outcome, value) in store {
            let labels = format!("kind=\"{kind}\",outcome=\"{outcome}\"");
            prom_sample_u64(&mut out, "vliw_store_events_total", &labels, value);
        }
        prom_header(
            &mut out,
            "vliw_store_unique_keys",
            "gauge",
            "Distinct compilation keys interned by the session",
        );
        prom_sample_u64(&mut out, "vliw_store_unique_keys", "", stats.unique_keys);

        if let Some((loads, writes, rejects)) = session.persist_counters() {
            prom_header(
                &mut out,
                "vliw_persist_io_total",
                "counter",
                "Persistent artifact store operations by kind",
            );
            prom_sample_u64(&mut out, "vliw_persist_io_total", "op=\"load\"", loads);
            prom_sample_u64(&mut out, "vliw_persist_io_total", "op=\"write\"", writes);
            prom_sample_u64(&mut out, "vliw_persist_io_total", "op=\"reject\"", rejects);
        }

        if let Some(rss) = peak_rss_kb() {
            prom_header(
                &mut out,
                "vliw_peak_rss_kb",
                "gauge",
                "Peak resident set size of the daemon process in kB",
            );
            prom_sample_u64(&mut out, "vliw_peak_rss_kb", "", rss);
        }

        out
    }
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

/// The bound listener, in either transport.
enum Acceptor {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// Byte streams a connection can run on.
trait Connection: Read + Write + Send {}
impl<T: Read + Write + Send> Connection for T {}

/// A running daemon: one session, one listener, an accept loop.
pub struct Server {
    session: Arc<Session>,
    acceptor: Acceptor,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    local_addr: String,
}

impl Server {
    /// Builds the session (generating the corpus, opening the persistent
    /// store if configured — a broken `cache_dir` is a startup error, not a
    /// silent downgrade) and binds the listener.
    pub fn bind(config: ServeConfig) -> Result<Server, VliwError> {
        let mut builder = SessionBuilder::new().corpus_size(config.corpus_size).seed(config.seed);
        if let Some(threads) = config.threads {
            builder = builder.threads(threads);
        }
        if let Some(dir) = &config.cache_dir {
            builder = builder.cache_dir(dir.clone());
        }
        let session = Arc::new(builder.try_build()?);

        let (acceptor, local_addr) = match &config.listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let local =
                    listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| addr.clone());
                (Acceptor::Tcp(listener), local)
            }
            Listen::Unix(path) => {
                // A stale socket file from a dead daemon would make bind fail;
                // the daemon owns its path, so clear it first.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                (Acceptor::Unix(listener, path.clone()), format!("unix:{}", path.display()))
            }
        };
        match &acceptor {
            Acceptor::Tcp(l) => l.set_nonblocking(true)?,
            Acceptor::Unix(l, _) => l.set_nonblocking(true)?,
        }

        Ok(Server {
            session,
            acceptor,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(ServeMetrics::new()),
            local_addr,
        })
    }

    /// The address the daemon actually listens on (with the real port when
    /// the config asked for port 0).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// The daemon's session (shared with every connection).
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Flag that stops the accept loop; a [`WireRequest::Shutdown`] sets it,
    /// and embedders (tests, a signal handler) may set it directly.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The daemon's telemetry (shared with every connection).
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// What this daemon serves, as reported to clients.
    pub fn info(&self) -> ServerInfo {
        server_info(&self.session)
    }

    /// Accepts and serves connections until a client requests shutdown, then
    /// drains the in-flight connections and returns.
    pub fn run(self) -> Result<(), VliwError> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.poll_accept()? {
                Some(stream) => {
                    let session = Arc::clone(&self.session);
                    let shutdown = Arc::clone(&self.shutdown);
                    let metrics = Arc::clone(&self.metrics);
                    let conn_id = metrics.next_connection();
                    workers.push(std::thread::spawn(move || {
                        let mut stream = stream;
                        if let Err(e) = serve_connection(
                            &session,
                            stream.as_mut(),
                            &shutdown,
                            &metrics,
                            conn_id,
                        ) {
                            eprintln!("vliw-serve: conn {conn_id}: connection error: {e}");
                        }
                    }));
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
            workers.retain(|w| !w.is_finished());
        }
        for worker in workers {
            let _ = worker.join();
        }
        if let Acceptor::Unix(_, path) = &self.acceptor {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// One non-blocking accept attempt; `None` when no client is waiting.
    fn poll_accept(&self) -> Result<Option<Box<dyn Connection>>, VliwError> {
        // Connections are served with blocking reads; only the listener polls.
        let accepted: std::io::Result<Box<dyn Connection>> = match &self.acceptor {
            Acceptor::Tcp(listener) => listener.accept().and_then(|(stream, _)| {
                stream.set_nonblocking(false)?;
                Ok(Box::new(stream) as Box<dyn Connection>)
            }),
            Acceptor::Unix(listener, _) => listener.accept().and_then(|(stream, _)| {
                stream.set_nonblocking(false)?;
                Ok(Box::new(stream) as Box<dyn Connection>)
            }),
        };
        match accepted {
            Ok(stream) => Ok(Some(stream)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// The daemon's description of its session.
fn server_info(session: &Session) -> ServerInfo {
    ServerInfo {
        corpus_size: session.num_loops(),
        seed: session.config().corpus.seed,
        threads: session.threads(),
        protocol_version: PROTOCOL_VERSION,
        store_version: STORE_VERSION,
        persistent: session.is_persistent(),
    }
}

/// The latency-histogram index and log name of a request body.
fn request_kind(body: &WireRequest) -> usize {
    match body {
        WireRequest::Info => 0,
        WireRequest::Run(_) => 1,
        WireRequest::Stats => 2,
        WireRequest::Metrics => 3,
        WireRequest::Shutdown => 4,
    }
}

/// Serves one connection: reads request envelopes until the peer closes the
/// stream (or asks for shutdown), answering each in arrival order.
///
/// Every decodable request gets a response — failures travel as
/// [`WireResponse::Error`].  An undecodable frame is answered with a
/// best-effort error envelope (id 0, since the real id never arrived) before
/// the connection is dropped.  Every served request is logged to stderr with
/// its connection id, type, outcome and latency, and recorded in `metrics`.
pub fn serve_connection<S: Read + Write + ?Sized>(
    session: &Session,
    stream: &mut S,
    shutdown: &AtomicBool,
    metrics: &ServeMetrics,
    conn_id: u64,
) -> Result<(), VliwError> {
    loop {
        let request = match read_message::<_, RequestEnvelope>(stream) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(e) => {
                metrics.protocol_errors_total.fetch_add(1, Ordering::Relaxed);
                eprintln!("vliw-serve: conn {conn_id} undecodable frame: {e}");
                let _ = write_message(
                    stream,
                    &ResponseEnvelope { id: 0, body: WireResponse::Error(e.clone()) },
                );
                return Err(e);
            }
        };
        let kind = request_kind(&request.body);
        metrics.requests_in_flight.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let (body, stop) = handle_request(session, request.body, shutdown, metrics);
        let elapsed = start.elapsed();
        metrics.requests_in_flight.fetch_sub(1, Ordering::Relaxed);
        metrics.observe(kind, elapsed);
        let outcome = match &body {
            WireResponse::Error(e) => format!("err({})", e.kind()),
            _ => "ok".to_string(),
        };
        eprintln!(
            "vliw-serve: conn {conn_id} {} {} in {}",
            REQUEST_KINDS[kind],
            outcome,
            fmt_duration(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)),
        );
        write_message(stream, &ResponseEnvelope { id: request.id, body })?;
        if stop {
            return Ok(());
        }
    }
}

/// Executes one request body; the bool asks the connection loop to stop.
fn handle_request(
    session: &Session,
    body: WireRequest,
    shutdown: &AtomicBool,
    metrics: &ServeMetrics,
) -> (WireResponse, bool) {
    match body {
        WireRequest::Info => (WireResponse::Info(server_info(session)), false),
        WireRequest::Run(requests) => {
            let mut responses = Vec::with_capacity(requests.len());
            for request in &requests {
                match request.run(session) {
                    Ok(response) => responses.push(response),
                    Err(e) => return (WireResponse::Error(e), false),
                }
            }
            (WireResponse::Run(responses), false)
        }
        WireRequest::Stats => (WireResponse::Stats(session.stats()), false),
        WireRequest::Metrics => (WireResponse::Metrics(metrics.render(session)), false),
        WireRequest::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            (WireResponse::Shutdown, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use vliw_core::experiments::{fig3_experiment, ExperimentRequest, ExperimentResponse};

    /// A scripted duplex: requests are pre-written into the read side, the
    /// responses accumulate in the write side.
    struct Scripted {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn script(requests: &[RequestEnvelope]) -> Scripted {
        let mut input = Vec::new();
        for request in requests {
            write_message(&mut input, request).unwrap();
        }
        Scripted { input: Cursor::new(input), output: Vec::new() }
    }

    fn responses_of(stream: Scripted) -> Vec<ResponseEnvelope> {
        let mut cursor = Cursor::new(stream.output);
        let mut responses = Vec::new();
        while let Some(response) = read_message(&mut cursor).unwrap() {
            responses.push(response);
        }
        responses
    }

    #[test]
    fn listen_addresses_parse_both_transports() {
        assert_eq!("127.0.0.1:7421".parse(), Ok(Listen::Tcp("127.0.0.1:7421".to_string())));
        assert_eq!(
            "unix:/tmp/vliw.sock".parse(),
            Ok(Listen::Unix(PathBuf::from("/tmp/vliw.sock")))
        );
        assert!("".parse::<Listen>().is_err());
        assert!("unix:".parse::<Listen>().is_err());
        assert_eq!(Listen::Tcp("a:1".into()).to_string(), "a:1");
        assert_eq!(Listen::Unix("/p.sock".into()).to_string(), "unix:/p.sock");
    }

    #[test]
    fn info_stats_and_run_are_served_in_order() {
        let session = Session::quick(6, 5);
        let shutdown = AtomicBool::new(false);
        let mut stream = script(&[
            RequestEnvelope { id: 1, body: WireRequest::Info },
            RequestEnvelope { id: 2, body: WireRequest::Run(vec![ExperimentRequest::Fig3]) },
            RequestEnvelope { id: 3, body: WireRequest::Stats },
        ]);
        serve_connection(&session, &mut stream, &shutdown, &ServeMetrics::new(), 1).unwrap();
        let responses = responses_of(stream);
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].id, 1);
        match &responses[0].body {
            WireResponse::Info(info) => {
                assert_eq!(info.corpus_size, 6);
                assert_eq!(info.seed, 5);
                assert_eq!(info.protocol_version, PROTOCOL_VERSION);
                assert!(!info.persistent);
            }
            other => panic!("expected Info, got {other:?}"),
        }
        match &responses[1].body {
            WireResponse::Run(results) => {
                let direct = fig3_experiment(&session).unwrap();
                assert_eq!(results, &vec![ExperimentResponse::Fig3(direct)]);
            }
            other => panic!("expected Run, got {other:?}"),
        }
        match &responses[2].body {
            WireResponse::Stats(stats) => assert!(stats.compilations > 0),
            other => panic!("expected Stats, got {other:?}"),
        }
        assert!(!shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn shutdown_sets_the_flag_and_ends_the_connection() {
        let session = Session::quick(2, 1);
        let shutdown = AtomicBool::new(false);
        let mut stream = script(&[
            RequestEnvelope { id: 9, body: WireRequest::Shutdown },
            // Anything after shutdown on this connection is not served.
            RequestEnvelope { id: 10, body: WireRequest::Info },
        ]);
        serve_connection(&session, &mut stream, &shutdown, &ServeMetrics::new(), 1).unwrap();
        let responses = responses_of(stream);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].id, 9);
        assert_eq!(responses[0].body, WireResponse::Shutdown);
        assert!(shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn malformed_frames_get_a_best_effort_error_envelope() {
        let session = Session::quick(2, 1);
        let shutdown = AtomicBool::new(false);
        let mut input = Vec::new();
        // A valid frame that is not a request envelope.
        vliw_core::protocol::write_frame(&mut input, &serde_json::to_value(&42u32)).unwrap();
        let mut stream = Scripted { input: Cursor::new(input), output: Vec::new() };
        let err = serve_connection(&session, &mut stream, &shutdown, &ServeMetrics::new(), 1)
            .unwrap_err();
        assert_eq!(err.kind(), "protocol");
        let responses = responses_of(stream);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].id, 0);
        match &responses[0].body {
            WireResponse::Error(e) => assert_eq!(e.kind(), "protocol"),
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn multi_request_run_answers_in_request_order() {
        let session = Session::quick(2, 1);
        let shutdown = AtomicBool::new(false);
        let mut stream = script(&[RequestEnvelope {
            id: 4,
            body: WireRequest::Run(vec![
                ExperimentRequest::Fig4,
                ExperimentRequest::Resources { cluster_counts: vec![4] },
            ]),
        }]);
        serve_connection(&session, &mut stream, &shutdown, &ServeMetrics::new(), 1).unwrap();
        let responses = responses_of(stream);
        assert_eq!(responses.len(), 1);
        match &responses[0].body {
            WireResponse::Run(results) => {
                assert_eq!(results.len(), 2);
                assert_eq!(results[0].name(), "fig4");
                assert_eq!(results[1].name(), "resources");
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn metrics_scrape_reports_histograms_and_store_counters() {
        let session = Session::quick(4, 3);
        let shutdown = AtomicBool::new(false);
        let metrics = ServeMetrics::new();
        let mut stream = script(&[
            RequestEnvelope { id: 1, body: WireRequest::Run(vec![ExperimentRequest::Fig3]) },
            RequestEnvelope { id: 2, body: WireRequest::Metrics },
        ]);
        serve_connection(&session, &mut stream, &shutdown, &metrics, 7).unwrap();
        let responses = responses_of(stream);
        assert_eq!(responses.len(), 2);
        let WireResponse::Metrics(text) = &responses[1].body else {
            panic!("expected Metrics, got {:?}", responses[1].body)
        };
        // The run request finished before the scrape, so its histogram holds
        // exactly one observation; the scrape itself is the only in-flight
        // request while rendering.
        assert!(text.contains("vliw_request_duration_seconds_count{type=\"run\"} 1"), "{text}");
        assert!(text.contains("vliw_request_duration_seconds_bucket{type=\"run\",le=\"+Inf\"} 1"));
        assert!(text.contains("vliw_requests_in_flight 1"));
        assert!(text.contains("vliw_uptime_seconds"));
        assert!(text.contains("vliw_store_events_total{kind=\"compile\",outcome=\"compiled\"}"));
        // The quick session has no cache dir, so persist series are absent.
        assert!(!text.contains("vliw_persist_io_total"));
        if cfg!(target_os = "linux") {
            assert!(text.contains("vliw_peak_rss_kb"));
        }
    }

    #[test]
    fn default_config_listens_on_the_documented_address() {
        let config = ServeConfig::default();
        assert_eq!(config.listen, Listen::Tcp(DEFAULT_ADDR.to_string()));
        assert_eq!(config.corpus_size, CorpusConfig::paper_default().num_loops);
        assert!(config.cache_dir.is_none());
    }
}
