//! The `vliw-serve` daemon binary.
//!
//! ```text
//! vliw-serve                                        # TCP 127.0.0.1:7421, paper corpus
//! vliw-serve --listen unix:/tmp/vliw.sock \
//!     --corpus-size 32 --seed 386 --cache-dir .vliw-cache
//! ```
//!
//! The daemon builds one compilation session (corpus generated once, optional
//! persistent artifact cache) and serves the Experiment API over the socket
//! until a client sends a shutdown request.  Pair it with the `figures` CLI:
//! `figures all --format json --server 127.0.0.1:7421`.

use std::process::ExitCode;

use clap::{Arg, ArgMatches, Command};
use vliw_serve::{Listen, ServeConfig, Server, DEFAULT_ADDR};

/// Builds the `vliw-serve` command line.
fn command() -> Command {
    let defaults = ServeConfig::default();
    Command::new("vliw-serve")
        .about(
            "Persistent compile/simulate daemon: one shared session behind the \
             Experiment API, over a Unix or TCP socket",
        )
        .arg(
            Arg::new("listen")
                .long("listen")
                .value_name("ADDR")
                .default_value(DEFAULT_ADDR)
                .help("Listen address: host:port, or unix:/path/to.sock"),
        )
        .arg(
            Arg::new("corpus-size")
                .long("corpus-size")
                .value_name("N")
                .default_value(defaults.corpus_size.to_string())
                .help("Number of loops in the session corpus"),
        )
        .arg(
            Arg::new("seed")
                .long("seed")
                .value_name("S")
                .default_value(defaults.seed.to_string())
                .help("Corpus generator seed"),
        )
        .arg(
            Arg::new("threads")
                .long("threads")
                .value_name("T")
                .help("Worker threads for the corpus sweeps (default: all cores, max 8)"),
        )
        .arg(
            Arg::new("cache-dir")
                .long("cache-dir")
                .value_name("DIR")
                .help("Persist compile/simulate artifacts under DIR across restarts"),
        )
}

/// Resolves parsed matches into a daemon configuration.
fn resolve(matches: &ArgMatches) -> Result<ServeConfig, String> {
    let listen: Listen = matches
        .get_one::<String>("listen")
        .expect("--listen has a default")
        .parse()
        .map_err(|e| format!("invalid --listen: {e}"))?;
    let corpus_size: usize = parse_number(matches, "corpus-size")?;
    if corpus_size == 0 {
        return Err("--corpus-size must be at least 1".to_string());
    }
    let seed: u64 = parse_number(matches, "seed")?;
    let threads: Option<usize> = matches
        .get_one::<String>("threads")
        .map(|raw| raw.parse().map_err(|e| format!("invalid --threads `{raw}`: {e}")))
        .transpose()?;
    let cache_dir = matches.get_one::<String>("cache-dir").map(std::path::PathBuf::from);
    Ok(ServeConfig { listen, corpus_size, seed, threads, cache_dir })
}

/// Parses option `id` as a number with a clean diagnostic.
fn parse_number<T>(matches: &ArgMatches, id: &str) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let raw: String = matches.get_one(id).ok_or_else(|| format!("--{id} needs a value"))?;
    raw.parse().map_err(|e| format!("invalid --{id} `{raw}`: {e}"))
}

fn main() -> ExitCode {
    let matches = command().get_matches();
    let config = match resolve(&matches) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let info = server.info();
    eprintln!(
        "vliw-serve: listening on {} ({} loops, seed {}, {} threads, cache {})",
        server.local_addr(),
        info.corpus_size,
        info.seed,
        info.threads,
        if info.persistent { "persistent" } else { "in-memory" },
    );

    if let Err(e) = server.run() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
