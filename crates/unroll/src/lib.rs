//! Loop unrolling for modulo-scheduled loops (Section 3 of the paper).
//!
//! Unrolling replicates the loop body `U` times so that a wide machine has enough
//! independent operations to fill its functional units.  For modulo scheduling the
//! interesting metric is the **II speedup**: the II of the original loop divided by
//! the per-original-iteration II of the unrolled loop (`II_unrolled / U`).  The paper
//! reports that a considerable fraction of loops gains from unrolling with no extra
//! hardware (Fig. 4).
//!
//! Loop-carried edges are redistributed in the standard way: an edge `(i → j)` with
//! distance `d` connects copy `k` of `i` to copy `(k + d) mod U` of `j` with new
//! distance `(k + d) / U`.

use vliw_ddg::{Ddg, Loop, OpClass};
use vliw_machine::Machine;
use vliw_sched::rec_mii;

pub mod transform;

pub use transform::{unroll_ddg, unroll_ddg_into, UnrolledLoop};

/// Default cap on the unroll factor (the paper's experiments use small factors: the
/// goal is to saturate a 12–18-FU machine, not to flatten the loop).
pub const DEFAULT_MAX_FACTOR: u32 = 4;

/// Cap on the number of operations in the unrolled body; very large loops do not
/// benefit from unrolling (they already saturate the machine) and would only slow
/// the scheduler down.
pub const MAX_UNROLLED_OPS: usize = 256;

/// Chooses an unroll factor for `ddg` on `machine`.
///
/// The predictor minimises the per-original-iteration resource bound
/// `ResMII(U·body) / U` (the recurrence bound is unaffected by unrolling), breaking
/// ties towards the smallest factor.  Loops that cannot improve (or that would grow
/// past [`MAX_UNROLLED_OPS`]) keep factor 1.
pub fn select_unroll_factor(ddg: &Ddg, machine: &Machine, max_factor: u32) -> u32 {
    let max_factor = max_factor.max(1);
    let rec = rec_mii(ddg) as f64;
    let counts = ddg.class_counts();
    let units = machine.class_counts();
    let mut best_factor = 1u32;
    let mut best_cost = f64::INFINITY;
    for factor in 1..=max_factor {
        if ddg.num_ops() * factor as usize > MAX_UNROLLED_OPS {
            break;
        }
        // ResMII of the factor-times-unrolled body, straight from the class
        // counts: the unrolled body holds exactly `factor` copies of every
        // operation, so there is no need to materialise the unrolled graph.
        let mut res = 1usize;
        let mut missing_unit = false;
        for class in OpClass::ALL {
            let ops = counts[class.index()] * factor as usize;
            if ops == 0 {
                continue;
            }
            if units[class.index()] == 0 {
                missing_unit = true;
                break;
            }
            res = res.max(ops.div_ceil(units[class.index()]));
        }
        if missing_unit {
            continue;
        }
        // Per-original-iteration initiation interval estimate.
        let cost = (res as f64 / factor as f64).max(rec);
        if cost + 1e-9 < best_cost {
            best_cost = cost;
            best_factor = factor;
        }
    }
    best_factor
}

/// Unrolls `lp` by the factor chosen by [`select_unroll_factor`].
pub fn unroll_for_machine(lp: &Loop, machine: &Machine, max_factor: u32) -> UnrolledLoop {
    let factor = select_unroll_factor(&lp.ddg, machine, max_factor);
    unroll_ddg(&lp.ddg, factor)
}

/// The II speedup achieved by unrolling: `II_original / (II_unrolled / U)`.
///
/// Values greater than 1 mean the unrolled schedule completes each original
/// iteration faster.
pub fn ii_speedup(original_ii: u32, unrolled_ii: u32, factor: u32) -> f64 {
    assert!(original_ii >= 1 && unrolled_ii >= 1 && factor >= 1);
    original_ii as f64 * factor as f64 / unrolled_ii as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::LatencyModel as MachineLatency;
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn machine(fus: usize) -> Machine {
        Machine::single_cluster(fus, 2, 32, MachineLatency::default())
    }

    #[test]
    fn small_loop_with_rounding_slack_wants_unrolling() {
        // On a 6-FU machine (2 L/S units) daxpy's 3 memory operations force II = 2
        // although only 1.5 cycles of L/S work exist per iteration; unrolling by 2
        // recovers the rounding slack (II 3 for 2 iterations).
        let l = kernels::daxpy(LatencyModel::default(), 100);
        let factor = select_unroll_factor(&l.ddg, &machine(6), 4);
        assert!(factor > 1, "daxpy on a 6-FU machine should unroll, got {factor}");
    }

    #[test]
    fn saturated_wide_machine_does_not_unroll() {
        // On a 12-FU machine daxpy already reaches II = 1, so no unroll factor can
        // improve the per-iteration II and the selector keeps factor 1.
        let l = kernels::daxpy(LatencyModel::default(), 100);
        let factor = select_unroll_factor(&l.ddg, &machine(12), 4);
        assert_eq!(factor, 1);
    }

    #[test]
    fn recurrence_bound_loop_does_not_unroll() {
        // The first-order recurrence is limited by RecMII, which unrolling cannot
        // improve, so the selector keeps factor 1 (ties go to the smallest factor).
        let l = kernels::first_order_recurrence(LatencyModel::default(), 100);
        let factor = select_unroll_factor(&l.ddg, &machine(12), 4);
        assert_eq!(factor, 1);
    }

    #[test]
    fn unrolling_improves_ii_per_iteration() {
        let l = kernels::daxpy(LatencyModel::default(), 100);
        let m = machine(6);
        let base = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
        let unrolled = unroll_for_machine(&l, &m, 4);
        assert!(unrolled.factor > 1);
        let after = modulo_schedule(&unrolled.ddg, &m, ImsOptions::default()).unwrap();
        let speedup = ii_speedup(base.schedule.ii, after.schedule.ii, unrolled.factor);
        assert!(speedup >= 1.0, "unrolling should never slow the loop down here: {speedup}");
        assert!(speedup > 1.2, "daxpy on 6 FUs should gain from unrolling, got {speedup}");
    }

    #[test]
    fn ii_speedup_formula() {
        assert!((ii_speedup(4, 4, 2) - 2.0).abs() < 1e-9);
        assert!((ii_speedup(4, 8, 2) - 1.0).abs() < 1e-9);
        assert!((ii_speedup(3, 7, 2) - 6.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn factor_never_exceeds_op_budget() {
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let factor = select_unroll_factor(&l.ddg, &machine(18), 64);
        assert!(l.ddg.num_ops() * factor as usize <= MAX_UNROLLED_OPS);
    }

    #[test]
    #[should_panic]
    fn ii_speedup_rejects_zero() {
        let _ = ii_speedup(0, 1, 1);
    }
}
