//! The unrolling transformation itself.

use vliw_ddg::{Ddg, OpId};

/// An unrolled loop body together with the bookkeeping needed to map operations back
/// to the original body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrolledLoop {
    /// The unrolled dependence graph.  Copy `k` of original operation `i` has id
    /// `k · original_ops + i`.
    pub ddg: Ddg,
    /// Unroll factor (1 means the graph is an exact copy of the original).
    pub factor: u32,
    /// Number of operations in the original body.
    pub original_ops: usize,
}

impl UnrolledLoop {
    /// The id of copy `k` of original operation `op`.
    pub fn copy_of(&self, op: OpId, k: u32) -> OpId {
        assert!(k < self.factor);
        assert!(op.index() < self.original_ops);
        OpId(k * self.original_ops as u32 + op.0)
    }

    /// Maps an operation of the unrolled body back to `(original op, copy index)`.
    pub fn original_of(&self, op: OpId) -> (OpId, u32) {
        let n = self.original_ops as u32;
        (OpId(op.0 % n), op.0 / n)
    }
}

/// Unrolls `ddg` by `factor`.
///
/// Every original operation is replicated `factor` times; an edge `(i → j)` with
/// distance `d` becomes, for each copy `k`, an edge from copy `k` of `i` to copy
/// `(k + d) mod factor` of `j` with distance `(k + d) / factor`.  This preserves the
/// inter-iteration semantics of the original loop exactly (the unrolled loop executes
/// `factor` original iterations per unrolled iteration).
pub fn unroll_ddg(ddg: &Ddg, factor: u32) -> UnrolledLoop {
    let mut out = Ddg::new();
    unroll_ddg_into(ddg, factor, &mut out);
    UnrolledLoop { ddg: out, factor, original_ops: ddg.num_ops() }
}

/// [`unroll_ddg`] into a caller-owned graph (cleared and rebuilt), so a pipeline
/// that immediately consumes the unrolled body (copy insertion does) can keep one
/// scratch graph alive instead of allocating and dropping one per loop.
pub fn unroll_ddg_into(ddg: &Ddg, factor: u32, out: &mut Ddg) {
    assert!(factor >= 1, "unroll factor must be at least 1");
    let n = ddg.num_ops();
    out.clear_and_reserve(n * factor as usize);
    for k in 0..factor {
        for op in ddg.ops() {
            let id = out.add_op(op.kind);
            debug_assert_eq!(id.0, k * n as u32 + op.id.0);
        }
    }
    for k in 0..factor {
        for e in ddg.edges() {
            let total = k + e.distance;
            let dst_copy = total % factor;
            let new_distance = total / factor;
            let src = OpId(k * n as u32 + e.src.0);
            let dst = OpId(dst_copy * n as u32 + e.dst.0);
            out.add_edge(src, dst, e.kind, e.latency, new_distance);
        }
    }
    debug_assert!(out.validate().is_ok(), "unrolling produced an invalid graph");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use vliw_ddg::{DdgBuilder, DepKind, LatencyModel, OpKind};

    fn accumulator() -> Ddg {
        // ld -> add(acc); acc -> acc carried.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let acc = b.op(OpKind::Add);
        b.flow(ld, acc);
        b.flow_carried(acc, acc, 1);
        b.finish()
    }

    #[test]
    fn factor_one_is_identity_up_to_ids() {
        let g = accumulator();
        let u = unroll_ddg(&g, 1);
        assert_eq!(u.ddg.num_ops(), g.num_ops());
        assert_eq!(u.ddg.num_edges(), g.num_edges());
        assert_eq!(u.factor, 1);
        for (a, b) in g.edges().zip(u.ddg.edges()) {
            assert_eq!(
                (a.src, a.dst, a.latency, a.distance),
                (b.src, b.dst, b.latency, b.distance)
            );
        }
    }

    #[test]
    fn op_count_scales_with_factor() {
        let g = accumulator();
        for f in 1..=5u32 {
            let u = unroll_ddg(&g, f);
            assert_eq!(u.ddg.num_ops(), g.num_ops() * f as usize);
            assert_eq!(u.ddg.num_edges(), g.num_edges() * f as usize);
            assert!(u.ddg.validate().is_ok());
        }
    }

    #[test]
    fn carried_self_edge_becomes_chain_plus_wraparound() {
        let g = accumulator();
        let u = unroll_ddg(&g, 3);
        // Copies of the accumulator are ops 1, 3, 5.
        let acc = OpId(1);
        let accs: Vec<OpId> = (0..3).map(|k| u.copy_of(acc, k)).collect();
        // Edges: acc0 -> acc1 (d 0), acc1 -> acc2 (d 0), acc2 -> acc0 (d 1).
        let mut found = 0;
        for e in u.ddg.edges() {
            if e.src == accs[0] && e.dst == accs[1] {
                assert_eq!(e.distance, 0);
                found += 1;
            }
            if e.src == accs[1] && e.dst == accs[2] {
                assert_eq!(e.distance, 0);
                found += 1;
            }
            if e.src == accs[2] && e.dst == accs[0] {
                assert_eq!(e.distance, 1);
                found += 1;
            }
        }
        assert_eq!(found, 3);
    }

    #[test]
    fn distance_two_edges_skip_a_copy() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let p = b.op(OpKind::Add);
        let c = b.op(OpKind::Mul);
        b.flow_carried(p, c, 2);
        let g = b.finish();
        let u = unroll_ddg(&g, 2);
        // distance 2 at factor 2: copy k feeds copy k of the consumer in the *next*
        // unrolled iteration (distance 1).
        for e in u.ddg.edges() {
            assert_eq!(e.distance, 1);
            let (src_orig, src_copy) = u.original_of(e.src);
            let (dst_orig, dst_copy) = u.original_of(e.dst);
            assert_eq!(src_orig, p);
            assert_eq!(dst_orig, c);
            assert_eq!(src_copy, dst_copy);
        }
    }

    #[test]
    fn copy_of_and_original_of_roundtrip() {
        let g = accumulator();
        let u = unroll_ddg(&g, 4);
        for k in 0..4 {
            for op in g.op_ids() {
                let c = u.copy_of(op, k);
                assert_eq!(u.original_of(c), (op, k));
            }
        }
    }

    #[test]
    fn recurrence_circuit_total_weight_is_preserved() {
        // The recurrence circuit's delay-to-distance ratio (and hence RecMII per
        // original iteration) must be preserved by unrolling.
        let g = accumulator();
        let rec1 = vliw_sched::rec_mii(&g);
        for f in 2..=4 {
            let u = unroll_ddg(&g, f);
            let rec_u = vliw_sched::rec_mii(&u.ddg);
            // RecMII of the unrolled body counts f original iterations.
            assert_eq!(rec_u.div_ceil(f), rec1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_factor_panics() {
        let g = accumulator();
        let _ = unroll_ddg(&g, 0);
    }

    /// Random DAG + carried edges generator for property tests.
    fn random_ddg(seed: u64, n: usize) -> Ddg {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = DdgBuilder::new(LatencyModel::default());
        let kinds = [OpKind::Load, OpKind::Add, OpKind::Mul, OpKind::Sub];
        let ops: Vec<OpId> = (0..n).map(|_| b.op(kinds[rng.gen_range(0..kinds.len())])).collect();
        for i in 1..n {
            // Forward edge to keep the distance-0 subgraph acyclic.
            let src = ops[rng.gen_range(0..i)];
            b.flow(src, ops[i]);
            if rng.gen_bool(0.3) {
                let dst = ops[rng.gen_range(0..i)];
                b.edge_with_latency(
                    ops[i],
                    dst,
                    DepKind::Flow,
                    rng.gen_range(1..4),
                    rng.gen_range(1..3),
                );
            }
        }
        b.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Unrolling preserves validity and scales counts for arbitrary graphs.
        #[test]
        fn unrolling_preserves_validity(seed in 0u64..500, n in 2usize..20, factor in 1u32..5) {
            let g = random_ddg(seed, n);
            let u = unroll_ddg(&g, factor);
            prop_assert!(u.ddg.validate().is_ok());
            prop_assert_eq!(u.ddg.num_ops(), g.num_ops() * factor as usize);
            prop_assert_eq!(u.ddg.num_edges(), g.num_edges() * factor as usize);
        }

        /// Every unrolled edge maps back to an original edge with consistent copy
        /// arithmetic: `dst_copy = (src_copy + d_orig) mod U` and
        /// `d_new = (src_copy + d_orig) / U`.
        #[test]
        fn edge_redistribution_is_consistent(seed in 0u64..500, n in 2usize..16, factor in 1u32..5) {
            let g = random_ddg(seed, n);
            let u = unroll_ddg(&g, factor);
            for e in u.ddg.edges() {
                let (src_orig, src_copy) = u.original_of(e.src);
                let (dst_orig, dst_copy) = u.original_of(e.dst);
                // Find a matching original edge.
                let matched = g.edges().any(|oe| {
                    oe.src == src_orig
                        && oe.dst == dst_orig
                        && oe.latency == e.latency
                        && oe.kind == e.kind
                        && (src_copy + oe.distance) % factor == dst_copy
                        && (src_copy + oe.distance) / factor == e.distance
                });
                prop_assert!(matched, "unrolled edge {} has no original counterpart", e);
            }
        }

        /// The recurrence bound per original iteration never degrades.
        #[test]
        fn rec_mii_per_iteration_preserved(seed in 0u64..200, n in 2usize..12, factor in 1u32..5) {
            let g = random_ddg(seed, n);
            let u = unroll_ddg(&g, factor);
            let rec1 = vliw_sched::rec_mii(&g);
            let rec_u = vliw_sched::rec_mii(&u.ddg);
            prop_assert!(rec_u <= rec1 * factor,
                "unrolled RecMII {} exceeds {} x factor {}", rec_u, rec1, factor);
        }
    }
}
