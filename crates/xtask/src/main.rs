//! Repo maintenance tasks, invoked as `cargo run -p xtask -- <task>`.
//!
//! `lint` is the CI static gate: grep-grade policy checks that run on a
//! stable, offline toolchain in milliseconds, covering rules `clippy` has no
//! lints for:
//!
//! * `unsafe` is forbidden everywhere except the one audited module
//!   (`crates/core/src/session/executor.rs`, the work-stealing executor).
//! * `.unwrap()` / `.expect(` are denied in the *non-test* code of the
//!   verification-critical hot paths (`crates/verify`, `crates/sim`,
//!   `crates/qrf`, `crates/bounds`) — a verifier that can panic mid-verdict is
//!   not a verifier, and the same holds for a bounds certifier.
//! * every `#[allow(clippy::...)]` must carry a justification comment on the
//!   same or the preceding line, so suppressions stay deliberate.
//! * doc-sync: every stable code the verifier (`V001-…`) and the bounds
//!   analyzer (`B001-…`) define must have a row in README.md's code tables.
//!
//! The rules are textual by design (no syn, no rustc internals): they run on
//! the exact bytes committed, cannot drift with compiler versions, and their
//! failure messages point at file:line like any other lint.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The one module allowed to contain `unsafe` (relative to the repo root).
const UNSAFE_ALLOWLIST: &[&str] = &["crates/core/src/session/executor.rs"];

/// Crates whose non-test code must be panic-free.
const NO_PANIC_CRATES: &[&str] = &["crates/verify", "crates/sim", "crates/qrf", "crates/bounds"];

/// Sources that define stable lint/certificate codes, and the code prefix each
/// contributes.  Every code found here must have a row in README.md's code
/// tables (doc-sync: shipping a code without documenting it is a lint error).
const CODE_SOURCES: &[(&str, char)] =
    &[("crates/verify/src/violation.rs", 'V'), ("crates/bounds/src/certificate.rs", 'B')];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut findings: Vec<String> = Vec::new();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            findings.push(format!("{}: unreadable", file.display()));
            continue;
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        check_file(&rel_str, &text, &mut findings);
    }

    check_code_docs(&root, &mut findings);

    if findings.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("xtask lint: {f}");
        }
        eprintln!("xtask lint: {} violations", findings.len());
        ExitCode::FAILURE
    }
}

fn check_file(rel: &str, text: &str, findings: &mut Vec<String>) {
    // The linter's own source holds the deny patterns as string literals and
    // test fixtures; it is the policy, not a subject of it.
    if rel.starts_with("crates/xtask/") {
        return;
    }
    let unsafe_allowed = UNSAFE_ALLOWLIST.contains(&rel);
    let panic_denied = NO_PANIC_CRATES.iter().any(|c| rel.starts_with(&format!("{c}/src/")));
    let mut in_test_code = false;
    let mut prev_line: &str = "";
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Everything from the first `#[cfg(test)]` down is test code; the
        // repo convention keeps test modules at the bottom of each file.
        if line.contains("#[cfg(test)]") {
            in_test_code = true;
        }
        let code = strip_line_comment(line);

        if !unsafe_allowed && has_word(code, "unsafe") {
            findings.push(format!("{rel}:{lineno}: `unsafe` outside the executor allow-list"));
        }
        if panic_denied
            && !in_test_code
            && (code.contains(".unwrap()") || code.contains(".expect("))
        {
            findings.push(format!("{rel}:{lineno}: unwrap()/expect() in non-test hot-path code"));
        }
        if code.contains("#[allow(clippy::")
            && !line.contains("//")
            && !prev_line.trim_start().starts_with("//")
        {
            findings.push(format!(
                "{rel}:{lineno}: #[allow(clippy::...)] without a justification comment"
            ));
        }
        prev_line = line;
    }
}

/// Doc-sync: every stable code a [`CODE_SOURCES`] file defines (`V001-…`,
/// `B001-…`) must appear in a README.md table row (a line starting with `|`),
/// so the user-facing code tables can never fall behind the source.
fn check_code_docs(root: &Path, findings: &mut Vec<String>) {
    let readme = match fs::read_to_string(root.join("README.md")) {
        Ok(text) => text,
        Err(e) => {
            findings.push(format!("README.md: unreadable for the code-table doc-sync check: {e}"));
            return;
        }
    };
    let documented: Vec<&str> =
        readme.lines().filter(|l| l.trim_start().starts_with('|')).collect();
    for (rel, prefix) in CODE_SOURCES {
        let path = root.join(rel);
        let Ok(text) = fs::read_to_string(&path) else {
            findings.push(format!("{rel}: unreadable for the code-table doc-sync check"));
            continue;
        };
        let mut codes = extract_codes(&text, *prefix);
        codes.sort();
        codes.dedup();
        if codes.is_empty() {
            findings.push(format!("{rel}: defines no `{prefix}NNN-` codes; doc-sync list stale?"));
        }
        for code in codes {
            if !documented.iter().any(|row| row.contains(&code)) {
                findings.push(format!(
                    "README.md: code `{code}` ({rel}) has no row in a README code table"
                ));
            }
        }
    }
}

/// All `"{prefix}NNN-SUFFIX"` string literals in the non-test part of `text`
/// (e.g. `V001-DEP-DISTANCE`).  Test modules may fabricate codes (`V099-…`)
/// to exercise error paths; those are not shipped and need no documentation.
fn extract_codes(text: &str, prefix: char) -> Vec<String> {
    let text = text.split("#[cfg(test)]").next().unwrap_or(text);
    let mut codes = Vec::new();
    let bytes = text.as_bytes();
    for (pos, _) in text.match_indices(prefix) {
        // Match: prefix, three digits, a dash, then [A-Z-]+ — inside a string
        // literal, so a quote directly precedes the prefix.
        if pos == 0 || bytes[pos - 1] != b'"' {
            continue;
        }
        let rest = &text[pos + 1..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.len() != 3 {
            continue;
        }
        let after = &rest[3..];
        if !after.starts_with('-') {
            continue;
        }
        let suffix: String =
            after[1..].chars().take_while(|c| c.is_ascii_uppercase() || *c == '-').collect();
        if suffix.is_empty() {
            continue;
        }
        codes.push(format!("{prefix}{digits}-{suffix}"));
    }
    codes
}

/// The code part of a line: everything before a `//` comment (string literals
/// containing `//` are rare enough in this repo that a textual rule is fine —
/// a false positive just earns the line a comment explaining itself).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// True if `word` occurs in `code` delimited by non-identifier characters.
fn has_word(code: &str, word: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find(word) {
        let before_ok = pos == 0
            || !rest[..pos].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + word.len()..];
        let after_ok = !after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + word.len()..];
    }
    false
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask/ -> repo root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_is_flagged_outside_the_allowlist() {
        let mut findings = Vec::new();
        check_file("crates/sim/src/engine.rs", "unsafe { x() }\n", &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        findings.clear();
        check_file("crates/core/src/session/executor.rs", "unsafe { x() }\n", &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unsafe_in_comments_or_identifiers_is_not_flagged() {
        let mut findings = Vec::new();
        check_file("crates/sim/src/a.rs", "// unsafe is discussed here\n", &mut findings);
        check_file("crates/sim/src/a.rs", "let not_unsafe_here = 1;\n", &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unwrap_is_flagged_only_in_hot_path_non_test_code() {
        let mut findings = Vec::new();
        check_file("crates/verify/src/check.rs", "x.unwrap();\n", &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        findings.clear();
        check_file("crates/bench/src/lib.rs", "x.unwrap();\n", &mut findings);
        assert!(findings.is_empty(), "other crates may unwrap: {findings:?}");
        findings.clear();
        check_file(
            "crates/qrf/src/alloc.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { x.unwrap(); } }\n",
            &mut findings,
        );
        assert!(findings.is_empty(), "test code may unwrap: {findings:?}");
        findings.clear();
        check_file("crates/sim/src/engine.rs", "x.unwrap_or(0);\n", &mut findings);
        assert!(findings.is_empty(), "unwrap_or is fine: {findings:?}");
    }

    #[test]
    fn clippy_allows_need_a_justification() {
        let mut findings = Vec::new();
        check_file("crates/a/src/lib.rs", "#[allow(clippy::too_many_arguments)]\n", &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        findings.clear();
        check_file(
            "crates/a/src/lib.rs",
            "// the signature mirrors the paper's notation\n#[allow(clippy::too_many_arguments)]\n",
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
        findings.clear();
        check_file(
            "crates/a/src/lib.rs",
            "#[allow(clippy::too_many_arguments)] // paper notation\n",
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn code_literals_are_extracted_from_source() {
        let text = r#"
            Violation::DepDistance { .. } => "V001-DEP-DISTANCE",
            // prose mentioning V9-SHORT and B001 without a dash is skipped
            "B004-STORAGE" => Ok(..),
            let not_a_literal = V002_FU_CONFLICT;
        "#;
        assert_eq!(extract_codes(text, 'V'), vec!["V001-DEP-DISTANCE"]);
        assert_eq!(extract_codes(text, 'B'), vec!["B004-STORAGE"]);
    }

    #[test]
    fn undocumented_codes_are_flagged() {
        let dir = std::env::temp_dir().join(format!("xtask_docsync_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/verify/src")).unwrap();
        fs::create_dir_all(dir.join("crates/bounds/src")).unwrap();
        fs::write(
            dir.join("crates/verify/src/violation.rs"),
            "fn c() -> &'static str { \"V001-DEP-DISTANCE\" }\n",
        )
        .unwrap();
        fs::write(
            dir.join("crates/bounds/src/certificate.rs"),
            "fn c() -> &'static str { \"B001-RESMII\" }\n",
        )
        .unwrap();
        fs::write(dir.join("README.md"), "| `V001-DEP-DISTANCE` | dependency distance |\n")
            .unwrap();
        let mut findings = Vec::new();
        check_code_docs(&dir, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("B001-RESMII"), "{findings:?}");
        // Documenting the code clears the finding.
        fs::write(
            dir.join("README.md"),
            "| `V001-DEP-DISTANCE` | dep |\n| `B001-RESMII` | res MII |\n",
        )
        .unwrap();
        findings.clear();
        check_code_docs(&dir, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_repo_is_currently_clean() {
        // The gate must hold on the tree it ships in.
        let root = repo_root();
        let mut files = Vec::new();
        collect_rs_files(&root.join("crates"), &mut files);
        assert!(!files.is_empty());
        let mut findings = Vec::new();
        for file in &files {
            let text = std::fs::read_to_string(file).unwrap();
            let rel = file.strip_prefix(&root).unwrap_or(file);
            check_file(&rel.to_string_lossy().replace('\\', "/"), &text, &mut findings);
        }
        check_code_docs(&root, &mut findings);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
