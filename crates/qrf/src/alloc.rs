//! Queue allocation: binning per-use lifetimes into hardware queues.
//!
//! Lifetimes are assigned to queues greedily (first fit, in increasing start order):
//! a lifetime joins the first queue whose current members are all Q-compatible with
//! it, otherwise a new queue is opened.  Q-compatibility is pairwise but not
//! transitive, so every member must be checked.
//!
//! The allocator also reports the depth each queue needs (the maximum number of
//! values simultaneously resident), which sizes the queue storage of Fig. 7.

use crate::lifetime::{max_live, Lifetime};
use crate::qcompat::q_compatible;

/// Result of queue allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueAllocation {
    /// Initiation interval of the schedule the lifetimes came from.
    pub ii: u32,
    /// Queue contents: `queues[q]` lists indices into the input lifetime slice.
    pub queues: Vec<Vec<usize>>,
    /// Required depth of each queue (maximum simultaneous occupancy).
    pub queue_depths: Vec<usize>,
}

impl QueueAllocation {
    /// Number of queues used.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The largest queue depth required by any queue.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depths.iter().copied().max().unwrap_or(0)
    }

    /// True if the allocation fits **one** storage pool of `num_queues` queues of
    /// `capacity` entries each.
    ///
    /// This is a single-pool predicate: it is only meaningful when every
    /// lifetime behind the allocation lives in the same physical pool (a
    /// single-cluster QRF, one cluster's private queues, or one directed ring
    /// link).  A clustered machine owns several distinct pools per cluster
    /// (private GPQs plus ring-input and ring-output queues — Fig. 7's 8+8+8),
    /// so feasibility there must be decided per pool from per-pool allocations
    /// (`vliw_partition::CommStats::fits_pools`), never by applying this check
    /// to a machine-wide allocation.
    pub fn fits(&self, num_queues: usize, capacity: usize) -> bool {
        self.num_queues() <= num_queues && self.max_queue_depth() <= capacity
    }
}

/// Allocates `lifetimes` (per-use lifetimes of one modulo-scheduled loop) to queues.
pub fn allocate_queues(lifetimes: &[Lifetime], ii: u32) -> QueueAllocation {
    assert!(ii >= 1);
    // Process lifetimes by increasing start time (then end time) — the same order in
    // which the hardware would see the writes — which keeps first-fit behaviour
    // deterministic and tends to pack compatible chains together.
    let mut order: Vec<usize> = (0..lifetimes.len()).collect();
    order.sort_by_key(|&i| (lifetimes[i].start, lifetimes[i].end, i));

    let mut queues: Vec<Vec<usize>> = Vec::new();
    for &i in &order {
        let lt = &lifetimes[i];
        let mut placed = false;
        for q in queues.iter_mut() {
            if q.iter().all(|&j| q_compatible(lt, &lifetimes[j], ii)) {
                q.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            queues.push(vec![i]);
        }
    }

    let queue_depths = queues
        .iter()
        .map(|q| {
            let members: Vec<Lifetime> = q.iter().map(|&j| lifetimes[j].clone()).collect();
            max_live(&members, ii)
        })
        .collect();

    QueueAllocation { ii, queues, queue_depths }
}

/// Number of queues required by a loop, as reported in Fig. 3: the size of the
/// allocation produced by [`allocate_queues`].
pub fn queues_required(lifetimes: &[Lifetime], ii: u32) -> usize {
    allocate_queues(lifetimes, ii).num_queues()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::use_lifetimes;
    use crate::qcompat::q_compatible;
    use proptest::prelude::*;
    use vliw_ddg::{kernels, LatencyModel, OpId};
    use vliw_machine::Machine;
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn lt(start: u32, end: u32) -> Lifetime {
        Lifetime { producer: OpId(0), consumer: OpId(1), start: start.into(), end: end.into() }
    }

    #[test]
    fn disjoint_compatible_lifetimes_share_one_queue() {
        // Same length, consecutive phases: all pairwise compatible at II 4.
        let lts = vec![lt(0, 2), lt(1, 3), lt(2, 4), lt(3, 5)];
        let alloc = allocate_queues(&lts, 4);
        assert_eq!(alloc.num_queues(), 1);
        assert_eq!(alloc.queues[0].len(), 4);
        assert!(alloc.max_queue_depth() >= 2);
    }

    #[test]
    fn colliding_lifetimes_need_separate_queues() {
        // Identical phases collide pairwise: one queue each.
        let lts = vec![lt(0, 2), lt(4, 6), lt(8, 10)];
        let alloc = allocate_queues(&lts, 4);
        assert_eq!(alloc.num_queues(), 3);
        assert!(alloc.queue_depths.iter().all(|&d| d == 1));
    }

    #[test]
    fn allocation_is_pairwise_compatible_within_each_queue() {
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let m = Machine::single_cluster(6, 2, 32, LatencyModel::default());
        let s = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap().schedule;
        let lts = use_lifetimes(&l.ddg, &s);
        let alloc = allocate_queues(&lts, s.ii);
        for q in &alloc.queues {
            for (ai, &a) in q.iter().enumerate() {
                for &b in &q[ai + 1..] {
                    assert!(
                        q_compatible(&lts[a], &lts[b], s.ii),
                        "queue contains an incompatible pair"
                    );
                }
            }
        }
        // Every lifetime is allocated exactly once.
        let mut seen: Vec<usize> = alloc.queues.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..lts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn queues_required_matches_allocation() {
        let lts = vec![lt(0, 3), lt(1, 4), lt(4, 7), lt(2, 9)];
        assert_eq!(queues_required(&lts, 4), allocate_queues(&lts, 4).num_queues());
    }

    #[test]
    fn fits_checks_both_dimensions() {
        let lts = vec![lt(0, 9), lt(1, 8)];
        let alloc = allocate_queues(&lts, 2);
        assert!(alloc.fits(32, 8));
        assert!(!alloc.fits(0, 8));
        assert!(!alloc.fits(32, 1));
    }

    #[test]
    fn empty_input_allocates_nothing() {
        let alloc = allocate_queues(&[], 3);
        assert_eq!(alloc.num_queues(), 0);
        assert_eq!(alloc.max_queue_depth(), 0);
        assert!(alloc.fits(0, 0));
    }

    proptest! {
        /// The allocator never produces a queue containing an incompatible pair, and
        /// never loses or duplicates a lifetime.
        #[test]
        fn allocation_invariants(
            raw in proptest::collection::vec((0u32..12, 1u32..10), 1..24),
            ii in 1u32..8,
        ) {
            let lts: Vec<Lifetime> = raw
                .iter()
                .map(|&(s, l)| lt(s, s + l))
                .collect();
            let alloc = allocate_queues(&lts, ii);
            let mut seen: Vec<usize> = alloc.queues.iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..lts.len()).collect::<Vec<_>>());
            for q in &alloc.queues {
                for (ai, &a) in q.iter().enumerate() {
                    for &b in &q[ai + 1..] {
                        prop_assert!(q_compatible(&lts[a], &lts[b], ii));
                    }
                }
            }
            // Queue depths are consistent with the members assigned to each queue.
            prop_assert_eq!(alloc.queue_depths.len(), alloc.queues.len());
        }
    }
}
