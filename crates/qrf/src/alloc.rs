//! Queue allocation: binning per-use lifetimes into hardware queues.
//!
//! Lifetimes are assigned to queues greedily (first fit, in increasing start order):
//! a lifetime joins the first queue whose current members are all Q-compatible with
//! it, otherwise a new queue is opened.  Q-compatibility is pairwise but not
//! transitive, so every member must be checked.
//!
//! The membership test is bitset-accelerated (see [`crate::interfere`]): each open
//! queue keeps a running **interference row** — the OR of its members' occupancy
//! masks over the II ring.  A candidate whose mask is disjoint from the row is
//! compatible with every member (one word-AND per word); only on overlap does the
//! allocator fall back to per-member tests, skipping members whose own masks are
//! disjoint and deciding the rest with the division-free reduced form.  The
//! resulting allocation is **identical** to the pairwise path — the masks only
//! skip tests whose outcome is forced.
//!
//! The allocator also reports the depth each queue needs (the maximum number of
//! values simultaneously resident), which sizes the queue storage of Fig. 7.
//! Depths are computed from member indices over a shared difference array; no
//! member lifetime is cloned.

use std::cell::RefCell;

use crate::interfere::{masks_disjoint, words_for, InterferenceSigs};
use crate::lifetime::{max_live_indexed, Lifetime};
use crate::qcompat::q_compatible_reduced;

/// Result of queue allocation.
///
/// Queue membership is stored queue-major in one flat array (`members` sliced
/// by `offsets`, CSR style) so an allocation costs three allocations however
/// many queues it uses; access members through [`QueueAllocation::queue`] or
/// [`QueueAllocation::queues`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueAllocation {
    /// Initiation interval of the schedule the lifetimes came from.
    pub ii: u32,
    /// Lifetime indices of every queue, queue-major.
    members: Vec<u32>,
    /// `members[offsets[q]..offsets[q + 1]]` are queue `q`'s lifetimes.
    offsets: Vec<u32>,
    /// Required depth of each queue (maximum simultaneous occupancy).
    pub queue_depths: Vec<usize>,
}

impl QueueAllocation {
    /// Number of queues used.
    pub fn num_queues(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Indices (into the input lifetime slice) of queue `q`'s members.
    pub fn queue(&self, q: usize) -> &[u32] {
        &self.members[self.offsets[q] as usize..self.offsets[q + 1] as usize]
    }

    /// Iterator over the member lists of all queues, in queue order.
    pub fn queues(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_queues()).map(move |q| self.queue(q))
    }

    /// The largest queue depth required by any queue.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depths.iter().copied().max().unwrap_or(0)
    }

    /// True if the allocation fits **one** storage pool of `num_queues` queues of
    /// `capacity` entries each.
    ///
    /// This is a single-pool predicate: it is only meaningful when every
    /// lifetime behind the allocation lives in the same physical pool (a
    /// single-cluster QRF, one cluster's private queues, or one directed ring
    /// link).  A clustered machine owns several distinct pools per cluster
    /// (private GPQs plus ring-input and ring-output queues — Fig. 7's 8+8+8),
    /// so feasibility there must be decided per pool from per-pool allocations
    /// (`vliw_partition::CommStats::fits_pools`), never by applying this check
    /// to a machine-wide allocation.
    pub fn fits(&self, num_queues: usize, capacity: usize) -> bool {
        self.num_queues() <= num_queues && self.max_queue_depth() <= capacity
    }
}

/// Reusable working storage of [`allocate_queues_with`]: the sort order, the
/// interference signatures, the per-queue interference rows, the flat member
/// tables and the MaxLive difference array.  One instance per worker thread
/// makes queue allocation allocation-free apart from the returned
/// [`QueueAllocation`] itself.
#[derive(Debug, Default)]
pub struct AllocScratch {
    order: Vec<usize>,
    sigs: InterferenceSigs,
    /// Interference rows of the open queues, `words_for(ii)` words each, flat.
    rows: Vec<u64>,
    /// Occupied write phases of the open queues, same layout as `rows`.
    phase_bits: Vec<u64>,
    /// Flat per-queue member tables, stride `ii` (a queue holds at most one
    /// member per phase, hence at most `ii` members).
    member_idx: Vec<u32>,
    member_phase: Vec<u32>,
    member_len: Vec<u64>,
    /// Member count and length extrema per open queue.
    counts: Vec<u32>,
    min_len: Vec<u64>,
    max_len: Vec<u64>,
    diff: Vec<i64>,
}

thread_local! {
    /// Per-thread scratch of the plain [`allocate_queues`] entry point.  The
    /// session executor runs one OS thread per worker, so this gives every
    /// worker a private reusable arena without threading a parameter through
    /// every caller.
    static ALLOC_SCRATCH: RefCell<AllocScratch> = RefCell::new(AllocScratch::default());
}

/// Allocates `lifetimes` (per-use lifetimes of one modulo-scheduled loop) to queues.
pub fn allocate_queues(lifetimes: &[Lifetime], ii: u32) -> QueueAllocation {
    ALLOC_SCRATCH.with(|s| allocate_queues_with(lifetimes, ii, &mut s.borrow_mut()))
}

/// [`allocate_queues`] with an explicit scratch arena (never touches the
/// thread-local default, so it is safe to call from inside other scratch users).
pub fn allocate_queues_with(
    lifetimes: &[Lifetime],
    ii: u32,
    scratch: &mut AllocScratch,
) -> QueueAllocation {
    let _span = vliw_obs::span!("qrf/alloc", lifetimes.len());
    assert!(ii >= 1);
    let words = words_for(ii);
    // Process lifetimes by increasing start time (then end time) — the same order in
    // which the hardware would see the writes — which keeps first-fit behaviour
    // deterministic and tends to pack compatible chains together.
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..lifetimes.len());
    order.sort_unstable_by_key(|&i| (lifetimes[i].start, lifetimes[i].end, i));

    let sigs = &mut scratch.sigs;
    sigs.build_into(lifetimes, ii);
    let rows = &mut scratch.rows;
    rows.clear();
    let phase_bits = &mut scratch.phase_bits;
    phase_bits.clear();
    let stride = ii as usize;
    scratch.member_idx.clear();
    scratch.member_phase.clear();
    scratch.member_len.clear();
    scratch.counts.clear();
    scratch.min_len.clear();
    scratch.max_len.clear();

    let mut nq = 0usize;
    for &i in order.iter() {
        let mask = sigs.mask(i);
        let (phase, len) = (sigs.phase(i), sigs.len(i));
        let (pw, pb) = ((phase / 64) as usize, phase % 64);
        let mut placed = usize::MAX;
        for q in 0..nq {
            // O(1) rejects, all of which only skip provably incompatible
            // queues (so first fit still lands on the same queue):
            // * a member at the candidate's phase — same-phase lifetimes
            //   always collide (`d == 0` fails both branches of the test);
            // * a length gap of at least II−1 in either direction — the
            //   phase distance is at most II−1, so no phase can absorb it.
            if phase_bits[q * words + pw] >> pb & 1 == 1 {
                continue;
            }
            if len >= scratch.min_len[q] + u64::from(ii) - 1
                || scratch.max_len[q] >= len + u64::from(ii) - 1
            {
                continue;
            }
            // O(words) accept: a candidate disjoint from the queue's
            // interference row is compatible with every member.
            let fits = masks_disjoint(mask, &rows[q * words..(q + 1) * words]) || {
                let count = scratch.counts[q] as usize;
                let phases = &scratch.member_phase[q * stride..q * stride + count];
                let lens = &scratch.member_len[q * stride..q * stride + count];
                phases
                    .iter()
                    .zip(lens)
                    .all(|(&pj, &lj)| q_compatible_reduced(phase, len, pj, lj, ii))
            };
            if fits {
                placed = q;
                break;
            }
        }
        if placed == usize::MAX {
            placed = nq;
            nq += 1;
            rows.resize(nq * words, 0);
            phase_bits.resize(nq * words, 0);
            scratch.member_idx.resize(nq * stride, 0);
            scratch.member_phase.resize(nq * stride, 0);
            scratch.member_len.resize(nq * stride, 0);
            scratch.counts.push(0);
            scratch.min_len.push(u64::MAX);
            scratch.max_len.push(0);
        }
        let q = placed;
        let at = q * stride + scratch.counts[q] as usize;
        scratch.member_idx[at] = i as u32;
        scratch.member_phase[at] = phase;
        scratch.member_len[at] = len;
        scratch.counts[q] += 1;
        scratch.min_len[q] = scratch.min_len[q].min(len);
        scratch.max_len[q] = scratch.max_len[q].max(len);
        phase_bits[q * words + pw] |= 1u64 << pb;
        for (r, m) in rows[q * words..(q + 1) * words].iter_mut().zip(mask) {
            *r |= m;
        }
    }

    let mut members: Vec<u32> = Vec::with_capacity(lifetimes.len());
    let mut offsets: Vec<u32> = Vec::with_capacity(nq + 1);
    offsets.push(0);
    for q in 0..nq {
        members.extend_from_slice(
            &scratch.member_idx[q * stride..q * stride + scratch.counts[q] as usize],
        );
        offsets.push(members.len() as u32);
    }
    let queue_depths = (0..nq)
        .map(|q| {
            let m = &members[offsets[q] as usize..offsets[q + 1] as usize];
            max_live_indexed(lifetimes, m, ii, &mut scratch.diff)
        })
        .collect();

    QueueAllocation { ii, members, offsets, queue_depths }
}

/// Number of queues required by a loop, as reported in Fig. 3: the size of the
/// allocation produced by [`allocate_queues`].
pub fn queues_required(lifetimes: &[Lifetime], ii: u32) -> usize {
    allocate_queues(lifetimes, ii).num_queues()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::use_lifetimes;
    use crate::qcompat::q_compatible;
    use proptest::prelude::*;
    use vliw_ddg::{kernels, LatencyModel, OpId};
    use vliw_machine::Machine;
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn lt(start: u32, end: u32) -> Lifetime {
        Lifetime { producer: OpId(0), consumer: OpId(1), start: start.into(), end: end.into() }
    }

    #[test]
    fn disjoint_compatible_lifetimes_share_one_queue() {
        // Same length, consecutive phases: all pairwise compatible at II 4.
        let lts = vec![lt(0, 2), lt(1, 3), lt(2, 4), lt(3, 5)];
        let alloc = allocate_queues(&lts, 4);
        assert_eq!(alloc.num_queues(), 1);
        assert_eq!(alloc.queue(0).len(), 4);
        assert!(alloc.max_queue_depth() >= 2);
    }

    #[test]
    fn colliding_lifetimes_need_separate_queues() {
        // Identical phases collide pairwise: one queue each.
        let lts = vec![lt(0, 2), lt(4, 6), lt(8, 10)];
        let alloc = allocate_queues(&lts, 4);
        assert_eq!(alloc.num_queues(), 3);
        assert!(alloc.queue_depths.iter().all(|&d| d == 1));
    }

    #[test]
    fn allocation_is_pairwise_compatible_within_each_queue() {
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let m = Machine::single_cluster(6, 2, 32, LatencyModel::default());
        let s = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap().schedule;
        let lts = use_lifetimes(&l.ddg, &s);
        let alloc = allocate_queues(&lts, s.ii);
        for q in alloc.queues() {
            for (ai, &a) in q.iter().enumerate() {
                for &b in &q[ai + 1..] {
                    assert!(
                        q_compatible(&lts[a as usize], &lts[b as usize], s.ii),
                        "queue contains an incompatible pair"
                    );
                }
            }
        }
        // Every lifetime is allocated exactly once.
        let mut seen: Vec<usize> = alloc.queues().flatten().map(|&i| i as usize).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..lts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn queues_required_matches_allocation() {
        let lts = vec![lt(0, 3), lt(1, 4), lt(4, 7), lt(2, 9)];
        assert_eq!(queues_required(&lts, 4), allocate_queues(&lts, 4).num_queues());
    }

    #[test]
    fn fits_checks_both_dimensions() {
        let lts = vec![lt(0, 9), lt(1, 8)];
        let alloc = allocate_queues(&lts, 2);
        assert!(alloc.fits(32, 8));
        assert!(!alloc.fits(0, 8));
        assert!(!alloc.fits(32, 1));
    }

    #[test]
    fn empty_input_allocates_nothing() {
        let alloc = allocate_queues(&[], 3);
        assert_eq!(alloc.num_queues(), 0);
        assert_eq!(alloc.max_queue_depth(), 0);
        assert!(alloc.fits(0, 0));
    }

    /// The historical pairwise first-fit allocator, kept verbatim as the
    /// executable specification the bitset path must match queue-for-queue.
    fn allocate_queues_pairwise(lifetimes: &[Lifetime], ii: u32) -> QueueAllocation {
        let mut order: Vec<usize> = (0..lifetimes.len()).collect();
        order.sort_unstable_by_key(|&i| (lifetimes[i].start, lifetimes[i].end, i));
        let mut queues: Vec<Vec<usize>> = Vec::new();
        for &i in &order {
            let lt = &lifetimes[i];
            let mut placed = false;
            for q in queues.iter_mut() {
                if q.iter().all(|&j| q_compatible(lt, &lifetimes[j], ii)) {
                    q.push(i);
                    placed = true;
                    break;
                }
            }
            if !placed {
                queues.push(vec![i]);
            }
        }
        let queue_depths = queues
            .iter()
            .map(|q| {
                let members: Vec<Lifetime> = q.iter().map(|&j| lifetimes[j].clone()).collect();
                crate::lifetime::max_live(&members, ii)
            })
            .collect();
        let mut members: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        for q in &queues {
            members.extend(q.iter().map(|&j| j as u32));
            offsets.push(members.len() as u32);
        }
        QueueAllocation { ii, members, offsets, queue_depths }
    }

    #[test]
    fn scratch_reuse_does_not_change_the_allocation() {
        // One scratch across differently-sized inputs and IIs (including an II
        // needing two mask words after an II needing one) must behave exactly
        // like fresh scratch every time.
        let mut scratch = AllocScratch::default();
        let sets: Vec<Vec<Lifetime>> = vec![
            vec![lt(0, 2), lt(1, 3), lt(2, 4), lt(3, 5)],
            vec![lt(0, 200), lt(70, 90), lt(130, 135)],
            vec![],
            vec![lt(5, 9)],
        ];
        for lts in &sets {
            for ii in [1u32, 4, 7, 64, 100] {
                let reused = allocate_queues_with(lts, ii, &mut scratch);
                let fresh = allocate_queues_with(lts, ii, &mut AllocScratch::default());
                assert_eq!(reused, fresh, "ii {ii}");
                assert_eq!(reused, allocate_queues_pairwise(lts, ii), "ii {ii}");
            }
        }
    }

    proptest! {
        /// The bitset-accelerated first-fit produces the exact allocation of the
        /// pairwise path — same queues, same member order, same depths — on
        /// arbitrary lifetime sets.
        #[test]
        fn bitset_first_fit_matches_pairwise_path(
            raw in proptest::collection::vec((0u32..40, 0u32..30), 0..40),
            ii in 1u32..12,
        ) {
            let lts: Vec<Lifetime> = raw.iter().map(|&(s, l)| lt(s, s + l)).collect();
            prop_assert_eq!(allocate_queues(&lts, ii), allocate_queues_pairwise(&lts, ii));
        }

        /// Same equivalence with II > 64 (multi-word masks, wrapping intervals)
        /// and u64 endpoints from `start + II·distance` far beyond u32.
        #[test]
        fn bitset_first_fit_matches_pairwise_path_multiword(
            raw in proptest::collection::vec((0u64..1_000, 0u64..600), 0..24),
            ii in 65u32..200,
            distance in 0u64..3,
        ) {
            let lts: Vec<Lifetime> = raw
                .iter()
                .map(|&(s, l)| {
                    let start = s + (u64::from(u32::MAX) + 1) * distance;
                    Lifetime {
                        producer: OpId(0),
                        consumer: OpId(1),
                        start,
                        end: start + l + u64::from(ii) * distance,
                    }
                })
                .collect();
            prop_assert_eq!(allocate_queues(&lts, ii), allocate_queues_pairwise(&lts, ii));
        }

        /// The allocator never produces a queue containing an incompatible pair, and
        /// never loses or duplicates a lifetime.
        #[test]
        fn allocation_invariants(
            raw in proptest::collection::vec((0u32..12, 1u32..10), 1..24),
            ii in 1u32..8,
        ) {
            let lts: Vec<Lifetime> = raw
                .iter()
                .map(|&(s, l)| lt(s, s + l))
                .collect();
            let alloc = allocate_queues(&lts, ii);
            let mut seen: Vec<usize> =
                alloc.queues().flatten().map(|&i| i as usize).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..lts.len()).collect::<Vec<_>>());
            for q in alloc.queues() {
                for (ai, &a) in q.iter().enumerate() {
                    for &b in &q[ai + 1..] {
                        prop_assert!(q_compatible(&lts[a as usize], &lts[b as usize], ii));
                    }
                }
            }
            // Queue depths are consistent with the members assigned to each queue.
            prop_assert_eq!(alloc.queue_depths.len(), alloc.num_queues());
        }
    }
}
