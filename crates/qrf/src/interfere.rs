//! Bitset interference signatures for queue allocation.
//!
//! The first-fit allocator tests a candidate lifetime against every member of
//! every open queue.  Most of those tests fail or succeed for a coarse reason:
//! the two lifetimes never touch the same modulo slot at all.  This module
//! precomputes, per lifetime, a `u64`-word **occupancy mask** over the II ring —
//! bit `r` is set iff some steady-state instance of the lifetime is resident
//! during modulo slot `r` — plus the reduced phase/length signature the
//! division-free Q-compatibility test consumes.
//!
//! Two facts make the masks sound as a filter:
//!
//! * **Disjoint occupancy ⟹ Q-compatible.**  An incompatibility is always
//!   witnessed by a write/read collision or an order flip between two instances,
//!   and either witness requires the two lifetimes to be simultaneously resident
//!   in some modulo slot.  So a queue can keep one running interference *row*
//!   (the OR of its members' masks): a candidate whose mask is disjoint from the
//!   row is compatible with **every** member — one word-AND per word instead of
//!   a pairwise scan.
//! * The converse does **not** hold (overlapping lifetimes are often still
//!   compatible — that is the whole point of a queue), so on overlap the
//!   allocator falls back to the exact reduced test per member, skipping members
//!   whose individual masks are disjoint from the candidate's.
//!
//! The result is exactly the same allocation as the pairwise path — the masks
//! only ever *skip* tests whose outcome is forced — at O(n·queues·words) for the
//! common case.

use crate::lifetime::Lifetime;

/// Number of `u64` words needed for one occupancy mask at initiation interval `ii`.
#[inline]
pub fn words_for(ii: u32) -> usize {
    (ii as usize).div_ceil(64)
}

/// Sets bits `[lo, hi)` of a little-endian multi-word mask.
#[inline]
fn set_bit_range(mask: &mut [u64], lo: usize, hi: usize) {
    debug_assert!(lo <= hi && hi <= mask.len() * 64);
    if lo == hi {
        return;
    }
    let (lw, lb) = (lo / 64, lo % 64);
    let (hw, hb) = ((hi - 1) / 64, (hi - 1) % 64);
    // All-ones from bit `lb` upward, and from bit `hb` downward.
    let head = !0u64 << lb;
    let tail = !0u64 >> (63 - hb);
    if lw == hw {
        mask[lw] |= head & tail;
    } else {
        mask[lw] |= head;
        for w in &mut mask[lw + 1..hw] {
            *w = !0;
        }
        mask[hw] |= tail;
    }
}

/// Writes the occupancy mask of a lifetime with phase `phase = start mod ii` and
/// length `len = end − start` into `mask` (which must be zeroed, `words_for(ii)`
/// long): the residues of the closed interval `[start, end]`, i.e. `len + 1`
/// consecutive ring slots starting at `phase`, saturating at the full ring.
pub fn fill_occupancy(mask: &mut [u64], phase: u32, len: u64, ii: u32) {
    debug_assert!(phase < ii);
    debug_assert!(mask.iter().all(|&w| w == 0));
    let slots = (len + 1).min(u64::from(ii)) as usize;
    let (phase, ii) = (phase as usize, ii as usize);
    if phase + slots <= ii {
        set_bit_range(mask, phase, phase + slots);
    } else {
        set_bit_range(mask, phase, ii);
        set_bit_range(mask, 0, phase + slots - ii);
    }
}

/// True if two masks of equal width share no set bit.
#[inline]
pub fn masks_disjoint(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(&x, &y)| x & y == 0)
}

/// The precomputed interference signatures of one lifetime set at one II:
/// per-lifetime phase, length and occupancy mask, in input order.
///
/// The buffers are reusable: [`InterferenceSigs::build_into`] clears and refills
/// them, so a per-worker instance makes signature extraction allocation-free
/// after warm-up.
#[derive(Debug, Default, Clone)]
pub struct InterferenceSigs {
    words: usize,
    phases: Vec<u32>,
    lens: Vec<u64>,
    masks: Vec<u64>,
}

impl InterferenceSigs {
    /// Builds the signatures of `lifetimes` at `ii` into a fresh instance.
    pub fn build(lifetimes: &[Lifetime], ii: u32) -> Self {
        let mut sigs = InterferenceSigs::default();
        sigs.build_into(lifetimes, ii);
        sigs
    }

    /// Clears the buffers and refills them with the signatures of `lifetimes`.
    pub fn build_into(&mut self, lifetimes: &[Lifetime], ii: u32) {
        assert!(ii >= 1);
        let words = words_for(ii);
        self.words = words;
        self.phases.clear();
        self.lens.clear();
        self.masks.clear();
        self.masks.resize(lifetimes.len() * words, 0);
        for (i, lt) in lifetimes.iter().enumerate() {
            let phase = (lt.start % u64::from(ii)) as u32;
            let len = lt.length();
            self.phases.push(phase);
            self.lens.push(len);
            fill_occupancy(&mut self.masks[i * words..(i + 1) * words], phase, len, ii);
        }
    }

    /// Words per mask at the II the signatures were built for.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// `start mod ii` of lifetime `i`.
    #[inline]
    pub fn phase(&self, i: usize) -> u32 {
        self.phases[i]
    }

    /// `end − start` of lifetime `i`.
    #[inline]
    pub fn len(&self, i: usize) -> u64 {
        self.lens[i]
    }

    /// Number of signatures held.
    #[inline]
    pub fn num_lifetimes(&self) -> usize {
        self.phases.len()
    }

    /// True if no signatures are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The occupancy mask of lifetime `i`.
    #[inline]
    pub fn mask(&self, i: usize) -> &[u64] {
        &self.masks[i * self.words..(i + 1) * self.words]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qcompat::q_compatible;
    use proptest::prelude::*;
    use vliw_ddg::OpId;

    fn lt(start: u64, end: u64) -> Lifetime {
        Lifetime { producer: OpId(0), consumer: OpId(1), start, end }
    }

    fn naive_occupancy(lt: &Lifetime, ii: u32) -> Vec<bool> {
        let mut occ = vec![false; ii as usize];
        // A lifetime is resident during every cycle of [start, end]; project the
        // closed interval onto the ring (saturating at the full ring).
        for t in lt.start..=lt.end.min(lt.start + u64::from(ii)) {
            occ[(t % u64::from(ii)) as usize] = true;
        }
        occ
    }

    #[test]
    fn occupancy_covers_the_closed_interval() {
        let sigs = InterferenceSigs::build(&[lt(1, 3)], 6);
        assert_eq!(sigs.mask(0), &[0b001110]);
        // Wrapping interval: [5, 8] at II 6 covers residues {5, 0, 1, 2}.
        let sigs = InterferenceSigs::build(&[lt(5, 8)], 6);
        assert_eq!(sigs.mask(0), &[0b100111]);
        // A lifetime spanning >= II occupies the whole ring.
        let sigs = InterferenceSigs::build(&[lt(2, 100)], 6);
        assert_eq!(sigs.mask(0), &[0b111111]);
    }

    #[test]
    fn multi_word_masks_wrap_across_word_boundaries() {
        // II = 130 needs three words; an interval straddling bit 64 and the
        // ring boundary must set bits in all the right words.
        let ii = 130u32;
        let sigs = InterferenceSigs::build(&[lt(60, 70), lt(125, 135)], ii);
        for (i, l) in [lt(60, 70), lt(125, 135)].iter().enumerate() {
            let naive = naive_occupancy(l, ii);
            for (r, &expected) in naive.iter().enumerate() {
                let got = sigs.mask(i)[r / 64] >> (r % 64) & 1 == 1;
                assert_eq!(got, expected, "lifetime {i} residue {r}");
            }
        }
    }

    proptest! {
        /// The range-filling mask matches per-cycle naive occupancy, including
        /// multi-word IIs and lifetimes longer than the ring.
        #[test]
        fn mask_matches_naive_occupancy(
            s in 0u64..500,
            l in 0u64..400,
            ii in 1u32..200,
        ) {
            let lifetime = lt(s, s + l);
            let sigs = InterferenceSigs::build(std::slice::from_ref(&lifetime), ii);
            let naive = naive_occupancy(&lifetime, ii);
            for (r, &expected) in naive.iter().enumerate() {
                let got = sigs.mask(0)[r / 64] >> (r % 64) & 1 == 1;
                prop_assert_eq!(got, expected, "residue {}", r);
            }
        }

        /// Soundness of the filter: disjoint occupancy implies Q-compatibility,
        /// so the row-AND fast path can never accept an incompatible pair.
        #[test]
        fn disjoint_masks_imply_compatibility(
            sa in 0u64..300, la in 0u64..250,
            sb in 0u64..300, lb in 0u64..250,
            ii in 1u32..150,
        ) {
            let a = lt(sa, sa + la);
            let b = lt(sb, sb + lb);
            let sigs = InterferenceSigs::build(&[a.clone(), b.clone()], ii);
            if masks_disjoint(sigs.mask(0), sigs.mask(1)) {
                prop_assert!(q_compatible(&a, &b, ii));
            }
        }
    }
}
