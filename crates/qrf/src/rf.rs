//! Conventional (random-access) register file baseline.
//!
//! On a conventional register file a value is written once, read any number of
//! times, and the register is freed after the last read.  The steady-state register
//! requirement of a modulo-scheduled loop is the classic *MaxLive* bound: the maximum
//! number of simultaneously live values over the II modulo slots.  The paper compares
//! its queue organisation against this baseline (register allocators "for both
//! conventional and queue register files").

use vliw_ddg::Ddg;
use vliw_sched::Schedule;

use crate::lifetime::{max_live, value_lifetimes};

/// Steady-state register requirement of `schedule` on a conventional register file.
pub fn conventional_registers_required(ddg: &Ddg, schedule: &Schedule) -> usize {
    let lts = value_lifetimes(ddg, schedule);
    max_live(&lts, schedule.ii)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::use_lifetimes;
    use vliw_ddg::{kernels, DdgBuilder, LatencyModel, OpKind};
    use vliw_machine::Machine;
    use vliw_sched::{modulo_schedule, ImsOptions};

    #[test]
    fn register_requirement_is_positive_for_real_kernels() {
        let m = Machine::single_cluster(6, 2, 32, LatencyModel::default());
        for l in kernels::all_kernels(LatencyModel::default()) {
            let s = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap().schedule;
            let regs = conventional_registers_required(&l.ddg, &s);
            assert!(regs >= 1, "{} should need at least one register", l.name);
            assert!(regs <= 64, "{} needs an implausible number of registers", l.name);
        }
    }

    #[test]
    fn conventional_rf_needs_no_more_than_per_use_storage() {
        // A value consumed k times occupies one register but k queue lifetimes, so
        // MaxLive over value lifetimes is never larger than over use lifetimes.
        let m = Machine::single_cluster(12, 4, 32, LatencyModel::default());
        for l in kernels::all_kernels(LatencyModel::default()) {
            let s = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap().schedule;
            let by_value = conventional_registers_required(&l.ddg, &s);
            let by_use = max_live(&use_lifetimes(&l.ddg, &s), s.ii);
            assert!(by_value <= by_use, "{}", l.name);
        }
    }

    #[test]
    fn single_producer_single_consumer_needs_lifetime_over_ii_registers() {
        // A load feeding an add 2 cycles later at II 1 keeps ceil(2/1)=2 values live.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let add = b.op(OpKind::Add);
        b.flow(ld, add);
        let g = b.finish();
        let m = Machine::single_cluster(6, 1, 32, LatencyModel::default());
        let s = modulo_schedule(&g, &m, ImsOptions::default()).unwrap().schedule;
        let regs = conventional_registers_required(&g, &s);
        let expected = (s.start_of(add) - s.start_of(ld)).div_ceil(s.ii).max(1) as usize;
        assert_eq!(regs, expected);
    }
}
