//! Copy-operation insertion (Section 2 of the paper).
//!
//! A queue read is destructive, so a value consumed by `k > 1` operations cannot be
//! served by a single queue write: the paper introduces a dedicated **copy**
//! functional unit able to read one value from a queue and write it to two other
//! queues (Fig. 2).  This pass rewrites the dependence graph so that every produced
//! value has at most one consumer:
//!
//! * a value with `k ≥ 2` consumers gets a chain of `k − 1` copy operations;
//! * the producer feeds the first copy, each copy feeds one original consumer plus
//!   the next copy, and the last copy feeds the final two consumers;
//! * the original edges' iteration distances are preserved on the edge that reaches
//!   each original consumer.
//!
//! The transformed graph is then scheduled again; the experiments of Section 2
//! measure how often the extra operations force a larger II or stage count.

use vliw_ddg::{Ddg, DepKind, LatencyModel, OpId, OpKind};

/// Result of the copy-insertion pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyInsertion {
    /// The rewritten graph.  Original operations keep their ids; copy operations are
    /// appended after them.
    pub ddg: Ddg,
    /// Ids of the inserted copy operations.
    pub copy_ops: Vec<OpId>,
}

impl CopyInsertion {
    /// Number of copy operations inserted.
    pub fn num_copies(&self) -> usize {
        self.copy_ops.len()
    }
}

/// Rewrites `ddg` so that no value has more than one consumer, inserting copy
/// operations executed on the copy functional unit.
///
/// `latencies` provides the latency of the inserted copy operations (and of the
/// producer edges re-routed through them).
pub fn insert_copies(ddg: &Ddg, latencies: &LatencyModel) -> CopyInsertion {
    let mut out = Ddg::with_capacity(ddg.num_ops());
    // Re-create the original operations so ids are preserved.
    for op in ddg.ops() {
        let id = out.add_op(op.kind);
        debug_assert_eq!(id, op.id);
    }
    // Non-flow edges are copied verbatim.
    for e in ddg.edges() {
        if e.kind != DepKind::Flow {
            out.add_edge(e.src, e.dst, e.kind, e.latency, e.distance);
        }
    }

    let copy_latency = latencies.of(OpKind::Copy);
    let mut copy_ops = Vec::new();
    let mut consumers: Vec<(OpId, u32, u32)> = Vec::new();

    for producer in ddg.op_ids() {
        consumers.clear();
        consumers.extend(ddg.flow_consumers(producer).map(|e| (e.dst, e.latency, e.distance)));
        // Serve loop-carried consumers first so that recurrence circuits go through
        // as few copies as possible (one), minimising the impact on RecMII; the
        // remaining order keeps the original edge order and is therefore
        // deterministic.
        consumers.sort_by_key(|&(_, _, dist)| std::cmp::Reverse(dist.min(1)));
        match consumers.len() {
            0 => {}
            1 => {
                let (dst, lat, dist) = consumers[0];
                out.add_edge(producer, dst, DepKind::Flow, lat, dist);
            }
            k => {
                // Chain of k-1 copies.  The producer feeds the first copy; copy i
                // feeds consumer i and copy i+1; the last copy feeds the last two
                // consumers.
                let producer_latency = consumers[0].1;
                let mut prev = producer;
                let mut prev_latency = producer_latency;
                for &(dst, _lat, dist) in consumers.iter().take(k - 1) {
                    let copy = out.add_op(OpKind::Copy);
                    copy_ops.push(copy);
                    out.add_edge(prev, copy, DepKind::Flow, prev_latency, 0);
                    // The copy serves the consumer at this chain position.
                    out.add_edge(copy, dst, DepKind::Flow, copy_latency, dist);
                    prev = copy;
                    prev_latency = copy_latency;
                }
                // The last copy also serves the final consumer.
                let (dst, _lat, dist) = consumers[k - 1];
                out.add_edge(prev, dst, DepKind::Flow, copy_latency, dist);
            }
        }
    }

    debug_assert!(out.validate().is_ok(), "copy insertion produced an invalid graph");
    CopyInsertion { ddg: out, copy_ops }
}

/// Number of copy operations that `ddg` would need (without building the rewritten
/// graph): the sum over produced values of `max(fanout − 1, 0)`.
pub fn copies_needed(ddg: &Ddg) -> usize {
    ddg.op_ids().map(|op| ddg.fanout(op).saturating_sub(1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder};

    #[test]
    fn single_consumer_values_are_untouched() {
        let l = kernels::dot_product(LatencyModel::default(), 100);
        let before_fanout = l.ddg.max_fanout();
        let ins = insert_copies(&l.ddg, &LatencyModel::default());
        if before_fanout <= 1 {
            assert_eq!(ins.num_copies(), 0);
            assert_eq!(ins.ddg.num_ops(), l.ddg.num_ops());
        }
        assert!(ins.ddg.validate().is_ok());
    }

    #[test]
    fn fanout_is_eliminated() {
        for l in kernels::all_kernels(LatencyModel::default()) {
            let ins = insert_copies(&l.ddg, &LatencyModel::default());
            for op in ins.ddg.ops() {
                let limit = if op.kind == OpKind::Copy { 2 } else { 1 };
                assert!(
                    ins.ddg.fanout(op.id) <= limit,
                    "{}: {} exceeds its write-port budget after copy insertion",
                    l.name,
                    op.id
                );
            }
            assert!(ins.ddg.validate().is_ok());
        }
    }

    #[test]
    fn number_of_copies_matches_formula() {
        for l in kernels::all_kernels(LatencyModel::default()) {
            let ins = insert_copies(&l.ddg, &LatencyModel::default());
            assert_eq!(ins.num_copies(), copies_needed(&l.ddg), "{}", l.name);
            assert_eq!(ins.ddg.num_ops(), l.ddg.num_ops() + ins.num_copies());
        }
    }

    #[test]
    fn copy_ops_are_copy_kind_and_appended() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let p = b.op(OpKind::Load);
        let c1 = b.op(OpKind::Add);
        let c2 = b.op(OpKind::Mul);
        let c3 = b.op(OpKind::Add);
        b.flow(p, c1);
        b.flow(p, c2);
        b.flow(p, c3);
        let g = b.finish();
        let ins = insert_copies(&g, &LatencyModel::default());
        assert_eq!(ins.num_copies(), 2);
        for &c in &ins.copy_ops {
            assert_eq!(ins.ddg.op(c).kind, OpKind::Copy);
            assert!(c.index() >= g.num_ops());
            // Each copy writes to exactly two queues (two flow consumers).
            assert_eq!(ins.ddg.fanout(c), 2);
        }
        // The producer now has exactly one consumer (the first copy).
        assert_eq!(ins.ddg.fanout(p), 1);
        // Original consumers each still receive exactly one value.
        for c in [c1, c2, c3] {
            assert_eq!(ins.ddg.pred_edges(c).filter(|e| e.kind == DepKind::Flow).count(), 1);
        }
    }

    #[test]
    fn distances_are_preserved_on_consumer_edges() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let p = b.op(OpKind::Add);
        let same_iter = b.op(OpKind::Mul);
        let next_iter = b.op(OpKind::Sub);
        b.flow(p, same_iter);
        b.flow_carried(p, next_iter, 2);
        let g = b.finish();
        let ins = insert_copies(&g, &LatencyModel::default());
        // Find the flow edge reaching `next_iter`; its distance must still be 2.
        let e = ins.ddg.pred_edges(next_iter).find(|e| e.kind == DepKind::Flow).unwrap();
        assert_eq!(e.distance, 2);
        let e_same = ins.ddg.pred_edges(same_iter).find(|e| e.kind == DepKind::Flow).unwrap();
        assert_eq!(e_same.distance, 0);
    }

    #[test]
    fn duplicate_reads_by_the_same_consumer_need_a_copy() {
        // c reads the value twice (e.g. x*x): two destructive queue reads, so a copy
        // is required even though there is only one consuming operation.
        let mut b = DdgBuilder::new(LatencyModel::default());
        let p = b.op(OpKind::Load);
        let sq = b.op(OpKind::Mul);
        b.flow(p, sq);
        b.flow(p, sq);
        let g = b.finish();
        assert_eq!(copies_needed(&g), 1);
        let ins = insert_copies(&g, &LatencyModel::default());
        assert_eq!(ins.num_copies(), 1);
        assert_eq!(ins.ddg.pred_edges(sq).filter(|e| e.kind == DepKind::Flow).count(), 2);
    }

    #[test]
    fn non_flow_edges_survive_the_rewrite() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let st = b.op(OpKind::Store);
        let ld = b.op(OpKind::Load);
        let a = b.op(OpKind::Add);
        let c = b.op(OpKind::Mul);
        b.memory(st, ld, 1);
        b.flow(ld, a);
        b.flow(ld, c);
        let g = b.finish();
        let ins = insert_copies(&g, &LatencyModel::default());
        assert!(ins
            .ddg
            .edges()
            .any(|e| e.kind == DepKind::Memory && e.src == st && e.dst == ld && e.distance == 1));
    }
}
