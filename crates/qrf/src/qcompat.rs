//! The Q-Compatibility test (Theorem 1.1 of the paper).
//!
//! In a queue register file a value is written at the tail of a queue and read,
//! destructively, from its head.  Two lifetimes can share one queue only if, across
//! all loop iterations, the order in which their values are written matches exactly
//! the order in which they are read (FIFO discipline), and no two writes or two reads
//! ever collide in the same cycle.
//!
//! # Closed form
//!
//! Consider per-use lifetimes `a` and `b` with start (write) cycles `S_a`, `S_b` and
//! end (read) cycles `E_a`, `E_b` in the flat schedule; iteration `k` shifts both
//! events by `k · II`.  For instance `k` of `a` and instance `m` of `b`, with
//! `d = m − k`:
//!
//! * the writes are ordered `a` first iff `d·II − (S_a − S_b) > 0`;
//! * the reads are ordered `a` first iff `d·II − (E_a − E_b) > 0`.
//!
//! FIFO order holds for every instance pair iff **no integer multiple of II lies in
//! the closed interval** `[min(S_a−S_b, E_a−E_b), max(S_a−S_b, E_a−E_b)]`: a multiple
//! strictly inside flips the order of reads relative to writes, a multiple at either
//! endpoint makes two writes or two reads collide.  With the paper's convention
//! (`L = E − S`, `L_a ≥ L_b`) this is exactly Theorem 1.1's condition that the
//! difference in lifetime lengths must fit in the production-offset window
//! `(S_b − S_a) mod II`.
//!
//! # Division-free form
//!
//! The interval test above costs two `i128` euclidean divisions per pair, and the
//! queue allocator calls it O(n²) times per loop.  Reducing both endpoints modulo
//! II turns it into two comparisons: with `d = (S_b − S_a) mod II` (the phase
//! distance from `a`'s write to `b`'s write) and the lengths `L = E − S`,
//!
//! * `L_a ≥ L_b`: a multiple of II lies in the closed interval iff `d ≤ L_a − L_b`;
//! * `L_b > L_a`: iff `d = 0` or `II − d ≤ L_b − L_a`.
//!
//! (Shifting the interval `[min(dw,dr), max(dw,dr)]` by `a`'s phase shows its
//! width is exactly `|L_a − L_b|` and its position modulo II is `d`-determined;
//! both branches are the two directions the interval can straddle a multiple.)
//! [`q_compatible`] uses this form; the original interval test is kept as
//! [`q_compatible_interval`] and the two are property-tested against each other
//! and against the FIFO oracle, including `u64` endpoints near `start + II·distance`
//! overflow of `u32`.
//!
//! The closed form is verified against a brute-force FIFO simulation oracle
//! ([`fifo_compatible`]) by unit and property tests.

use crate::lifetime::Lifetime;

/// True if some integer multiple of `ii` lies in the closed interval `[lo, hi]`.
///
/// `i128` because lifetime endpoints are `u64` (loop-carried ends can exceed
/// `u32`), so their differences do not fit `i64` in the extreme.
fn multiple_in_closed_range(lo: i128, hi: i128, ii: i128) -> bool {
    debug_assert!(lo <= hi && ii >= 1);
    // Smallest multiple >= lo is ceil(lo / ii) * ii.
    let first = lo.div_euclid(ii) * ii + if lo.rem_euclid(ii) == 0 { 0 } else { ii };
    first <= hi
}

/// The Q-Compatibility test on the reduced coordinates the allocator caches:
/// phases `p = start mod II` and lengths `l = end − start`.
///
/// This is the division-free form of Theorem 1.1 (see the module docs); it is
/// the hot path of [`crate::alloc::allocate_queues`], which precomputes the
/// phase and length of every lifetime once instead of re-dividing per pair.
#[inline]
pub fn q_compatible_reduced(pa: u32, la: u64, pb: u32, lb: u64, ii: u32) -> bool {
    debug_assert!(ii >= 1 && pa < ii && pb < ii);
    let d = if pb >= pa { pb - pa } else { pb + ii - pa };
    if la >= lb {
        u64::from(d) > la - lb
    } else {
        d != 0 && u64::from(ii - d) > lb - la
    }
}

/// The Q-Compatibility test: can lifetimes `a` and `b` share a queue at initiation
/// interval `ii`?
///
/// This is the closed-form test of Theorem 1.1 (see the module documentation for the
/// derivation).  The relation is symmetric but **not** transitive, so a set of
/// lifetimes may share a queue only if every pair in the set is compatible.
pub fn q_compatible(a: &Lifetime, b: &Lifetime, ii: u32) -> bool {
    let pa = (a.start % u64::from(ii)) as u32;
    let pb = (b.start % u64::from(ii)) as u32;
    q_compatible_reduced(pa, a.length(), pb, b.length(), ii)
}

/// The original interval formulation of Theorem 1.1: no integer multiple of `ii`
/// in the closed interval `[min(dw, dr), max(dw, dr)]`.
///
/// Kept as the executable reference the division-free [`q_compatible`] is
/// property-tested against.
pub fn q_compatible_interval(a: &Lifetime, b: &Lifetime, ii: u32) -> bool {
    let ii = i128::from(ii);
    let dw = i128::from(a.start) - i128::from(b.start);
    let dr = i128::from(a.end) - i128::from(b.end);
    let (lo, hi) = (dw.min(dr), dw.max(dr));
    !multiple_in_closed_range(lo, hi, ii)
}

/// Brute-force FIFO oracle: simulates a single queue shared by `a` and `b` over
/// enough iterations to cover every distinct interleaving and checks that every read
/// pops the value it expects.
///
/// This is exponential in nothing but is much slower than [`q_compatible`]; it exists
/// to validate the closed form (property tests) and as an executable specification.
pub fn fifo_compatible(a: &Lifetime, b: &Lifetime, ii: u32) -> bool {
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Event {
        time: u64,
        /// 0 = read, 1 = write (reads processed first at a tie: a read always refers
        /// to a value written at least one cycle earlier).
        kind: u8,
        /// Which lifetime family (0 = a, 1 = b) and which iteration instance.
        family: u8,
        instance: u32,
    }

    let ii_i = u64::from(ii);
    let max_len = a.length().max(b.length());
    let start_offset = a.start.abs_diff(b.start);
    // Enough iterations that every relative alignment that can possibly interact is
    // exercised at least once (the families only meet after the start offset has
    // been crossed, and keep interacting over the longer lifetime).  The oracle
    // materialises four events per iteration, so it is only tractable — and its
    // iteration count only representable — for lifetimes spanning a modest number
    // of IIs; refuse loudly rather than wrap the count and return a wrong verdict
    // (the widened closed form handles the extreme regime, see `q_compatible`).
    let iterations = (max_len + start_offset) / ii_i + 4;
    assert!(
        iterations <= 1 << 24,
        "fifo_compatible is a brute-force oracle for lifetimes spanning few IIs \
         ({iterations} iterations would be needed); use q_compatible instead"
    );
    let iterations = iterations as u32;

    let mut events = Vec::with_capacity(iterations as usize * 4);
    for k in 0..iterations {
        let off = u64::from(k) * ii_i;
        events.push(Event { time: a.start + off, kind: 1, family: 0, instance: k });
        events.push(Event { time: a.end + off, kind: 0, family: 0, instance: k });
        events.push(Event { time: b.start + off, kind: 1, family: 1, instance: k });
        events.push(Event { time: b.end + off, kind: 0, family: 1, instance: k });
    }
    events.sort_by_key(|e| (e.time, e.kind, e.family, e.instance));

    // Reject simultaneous writes or simultaneous reads outright (a queue has one
    // write port and one read port).
    for w in events.windows(2) {
        if w[0].time == w[1].time && w[0].kind == w[1].kind {
            return false;
        }
    }

    let mut queue: std::collections::VecDeque<(u8, u32)> = std::collections::VecDeque::new();
    for e in &events {
        if e.kind == 1 {
            queue.push_back((e.family, e.instance));
        } else {
            match queue.pop_front() {
                Some(front) if front == (e.family, e.instance) => {}
                // Popping the wrong value (or an empty queue, which only happens for
                // reads of instances whose writes fall outside the simulated window
                // and is treated as benign) breaks FIFO order.
                Some(_) => return false,
                None => {}
            }
        }
    }
    true
}

/// Compatibility of a lifetime with a whole group: true iff it is pairwise
/// Q-compatible with every member.
pub fn compatible_with_all(candidate: &Lifetime, group: &[Lifetime], ii: u32) -> bool {
    group.iter().all(|m| q_compatible(candidate, m, ii))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vliw_ddg::OpId;

    fn lt(start: u32, end: u32) -> Lifetime {
        Lifetime { producer: OpId(0), consumer: OpId(1), start: start.into(), end: end.into() }
    }

    #[test]
    fn identical_phases_are_incompatible() {
        // Same start slot -> writes collide.
        let a = lt(0, 3);
        let b = lt(4, 6); // start 4 ≡ 0 (mod 4)
        assert!(!q_compatible(&a, &b, 4));
        assert!(!fifo_compatible(&a, &b, 4));
    }

    #[test]
    fn same_length_different_phase_is_compatible() {
        let a = lt(0, 3);
        let b = lt(1, 4);
        assert!(q_compatible(&a, &b, 4));
        assert!(fifo_compatible(&a, &b, 4));
    }

    #[test]
    fn read_collision_is_incompatible() {
        // Reads at 5 and 9 collide modulo 4.
        let a = lt(0, 5);
        let b = lt(2, 9);
        assert!(!q_compatible(&a, &b, 4));
        assert!(!fifo_compatible(&a, &b, 4));
    }

    #[test]
    fn order_flip_is_incompatible() {
        // a written first but read after b (within the same iteration window).
        let a = lt(0, 7);
        let b = lt(1, 3);
        // With II = 10 there is no wrap-around to rescue the order: a write order is
        // a, b but read order is b, a -> incompatible.
        assert!(!q_compatible(&a, &b, 10));
        assert!(!fifo_compatible(&a, &b, 10));
    }

    #[test]
    fn long_lifetime_with_matching_order_is_compatible() {
        // a: write 0 read 5; b: write 2 read 6 at II 4.
        // Differences: dw = -2, dr = -1; no multiple of 4 in [-2, -1].
        let a = lt(0, 5);
        let b = lt(2, 6);
        assert!(q_compatible(&a, &b, 4));
        assert!(fifo_compatible(&a, &b, 4));
    }

    #[test]
    fn theorem_condition_la_minus_lb_vs_offset() {
        // Paper formulation: with La >= Lb, compatible iff La - Lb fits below the
        // production offset (Sb - Sa) mod II.
        let ii = 6;
        let a = lt(0, 9); // La = 9
        for sb in 1..6u32 {
            for lb in 1..=9u32 {
                let b = lt(sb, sb + lb);
                let la = 9i64;
                let offset = i64::from((sb as i64).rem_euclid(ii as i64) as u32);
                let dr = a.end as i64 - b.end as i64;
                let expected_by_theorem = if la - i64::from(lb) >= 0 {
                    la - i64::from(lb) < offset && dr.rem_euclid(ii as i64) != 0
                } else {
                    // Lb > La: swap roles.
                    i64::from(lb) - la < (ii as i64 - offset) && dr.rem_euclid(ii as i64) != 0
                };
                let got = q_compatible(&a, &b, ii);
                let oracle = fifo_compatible(&a, &b, ii);
                assert_eq!(got, oracle, "closed form vs oracle for Sb={sb} Lb={lb}");
                assert_eq!(
                    got, expected_by_theorem,
                    "theorem reformulation mismatch for Sb={sb} Lb={lb}"
                );
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        let cases = [
            (lt(0, 5), lt(2, 6), 4),
            (lt(0, 7), lt(1, 3), 10),
            (lt(3, 10), lt(5, 9), 5),
            (lt(0, 2), lt(1, 8), 3),
        ];
        for (a, b, ii) in cases {
            assert_eq!(q_compatible(&a, &b, ii), q_compatible(&b, &a, ii));
        }
    }

    #[test]
    fn group_compatibility_requires_all_pairs() {
        let ii = 5;
        let a = lt(0, 2);
        let b = lt(1, 3);
        let c = lt(2, 4);
        assert!(compatible_with_all(&c, &[a.clone(), b.clone()], ii));
        // A lifetime colliding with `a` is rejected even if compatible with `b`.
        let d = lt(5, 7); // start ≡ 0 ≡ a.start (mod 5)
        assert!(q_compatible(&d, &b, ii));
        assert!(!compatible_with_all(&d, &[a, b], ii));
    }

    #[test]
    fn multiple_in_closed_range_basics() {
        assert!(multiple_in_closed_range(0, 0, 4)); // 0 itself
        assert!(multiple_in_closed_range(-1, 1, 4));
        assert!(!multiple_in_closed_range(1, 3, 4));
        assert!(multiple_in_closed_range(1, 4, 4));
        assert!(multiple_in_closed_range(-9, -7, 4)); // -8
        assert!(!multiple_in_closed_range(-7, -5, 4));
    }

    #[test]
    fn division_free_form_matches_interval_form_exhaustively() {
        // Small exhaustive sweep: every (phase, length) pair against every other
        // at every II up to 9 — the full behaviour space of the reduced form.
        for ii in 1u32..=9 {
            for sa in 0..ii {
                for la in 0..3 * ii {
                    for sb in 0..2 * ii {
                        for lb in 0..3 * ii {
                            let a = lt(sa, sa + la);
                            let b = lt(sb, sb + lb);
                            assert_eq!(
                                q_compatible(&a, &b, ii),
                                q_compatible_interval(&a, &b, ii),
                                "ii={ii} a=({sa},{la}) b=({sb},{lb})"
                            );
                        }
                    }
                }
            }
        }
    }

    proptest! {
        /// The division-free reduced form agrees with the interval formulation
        /// on `u64` endpoints, including lifetimes whose ends come from
        /// `start + II·distance` and exceed `u32` (the widened domain).
        #[test]
        fn division_free_form_matches_interval_form_on_u64_endpoints(
            sa in 0u64..u64::from(u32::MAX),
            la in 0u64..(1u64 << 40),
            sb in 0u64..u64::from(u32::MAX),
            lb in 0u64..(1u64 << 40),
            ii in 1u32..100_000,
        ) {
            let a = Lifetime { producer: OpId(0), consumer: OpId(1), start: sa, end: sa + la };
            let b = Lifetime { producer: OpId(2), consumer: OpId(3), start: sb, end: sb + lb };
            prop_assert_eq!(q_compatible(&a, &b, ii), q_compatible_interval(&a, &b, ii));
        }

        /// The closed-form Theorem 1.1 test agrees with the brute-force FIFO
        /// simulation for arbitrary lifetime pairs and IIs.
        #[test]
        fn closed_form_matches_fifo_oracle(
            sa in 0u32..20,
            la in 1u32..25,
            sb in 0u32..20,
            lb in 1u32..25,
            ii in 1u32..12,
        ) {
            let a = lt(sa, sa + la);
            let b = lt(sb, sb + lb);
            prop_assert_eq!(q_compatible(&a, &b, ii), fifo_compatible(&a, &b, ii));
        }

        /// Compatibility is symmetric.
        #[test]
        fn closed_form_is_symmetric(
            sa in 0u32..30,
            la in 1u32..30,
            sb in 0u32..30,
            lb in 1u32..30,
            ii in 1u32..15,
        ) {
            let a = lt(sa, sa + la);
            let b = lt(sb, sb + lb);
            prop_assert_eq!(q_compatible(&a, &b, ii), q_compatible(&b, &a, ii));
        }

        /// A lifetime can always share a queue with a copy of itself shifted by a
        /// non-multiple of the II (classic "same shape, different phase" case).
        #[test]
        fn shifted_copy_is_compatible(
            sa in 0u32..20,
            la in 1u32..25,
            shift in 1u32..12,
            ii in 2u32..13,
        ) {
            prop_assume!(shift % ii != 0);
            let a = lt(sa, sa + la);
            let b = lt(sa + shift, sa + shift + la);
            prop_assert!(q_compatible(&a, &b, ii));
        }
    }
}
