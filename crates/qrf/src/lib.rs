//! Queue-register-file (QRF) register allocation for modulo-scheduled loops.
//!
//! This crate implements the storage-allocation side of the IPPS 1998 paper:
//!
//! * extraction of value **lifetimes** from a modulo schedule ([`lifetime`]);
//! * the **Q-Compatibility test** (Theorem 1.1) deciding when two lifetimes can share
//!   a hardware queue, plus a brute-force FIFO oracle used to validate it
//!   ([`qcompat`]);
//! * greedy **queue allocation** and queue-depth accounting ([`alloc`]);
//! * the **copy-insertion** pass that rewrites the dependence graph so every value
//!   has a single (destructive) reader ([`copyins`]);
//! * the conventional-register-file **MaxLive** baseline ([`rf`]).
//!
//! ```
//! use vliw_ddg::{kernels, LatencyModel};
//! use vliw_machine::Machine;
//! use vliw_sched::{modulo_schedule, ImsOptions};
//! use vliw_qrf::{insert_copies, use_lifetimes, allocate_queues};
//!
//! let lat = LatencyModel::default();
//! let lp = kernels::wide_parallel(lat, 100);
//! let machine = Machine::single_cluster(6, 2, 32, lat);
//!
//! // Rewrite multi-consumer values through copy operations, then schedule and
//! // allocate queues.
//! let rewritten = insert_copies(&lp.ddg, &lat);
//! let sched = modulo_schedule(&rewritten.ddg, &machine, ImsOptions::default()).unwrap();
//! let lts = use_lifetimes(&rewritten.ddg, &sched.schedule);
//! let queues = allocate_queues(&lts, sched.schedule.ii);
//! assert!(queues.num_queues() >= 1);
//! ```

pub mod alloc;
pub mod copyins;
pub mod interfere;
pub mod lifetime;
pub mod qcompat;
pub mod rf;

pub use alloc::{
    allocate_queues, allocate_queues_with, queues_required, AllocScratch, QueueAllocation,
};
pub use copyins::{copies_needed, insert_copies, CopyInsertion};
pub use interfere::InterferenceSigs;
pub use lifetime::{
    max_live, max_live_indexed, use_lifetimes, use_lifetimes_into, value_lifetimes, Lifetime,
};
pub use qcompat::{
    compatible_with_all, fifo_compatible, q_compatible, q_compatible_interval, q_compatible_reduced,
};
pub use rf::conventional_registers_required;

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::Machine;
    use vliw_sched::{modulo_schedule, ImsOptions};

    #[test]
    fn end_to_end_queue_allocation_of_all_kernels() {
        let lat = LatencyModel::default();
        let machine = Machine::single_cluster(6, 2, 32, lat);
        for l in kernels::all_kernels(lat) {
            let rewritten = insert_copies(&l.ddg, &lat);
            let sched = modulo_schedule(&rewritten.ddg, &machine, ImsOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", l.name));
            let lts = use_lifetimes(&rewritten.ddg, &sched.schedule);
            let queues = allocate_queues(&lts, sched.schedule.ii);
            assert!(queues.num_queues() >= 1, "{}", l.name);
            assert!(queues.num_queues() <= 32, "{} needs too many queues", l.name);
        }
    }
}
