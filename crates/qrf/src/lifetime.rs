//! Value lifetimes in a modulo schedule.
//!
//! A *lifetime* spans from the cycle at which storage is reserved for a value (the
//! issue cycle of its producer) to the cycle at which its last consumer reads it
//! (`issue(consumer) + II · distance` for a loop-carried use).  Because successive
//! iterations are initiated every II cycles, several instances of the same lifetime
//! can be alive simultaneously; this is precisely what creates register pressure in
//! software-pipelined loops.
//!
//! Two flavours of lifetime are extracted:
//!
//! * **per-value lifetimes** ([`value_lifetimes`]) — one per produced value, ending at
//!   the *last* read; these drive the conventional-register-file MaxLive baseline;
//! * **per-use lifetimes** ([`use_lifetimes`]) — one per (producer, consumer) flow
//!   edge; these drive queue allocation, because a queue read is destructive so every
//!   additional consumer needs its own queue-resident instance of the value
//!   (Section 2 of the paper).

use vliw_ddg::{Ddg, OpId};
use vliw_sched::Schedule;

/// A storage lifetime extracted from a modulo schedule.
///
/// Endpoints are `u64`: schedule issue cycles are `u32`, but a loop-carried use
/// ends at `issue(consumer) + II · distance`, and for long-latency chains (large
/// II) combined with large dependence distances that product overflows `u32`.
/// The scheduler's window scans were widened the same way; the lifetime side
/// (extraction, MaxLive, Q-compatibility) works in `u64` throughout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifetime {
    /// The operation producing the value.
    pub producer: OpId,
    /// The consumer this lifetime feeds (per-use lifetimes) or the last consumer
    /// (per-value lifetimes).
    pub consumer: OpId,
    /// Cycle at which the storage is reserved: the producer's issue cycle.
    pub start: u64,
    /// Cycle at which the (last) consumer reads the value:
    /// `issue(consumer) + II · distance`.
    pub end: u64,
}

impl Lifetime {
    /// Length of the lifetime in cycles (`end − start`).
    #[inline]
    pub fn length(&self) -> u64 {
        self.end - self.start
    }

    /// True if the lifetime spans more than `ii` cycles, meaning more than one
    /// instance of it is alive at steady state.
    pub fn overlaps_itself(&self, ii: u32) -> bool {
        self.length() > u64::from(ii)
    }
}

/// Extracts one lifetime per (producer, consumer) flow edge.
pub fn use_lifetimes(ddg: &Ddg, schedule: &Schedule) -> Vec<Lifetime> {
    let mut out = Vec::new();
    use_lifetimes_into(ddg, schedule, &mut out);
    out
}

/// [`use_lifetimes`] into a caller-owned buffer (cleared and refilled), so a
/// corpus compile reuses one lifetime vector.
pub fn use_lifetimes_into(ddg: &Ddg, schedule: &Schedule, out: &mut Vec<Lifetime>) {
    let ii = u64::from(schedule.ii);
    out.clear();
    for e in ddg.edges() {
        if !e.kind.carries_value() {
            continue;
        }
        let start = u64::from(schedule.start_of(e.src));
        let end = u64::from(schedule.start_of(e.dst)) + ii * u64::from(e.distance);
        debug_assert!(end >= start, "schedule violates dependence {e}");
        out.push(Lifetime { producer: e.src, consumer: e.dst, start, end });
    }
}

/// Extracts one lifetime per produced value (covering all of its consumers).
///
/// Values with no consumer (e.g. a compare feeding the loop branch, which is not
/// modelled) produce no lifetime.
pub fn value_lifetimes(ddg: &Ddg, schedule: &Schedule) -> Vec<Lifetime> {
    let ii = u64::from(schedule.ii);
    let mut out = Vec::new();
    for op in ddg.op_ids() {
        let mut last: Option<(OpId, u64)> = None;
        for e in ddg.flow_consumers(op) {
            let end = u64::from(schedule.start_of(e.dst)) + ii * u64::from(e.distance);
            if last.is_none_or(|(_, prev)| end > prev) {
                last = Some((e.dst, end));
            }
        }
        if let Some((consumer, end)) = last {
            out.push(Lifetime {
                producer: op,
                consumer,
                start: u64::from(schedule.start_of(op)),
                end,
            });
        }
    }
    out
}

/// Steady-state storage requirement of a set of lifetimes: the maximum, over the II
/// modulo slots, of the number of live lifetime instances.
///
/// This is the classic *MaxLive* quantity; for a conventional register file it is the
/// number of registers needed (ignoring allocation fragmentation), and for a single
/// queue holding a set of lifetimes it is the queue depth required.
pub fn max_live(lifetimes: &[Lifetime], ii: u32) -> usize {
    let mut diff = Vec::new();
    max_live_iter(lifetimes.iter(), ii, &mut diff)
}

/// [`max_live`] of the subset `members` (indices into `lifetimes`), reusing a
/// caller-provided difference-array buffer.
///
/// This is the queue-depth computation of the allocator: one call per queue,
/// over the member indices, with a single scratch buffer for the whole
/// allocation — no member `Lifetime` is ever cloned.
pub fn max_live_indexed(
    lifetimes: &[Lifetime],
    members: &[u32],
    ii: u32,
    diff: &mut Vec<i64>,
) -> usize {
    max_live_iter(members.iter().map(|&j| &lifetimes[j as usize]), ii, diff)
}

/// The shared MaxLive core: whole-wrap counting plus a difference array over the
/// II ring, `O(II + n)` per call.  `diff` is cleared and reused.
fn max_live_iter<'a>(
    lifetimes: impl Iterator<Item = &'a Lifetime>,
    ii: u32,
    diff: &mut Vec<i64>,
) -> usize {
    assert!(ii >= 1);
    let ii = ii as usize;
    // O(II) per lifetime instead of O(length): a lifetime of length L covers
    // every modulo slot ⌊L / II⌋ times (the whole wraps), plus the L mod II
    // slots starting at `start mod II` once more.  The partial cover is a
    // (possibly wrapping) interval, accumulated in a difference array.
    let mut whole_wraps = 0usize;
    diff.clear();
    diff.resize(ii + 1, 0);
    for lt in lifetimes {
        let len = lt.length();
        whole_wraps += (len / ii as u64) as usize;
        let rem = (len % ii as u64) as usize;
        if rem == 0 {
            continue;
        }
        let s = (lt.start % ii as u64) as usize;
        if s + rem <= ii {
            diff[s] += 1;
            diff[s + rem] -= 1;
        } else {
            diff[s] += 1;
            diff[ii] -= 1;
            diff[0] += 1;
            diff[s + rem - ii] -= 1;
        }
    }
    let mut best = 0i64;
    let mut cur = 0i64;
    for d in &diff[..ii] {
        cur += d;
        best = best.max(cur);
    }
    whole_wraps + best as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, LatencyModel, OpKind};
    use vliw_machine::Machine;
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn schedule_kernel(l: &vliw_ddg::Loop, fus: usize) -> Schedule {
        let m = Machine::single_cluster(fus, 2, 32, LatencyModel::default());
        modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap().schedule
    }

    #[test]
    fn use_lifetimes_one_per_flow_edge() {
        let l = kernels::dot_product(LatencyModel::default(), 100);
        let s = schedule_kernel(&l, 6);
        let lts = use_lifetimes(&l.ddg, &s);
        let flow_edges = l.ddg.edges().filter(|e| e.kind.carries_value()).count();
        assert_eq!(lts.len(), flow_edges);
        for lt in &lts {
            assert!(lt.end >= lt.start);
        }
    }

    #[test]
    fn value_lifetimes_one_per_producing_op_with_consumers() {
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let s = schedule_kernel(&l, 12);
        let lts = value_lifetimes(&l.ddg, &s);
        let producers_with_uses = l.ddg.op_ids().filter(|&op| l.ddg.fanout(op) > 0).count();
        assert_eq!(lts.len(), producers_with_uses);
    }

    #[test]
    fn value_lifetime_ends_at_last_consumer() {
        // One producer read by an early and a late consumer.
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let p = b.op(OpKind::Load);
        let early = b.op(OpKind::Add);
        let late = b.op(OpKind::Mul);
        b.flow(p, early);
        b.flow(p, late);
        let g = b.finish();
        let m = Machine::single_cluster(6, 1, 32, LatencyModel::unit());
        let s = modulo_schedule(&g, &m, ImsOptions::default()).unwrap().schedule;
        let vl = value_lifetimes(&g, &s);
        assert_eq!(vl.len(), 1);
        let ul = use_lifetimes(&g, &s);
        assert_eq!(ul.len(), 2);
        let max_end = ul.iter().map(|l| l.end).max().unwrap();
        assert_eq!(vl[0].end, max_end);
    }

    #[test]
    fn carried_uses_extend_lifetimes_by_ii() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let p = b.op(OpKind::Add);
        let c = b.op(OpKind::Mul);
        b.flow_carried(p, c, 2);
        let g = b.finish();
        let m = Machine::single_cluster(6, 1, 32, LatencyModel::unit());
        let s = modulo_schedule(&g, &m, ImsOptions::default()).unwrap().schedule;
        let lts = use_lifetimes(&g, &s);
        assert_eq!(lts.len(), 1);
        assert_eq!(lts[0].end, u64::from(s.start_of(c)) + 2 * u64::from(s.ii));
        assert!(lts[0].overlaps_itself(s.ii));
    }

    #[test]
    fn long_latency_chain_lifetimes_do_not_overflow_u32() {
        // A loop-carried use at a large II and a large distance: the end cycle
        // `issue(consumer) + II · distance` exceeds u32::MAX.  The scheduler's
        // window scans were widened to u64 earlier; the lifetime extraction must
        // survive the same regime instead of wrapping (or panicking in debug).
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let p = b.op(OpKind::Add);
        let c = b.op(OpKind::Mul);
        b.flow_carried(p, c, 70_000);
        let g = b.finish();
        let ii = 70_000u32; // ii · distance = 4.9e9 > u32::MAX
        let s = Schedule::new(ii, vec![0, 1], vec![vliw_machine::FuId(0), vliw_machine::FuId(1)]);
        let lts = use_lifetimes(&g, &s);
        assert_eq!(lts.len(), 1);
        assert_eq!(lts[0].end, 1 + u64::from(ii) * 70_000);
        assert!(lts[0].end > u64::from(u32::MAX));
        // The derived quantities stay exact in the widened domain.
        assert_eq!(lts[0].length(), lts[0].end - lts[0].start);
        assert!(lts[0].overlaps_itself(ii));
        let vls = value_lifetimes(&g, &s);
        assert_eq!(vls[0].end, lts[0].end);
        // MaxLive of a single lifetime of length L at initiation interval II is
        // ceil(L / II); the whole-wrap accounting must not truncate.
        assert_eq!(max_live(&lts, ii), lts[0].length().div_ceil(u64::from(ii)) as usize);
    }

    #[test]
    fn max_live_counts_overlap() {
        // Two lifetimes [0, 4) and [2, 6) at II = 2: every slot holds one instance of
        // each at steady state plus the overlap, giving MaxLive 4.
        let lts = vec![
            Lifetime { producer: OpId(0), consumer: OpId(1), start: 0, end: 4 },
            Lifetime { producer: OpId(2), consumer: OpId(3), start: 2, end: 6 },
        ];
        assert_eq!(max_live(&lts, 2), 4);
        assert_eq!(max_live(&lts, 4), 2);
        assert_eq!(max_live(&lts, 8), 2);
    }

    #[test]
    fn max_live_of_empty_set_is_zero() {
        assert_eq!(max_live(&[], 4), 0);
    }

    #[test]
    fn max_live_indexed_matches_cloning_the_subset() {
        let lts: Vec<Lifetime> = [(0u64, 4u64), (2, 6), (1, 9), (3, 3), (5, 17)]
            .iter()
            .map(|&(s, e)| Lifetime { producer: OpId(0), consumer: OpId(1), start: s, end: e })
            .collect();
        let mut diff = Vec::new();
        for members in [vec![], vec![0u32], vec![1, 3], vec![0, 2, 4], vec![4, 2, 0]] {
            for ii in 1..=8 {
                let cloned: Vec<Lifetime> =
                    members.iter().map(|&j| lts[j as usize].clone()).collect();
                assert_eq!(
                    max_live_indexed(&lts, &members, ii, &mut diff),
                    max_live(&cloned, ii),
                    "members {members:?} at II {ii}"
                );
            }
        }
    }

    #[test]
    fn lifetime_length_and_self_overlap() {
        let lt = Lifetime { producer: OpId(0), consumer: OpId(1), start: 3, end: 10 };
        assert_eq!(lt.length(), 7);
        assert!(lt.overlaps_itself(4));
        assert!(!lt.overlaps_itself(7));
    }

    proptest::proptest! {
        /// The whole-wrap + difference-array implementation agrees with the
        /// naive per-cycle counting it replaced, including lifetimes much
        /// longer than the II and empty (zero-length) lifetimes.
        #[test]
        fn max_live_matches_naive_counting(
            raw in proptest::collection::vec((0u32..40, 0u32..90), 0..40),
            ii in 1u32..12,
        ) {
            let lts: Vec<Lifetime> = raw
                .iter()
                .map(|&(s, l)| Lifetime {
                    producer: OpId(0),
                    consumer: OpId(1),
                    start: u64::from(s),
                    end: u64::from(s + l),
                })
                .collect();
            let naive = {
                let mut live = vec![0usize; ii as usize];
                for lt in &lts {
                    for t in lt.start..lt.end {
                        live[(t % u64::from(ii)) as usize] += 1;
                    }
                }
                live.into_iter().max().unwrap_or(0)
            };
            proptest::prop_assert_eq!(max_live(&lts, ii), naive);
        }
    }
}
