//! The partitioning scheduler: iterative modulo scheduling with cluster assignment.
//!
//! The paper extends Rau's IMS with heuristics that pick a **cluster** for every
//! operation while it is being placed in the modulo reservation table.  The hard
//! constraint is the ring topology: a value produced in cluster `i` can only be
//! consumed in cluster `i`, `i − 1` or `i + 1` (there are no transit moves between
//! non-adjacent clusters — the paper lists those as future work).  When an operation
//! cannot be placed in any cluster compatible with its already-placed neighbours, the
//! blocking neighbours are unscheduled (backtracking) and the search continues; when
//! the placement budget is exhausted the II is increased.

use std::cell::RefCell;
use std::mem;

use vliw_ddg::{Ddg, DepKind, OpId};
use vliw_machine::{ClusterId, FuId, Machine};
use vliw_sched::{
    rec_mii, res_mii, run_placement_with, ClusterPolicy, Eligibility, PlacementEngine, SchedError,
    SchedScratch, Schedule,
};

use crate::comm::{comm_stats, CommStats};

/// Reusable work-lists of the ring policy: the placed producer/consumer
/// clusters of the operation being ranked and the affinity-sorted cluster
/// ranking.  One triple is rebuilt for **every** placement, so reusing the
/// buffers removes three allocations per placed operation.
#[derive(Debug, Default)]
struct RingLists {
    producers: Vec<ClusterId>,
    consumers: Vec<ClusterId>,
    all: Vec<ClusterId>,
}

/// Reusable backing storage of a partitioning run: the shared placement
/// engine's [`SchedScratch`] plus the ring policy's work-lists.
#[derive(Debug, Default)]
pub struct PartitionScratch {
    sched: SchedScratch,
    ring: RingLists,
}

/// Tuning knobs of the partitioning scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionOptions {
    /// Placement budget per II attempt, as a multiple of the operation count.
    /// The partitioner backtracks more than plain IMS, so the default is larger.
    pub budget_ratio: u32,
    /// Do not schedule below this II.
    pub min_ii: u32,
    /// Give up above this II (defaults to a generous multiple of the MII).
    pub max_ii: Option<u32>,
    /// Allow values to move between non-adjacent clusters (the paper's "move
    /// operations" future-work extension).  When enabled the ring adjacency
    /// constraint is dropped, which models a machine with a full point-to-point
    /// interconnect.
    pub allow_transit_moves: bool,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { budget_ratio: 10, min_ii: 1, max_ii: None, allow_transit_moves: false }
    }
}

impl PartitionOptions {
    /// Sets the minimum II (used to compare against a single-cluster baseline).
    pub fn with_min_ii(mut self, min_ii: u32) -> Self {
        self.min_ii = min_ii;
        self
    }

    /// Enables transit moves between non-adjacent clusters.
    pub fn with_transit_moves(mut self) -> Self {
        self.allow_transit_moves = true;
        self
    }
}

/// Outcome of a successful partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionResult {
    /// The partitioned schedule (the cluster of each operation is the cluster of its
    /// assigned functional unit).
    pub schedule: Schedule,
    /// Resource-constrained lower bound on the II.
    pub res_mii: u32,
    /// Recurrence-constrained lower bound on the II.
    pub rec_mii: u32,
    /// `max(ResMII, RecMII)`.
    pub mii: u32,
    /// Number of II values tried.
    pub attempts: u32,
    /// Inter-cluster communication statistics of the final schedule.
    pub comm: CommStats,
}

impl PartitionResult {
    /// True if the partitioner achieved the theoretical minimum II.
    pub fn achieved_mii(&self) -> bool {
        self.schedule.ii == self.mii.max(1)
    }
}

thread_local! {
    /// Per-thread scratch of the plain entry point (session executor workers
    /// are OS threads); explicit `_with` callers never touch this.
    static PARTITION_SCRATCH: RefCell<PartitionScratch> = RefCell::new(PartitionScratch::default());
}

/// Schedules `ddg` on the clustered `machine`, assigning every operation to a
/// cluster, a functional unit and a cycle.
pub fn partition_schedule(
    ddg: &Ddg,
    machine: &Machine,
    opts: PartitionOptions,
) -> Result<PartitionResult, SchedError> {
    PARTITION_SCRATCH.with(|s| partition_schedule_with(ddg, machine, opts, &mut s.borrow_mut()))
}

/// [`partition_schedule`] backed by a caller-owned [`PartitionScratch`], so
/// every II attempt after the first reuses the same placement buffers and ring
/// work-lists.
pub fn partition_schedule_with(
    ddg: &Ddg,
    machine: &Machine,
    opts: PartitionOptions,
    scratch: &mut PartitionScratch,
) -> Result<PartitionResult, SchedError> {
    let _span = vliw_obs::span!("sched/partition", ddg.num_ops());
    if ddg.num_ops() == 0 {
        return Err(SchedError::EmptyGraph);
    }
    ddg.validate_with(scratch.sched.validate_scratch()).map_err(SchedError::InvalidGraph)?;
    let res = res_mii(ddg, machine)?;
    let rec = rec_mii(ddg);
    let lower = res.max(rec);
    let start_ii = lower.max(opts.min_ii).max(1);
    let max_ii = opts.max_ii.unwrap_or(start_ii.saturating_mul(3).saturating_add(64));
    let base_budget = (ddg.num_ops() as u32).saturating_mul(opts.budget_ratio).max(32);

    let mut attempts = 0;
    let mut ii = start_ii;
    while ii <= max_ii {
        attempts += 1;
        // Later attempts get a larger backtracking budget: communication conflicts
        // can require unscheduling the same operations several times before the
        // placement converges.
        let budget = base_budget.saturating_mul(attempts.min(8));
        if let Some((start, fu)) =
            try_partition_at(ddg, machine, ii, budget, opts.allow_transit_moves, None, scratch)
        {
            let schedule = Schedule::new(ii, start, fu);
            debug_assert!(schedule.validate(ddg, machine).is_ok());
            let comm = comm_stats(ddg, machine, &schedule);
            return Ok(PartitionResult {
                schedule,
                res_mii: res,
                rec_mii: rec,
                mii: lower,
                attempts,
                comm,
            });
        }
        ii += 1;
    }

    // Last-resort fallback: collapse the whole loop into a single cluster.  A
    // one-cluster placement trivially satisfies the ring constraint (no value ever
    // crosses a cluster boundary) and always exists for a large enough II; it is the
    // partitioning equivalent of fully serialising the loop and corresponds to the
    // worst case the paper's backtracking degenerates to.
    let single_cluster = ClusterId(0);
    let counts = ddg.class_counts();
    let mut collapse_lower = rec.max(1);
    for class in vliw_ddg::OpClass::ALL {
        let ops = counts[class.index()];
        if ops == 0 {
            continue;
        }
        let units = machine.fus_of_class_in_cluster(single_cluster, class).count();
        if units == 0 {
            return Err(SchedError::NoFunctionalUnit { class });
        }
        collapse_lower = collapse_lower.max(ops.div_ceil(units) as u32);
    }
    // The single-cluster bound is what actually constrains the collapsed
    // schedule, so it (not the machine-wide `lower`) is reported as the MII.
    let collapse_bound = lower.max(collapse_lower);
    let collapse_max = collapse_lower.saturating_mul(3).saturating_add(64);
    let mut ii = collapse_lower.max(opts.min_ii);
    while ii <= collapse_max {
        attempts += 1;
        let budget = base_budget.saturating_mul(8);
        if let Some((start, fu)) = try_partition_at(
            ddg,
            machine,
            ii,
            budget,
            opts.allow_transit_moves,
            Some(single_cluster),
            scratch,
        ) {
            let schedule = Schedule::new(ii, start, fu);
            debug_assert!(schedule.validate(ddg, machine).is_ok());
            let comm = comm_stats(ddg, machine, &schedule);
            return Ok(PartitionResult {
                schedule,
                res_mii: res,
                rec_mii: rec,
                mii: collapse_bound,
                attempts,
                comm,
            });
        }
        ii += 1;
    }
    Err(SchedError::IiLimitReached { limit: collapse_max })
}

/// The paper's cluster-eligibility heuristics, as a policy for the shared
/// placement engine (`vliw_sched::core`).
///
/// Clusters are ranked by affinity (more already-placed flow neighbours is
/// better), then by load (fewer placed operations is better), then by id, and
/// filtered down to those that can exchange values with every placed neighbour
/// over the ring.  When no cluster qualifies, the policy backtracks: it picks
/// the cluster sacrificing the fewest placed neighbours, unschedules the
/// incompatible ones through the engine, and restricts the placement to that
/// cluster.
struct RingPolicy {
    /// Drop the ring-adjacency constraint (the paper's "move operations"
    /// future-work extension).
    allow_transit: bool,
    /// Place every operation in this cluster (the single-cluster collapse
    /// fallback).
    restrict_to: Option<ClusterId>,
    /// Reused work-lists, borrowed per `eligible` call.  `eligible` takes
    /// `&self` and is never re-entered (the engine calls it once per placement
    /// round), so the `RefCell` borrow cannot conflict.
    lists: RefCell<RingLists>,
}

impl ClusterPolicy for RingPolicy {
    fn eligible(
        &self,
        engine: &mut PlacementEngine<'_>,
        op: OpId,
        ranked: &mut Vec<ClusterId>,
    ) -> Eligibility {
        let machine = engine.machine();
        let ddg = engine.ddg();
        let mut lists = self.lists.borrow_mut();
        let RingLists { producers, consumers, all } = &mut *lists;

        // Placed flow neighbours and the communication constraints they impose:
        // `producers` must be able to send to op's cluster; op must be able to
        // send to `consumers`.
        producers.clear();
        producers.extend(
            ddg.pred_edges(op)
                .filter(|e| e.kind == DepKind::Flow && e.src != op)
                .filter_map(|e| engine.cluster_of(e.src)),
        );
        consumers.clear();
        consumers.extend(
            ddg.succ_edges(op)
                .filter(|e| e.kind == DepKind::Flow && e.dst != op)
                .filter_map(|e| engine.cluster_of(e.dst)),
        );

        let comm_ok = |c: ClusterId| -> bool {
            if self.allow_transit {
                return true;
            }
            producers.iter().all(|&p| machine.clusters_communicate(p, c))
                && consumers.iter().all(|&s| machine.clusters_communicate(c, s))
        };

        // Rank every cluster by affinity, then load, then id; keep only the
        // communication-feasible ones.
        all.clear();
        match self.restrict_to {
            Some(c) => all.push(c),
            None => all.extend(machine.cluster_ids()),
        }
        all.sort_by_key(|&c| {
            let affinity = producers.iter().filter(|&&p| p == c).count()
                + consumers.iter().filter(|&&s| s == c).count();
            (std::cmp::Reverse(affinity), engine.cluster_load(c), c.0)
        });
        ranked.extend(all.iter().copied().filter(|&c| comm_ok(c)));

        // Communication conflict: no cluster can talk to all placed neighbours.
        // Backtrack by unscheduling the neighbours that are incompatible with
        // the chosen target cluster, then schedule `op` there.  The target is
        // the cluster that sacrifices the fewest already-placed neighbours
        // (ties broken by the affinity ranking above).
        if ranked.is_empty() {
            let conflicts = |c: ClusterId| -> usize {
                producers.iter().filter(|&&p| !machine.clusters_communicate(p, c)).count()
                    + consumers.iter().filter(|&&s| !machine.clusters_communicate(c, s)).count()
            };
            let target = all
                .iter()
                .copied()
                .min_by_key(|&c| (conflicts(c), all.iter().position(|&r| r == c).unwrap()))
                .expect("machines have at least one cluster");
            for e in ddg.pred_edges(op) {
                if e.kind == DepKind::Flow && e.src != op {
                    if let Some(c) = engine.cluster_of(e.src) {
                        if !machine.clusters_communicate(c, target) {
                            engine.unschedule(e.src);
                        }
                    }
                }
            }
            for e in ddg.succ_edges(op) {
                if e.kind == DepKind::Flow && e.dst != op {
                    if let Some(c) = engine.cluster_of(e.dst) {
                        if !machine.clusters_communicate(target, c) {
                            engine.unschedule(e.dst);
                        }
                    }
                }
            }
            ranked.push(target);
        }
        Eligibility::Ranked
    }

    fn comm_violated(&self, machine: &Machine, from: ClusterId, to: ClusterId) -> bool {
        !self.allow_transit && !machine.clusters_communicate(from, to)
    }
}

/// One partitioning attempt at a fixed II.
///
/// When `restrict_to` is `Some(c)`, every operation is placed in cluster `c` (the
/// single-cluster collapse fallback).  If `c` lacks a unit of some required class
/// the attempt fails — it never escapes to another cluster, which used to break
/// the "collapsed schedules are single-cluster" invariant.
fn try_partition_at(
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    budget: u32,
    allow_transit: bool,
    restrict_to: Option<ClusterId>,
    scratch: &mut PartitionScratch,
) -> Option<(Vec<u32>, Vec<FuId>)> {
    // The policy borrows the ring work-lists for the attempt and hands them
    // back afterwards (the engine's own buffers travel through `scratch.sched`).
    let policy = RingPolicy {
        allow_transit,
        restrict_to,
        lists: RefCell::new(mem::take(&mut scratch.ring)),
    };
    let result = run_placement_with(ddg, machine, ii, budget, &policy, &mut scratch.sched);
    scratch.ring = policy.lists.into_inner();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, DdgBuilder, LatencyModel, OpKind};
    use vliw_machine::LatencyModel as MachineLatency;
    use vliw_machine::{ClusterConfig, RingConfig};
    use vliw_qrf::insert_copies;
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn clustered(n: usize) -> Machine {
        Machine::paper_clustered(n, MachineLatency::default())
    }

    /// Options that skip the partitioned search entirely (`max_ii` below the
    /// smallest II ever attempted), forcing the single-cluster collapse.
    fn collapse_only() -> PartitionOptions {
        PartitionOptions { max_ii: Some(0), ..PartitionOptions::default() }
    }

    #[test]
    fn kernels_schedule_on_clustered_machines() {
        for n in [2, 4, 5, 6] {
            let m = clustered(n);
            for l in kernels::all_kernels(LatencyModel::default()) {
                let r = partition_schedule(&l.ddg, &m, PartitionOptions::default())
                    .unwrap_or_else(|e| panic!("{} on {} clusters: {e}", l.name, n));
                assert!(r.schedule.validate(&l.ddg, &m).is_ok(), "{}", l.name);
                assert!(r.schedule.ii >= r.mii);
            }
        }
    }

    #[test]
    fn ring_adjacency_is_respected() {
        let m = clustered(4);
        for l in kernels::all_kernels(LatencyModel::default()) {
            let r = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
            for e in l.ddg.edges() {
                if e.kind != DepKind::Flow {
                    continue;
                }
                let cs = r.schedule.cluster_of(&m, e.src);
                let cd = r.schedule.cluster_of(&m, e.dst);
                assert!(
                    m.clusters_communicate(cs, cd),
                    "{}: value flows between non-adjacent clusters {cs} -> {cd}",
                    l.name
                );
            }
        }
    }

    #[test]
    fn clustered_ii_never_beats_single_cluster_mii() {
        let lat = LatencyModel::default();
        for l in kernels::all_kernels(lat) {
            let rewritten = insert_copies(&l.ddg, &lat);
            let single = Machine::paper_single_cluster_equivalent(4, lat);
            let clusteredm = clustered(4);
            let s = modulo_schedule(&rewritten.ddg, &single, ImsOptions::default()).unwrap();
            let c = partition_schedule(&rewritten.ddg, &clusteredm, PartitionOptions::default())
                .unwrap();
            assert!(
                c.schedule.ii >= s.schedule.ii,
                "{}: clustered II {} beats single-cluster II {}",
                l.name,
                c.schedule.ii,
                s.schedule.ii
            );
        }
    }

    #[test]
    fn small_kernels_keep_single_cluster_ii_on_four_clusters() {
        // The paper reports that 95% of loops keep the single-cluster II on a
        // 4-cluster machine; these tiny kernels certainly should.
        let lat = LatencyModel::default();
        let single = Machine::paper_single_cluster_equivalent(4, lat);
        let cl = clustered(4);
        for l in kernels::all_kernels(lat) {
            let rewritten = insert_copies(&l.ddg, &lat);
            let s = modulo_schedule(&rewritten.ddg, &single, ImsOptions::default()).unwrap();
            let c = partition_schedule(&rewritten.ddg, &cl, PartitionOptions::default()).unwrap();
            assert_eq!(c.schedule.ii, s.schedule.ii, "{}: clustered II degraded", l.name);
        }
    }

    #[test]
    fn transit_moves_drop_the_adjacency_restriction() {
        let m = clustered(6);
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let with_moves =
            partition_schedule(&l.ddg, &m, PartitionOptions::default().with_transit_moves())
                .unwrap();
        assert!(with_moves.schedule.validate(&l.ddg, &m).is_ok());
        let without = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        // Removing a constraint can only help (or leave unchanged) the II.
        assert!(with_moves.schedule.ii <= without.schedule.ii);
    }

    #[test]
    fn min_ii_is_honoured() {
        let m = clustered(4);
        let l = kernels::dot_product(LatencyModel::default(), 100);
        let base = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        let forced = partition_schedule(
            &l.ddg,
            &m,
            PartitionOptions::default().with_min_ii(base.schedule.ii + 2),
        )
        .unwrap();
        assert_eq!(forced.schedule.ii, base.schedule.ii + 2);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let m = clustered(4);
        assert!(matches!(
            partition_schedule(&Ddg::new(), &m, PartitionOptions::default()),
            Err(SchedError::EmptyGraph)
        ));
    }

    #[test]
    fn single_cluster_machine_degenerates_to_plain_ims_bounds() {
        // On a machine with a single cluster the partitioner faces no communication
        // constraints, so it matches plain IMS's II on these kernels.
        let lat = LatencyModel::default();
        let m = Machine::paper_clustered(1, lat);
        for l in kernels::all_kernels(lat) {
            let p = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
            let s = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
            assert_eq!(p.schedule.ii, s.schedule.ii, "{}", l.name);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let m = clustered(5);
        let l = kernels::wide_parallel(LatencyModel::default(), 10);
        let a = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        let b = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One scratch carried across kernels and cluster counts must reproduce
        // the schedules of fresh (thread-local-backed) runs exactly.
        let mut scratch = PartitionScratch::default();
        for n in [2, 4, 5] {
            let m = clustered(n);
            for l in kernels::all_kernels(LatencyModel::default()) {
                let fresh = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
                let reused =
                    partition_schedule_with(&l.ddg, &m, PartitionOptions::default(), &mut scratch)
                        .unwrap();
                assert_eq!(fresh.schedule, reused.schedule, "{} on {n} clusters", l.name);
            }
        }
    }

    #[test]
    fn collapse_fallback_schedules_are_single_cluster() {
        // The "single-cluster collapse" last resort must live up to its name:
        // every operation of a collapsed schedule sits in cluster 0.  The old
        // forced-placement fallback could grab a unit from *any* cluster.
        let m = clustered(4);
        for l in kernels::all_kernels(LatencyModel::default()) {
            let rewritten = insert_copies(&l.ddg, &LatencyModel::default());
            let r = partition_schedule(&rewritten.ddg, &m, collapse_only()).unwrap();
            assert!(r.schedule.validate(&rewritten.ddg, &m).is_ok(), "{}", l.name);
            for op in rewritten.ddg.op_ids() {
                assert_eq!(
                    r.schedule.cluster_of(&m, op),
                    ClusterId(0),
                    "{}: collapse-fallback schedule escaped cluster 0",
                    l.name
                );
            }
        }
    }

    #[test]
    fn collapse_reports_the_single_cluster_bound_as_mii() {
        // Eight independent loads: ResMII over 4 clusters (4 L/S units) is 2,
        // but the collapsed schedule is constrained by the single L/S unit of
        // cluster 0 — the reported MII must be the bound that actually applied.
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.ops(OpKind::Load, 8);
        let g = b.finish();
        let m = clustered(4);
        let r = partition_schedule(&g, &m, collapse_only()).unwrap();
        assert_eq!(r.res_mii, 2, "machine-wide bound is still reported as ResMII");
        assert_eq!(r.mii, 8, "the single-cluster bound constrained the schedule");
        assert_eq!(r.schedule.ii, 8);
        assert!(r.achieved_mii());
    }

    #[test]
    fn forced_placement_never_escapes_the_eligible_clusters() {
        // A 4-cluster machine whose cluster 0 has no copy unit.  Copy-heavy
        // bodies force placements; the old fallback escaped to any cluster with
        // a copy unit — including non-adjacent ones, breaking the ring
        // invariant.  The engine must stay within the eligible set.
        let mut c0 = ClusterConfig::paper_basic();
        c0.copy_units = 0;
        let clusters = vec![
            c0,
            ClusterConfig::paper_basic(),
            ClusterConfig::paper_basic(),
            ClusterConfig::paper_basic(),
        ];
        let m = Machine::new(
            "asym-4x",
            clusters,
            Some(RingConfig::paper_basic()),
            MachineLatency::default(),
        );
        for l in kernels::all_kernels(LatencyModel::default()) {
            let rewritten = insert_copies(&l.ddg, &LatencyModel::default());
            let r = partition_schedule(&rewritten.ddg, &m, PartitionOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", l.name));
            assert!(r.schedule.validate(&rewritten.ddg, &m).is_ok(), "{}", l.name);
            for e in rewritten.ddg.edges() {
                if e.kind != DepKind::Flow {
                    continue;
                }
                let cs = r.schedule.cluster_of(&m, e.src);
                let cd = r.schedule.cluster_of(&m, e.dst);
                assert!(
                    m.clusters_communicate(cs, cd),
                    "{}: value flows between non-adjacent clusters {cs} -> {cd}",
                    l.name
                );
            }
        }
    }

    #[test]
    fn collapse_with_a_class_missing_from_cluster_zero_is_rejected() {
        // Cluster 0 lacks a copy unit, so a single-cluster collapse of a body
        // containing copies is impossible — the scheduler must say so rather
        // than smuggle the copy into another cluster.
        let mut c0 = ClusterConfig::paper_basic();
        c0.copy_units = 0;
        let m = Machine::new(
            "asym-2x",
            vec![c0, ClusterConfig::paper_basic()],
            Some(RingConfig::paper_basic()),
            MachineLatency::default(),
        );
        let mut b = DdgBuilder::new(LatencyModel::default());
        let p = b.op(OpKind::Add);
        let c = b.op(OpKind::Copy);
        b.flow(p, c);
        let g = b.finish();
        assert!(matches!(
            partition_schedule(&g, &m, collapse_only()),
            Err(SchedError::NoFunctionalUnit { .. })
        ));
    }

    #[test]
    fn long_latency_chain_schedules_on_clusters_without_overflow() {
        // The issue windows of this chain sit near u32::MAX; the historical
        // u32 window scan of `try_partition_at` overflowed there.
        let lat = LatencyModel { load: u32::MAX / 2, mul: u32::MAX / 2, ..Default::default() };
        let mut b = DdgBuilder::new(lat);
        let ld = b.op(OpKind::Load);
        let mu = b.op(OpKind::Mul);
        let tail = b.op(OpKind::Add);
        b.flow(ld, mu);
        b.flow(mu, tail);
        let g = b.finish();
        let m = clustered(2);
        let r = partition_schedule(&g, &m, PartitionOptions::default()).unwrap();
        assert!(r.schedule.validate(&g, &m).is_ok());
        assert_eq!(r.schedule.start_of(tail) as u64, u32::MAX as u64 - 1);
    }
}
