//! The partitioning scheduler: iterative modulo scheduling with cluster assignment.
//!
//! The paper extends Rau's IMS with heuristics that pick a **cluster** for every
//! operation while it is being placed in the modulo reservation table.  The hard
//! constraint is the ring topology: a value produced in cluster `i` can only be
//! consumed in cluster `i`, `i − 1` or `i + 1` (there are no transit moves between
//! non-adjacent clusters — the paper lists those as future work).  When an operation
//! cannot be placed in any cluster compatible with its already-placed neighbours, the
//! blocking neighbours are unscheduled (backtracking) and the search continues; when
//! the placement budget is exhausted the II is increased.

use vliw_ddg::{Ddg, DepKind, OpId};
use vliw_machine::{ClusterId, FuId, Machine};
use vliw_sched::{height_r, rec_mii, res_mii, Mrt, SchedError, Schedule};

use crate::comm::{comm_stats, CommStats};

/// Tuning knobs of the partitioning scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionOptions {
    /// Placement budget per II attempt, as a multiple of the operation count.
    /// The partitioner backtracks more than plain IMS, so the default is larger.
    pub budget_ratio: u32,
    /// Do not schedule below this II.
    pub min_ii: u32,
    /// Give up above this II (defaults to a generous multiple of the MII).
    pub max_ii: Option<u32>,
    /// Allow values to move between non-adjacent clusters (the paper's "move
    /// operations" future-work extension).  When enabled the ring adjacency
    /// constraint is dropped, which models a machine with a full point-to-point
    /// interconnect.
    pub allow_transit_moves: bool,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { budget_ratio: 10, min_ii: 1, max_ii: None, allow_transit_moves: false }
    }
}

impl PartitionOptions {
    /// Sets the minimum II (used to compare against a single-cluster baseline).
    pub fn with_min_ii(mut self, min_ii: u32) -> Self {
        self.min_ii = min_ii;
        self
    }

    /// Enables transit moves between non-adjacent clusters.
    pub fn with_transit_moves(mut self) -> Self {
        self.allow_transit_moves = true;
        self
    }
}

/// Outcome of a successful partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionResult {
    /// The partitioned schedule (the cluster of each operation is the cluster of its
    /// assigned functional unit).
    pub schedule: Schedule,
    /// Resource-constrained lower bound on the II.
    pub res_mii: u32,
    /// Recurrence-constrained lower bound on the II.
    pub rec_mii: u32,
    /// `max(ResMII, RecMII)`.
    pub mii: u32,
    /// Number of II values tried.
    pub attempts: u32,
    /// Inter-cluster communication statistics of the final schedule.
    pub comm: CommStats,
}

impl PartitionResult {
    /// True if the partitioner achieved the theoretical minimum II.
    pub fn achieved_mii(&self) -> bool {
        self.schedule.ii == self.mii.max(1)
    }
}

/// Schedules `ddg` on the clustered `machine`, assigning every operation to a
/// cluster, a functional unit and a cycle.
pub fn partition_schedule(
    ddg: &Ddg,
    machine: &Machine,
    opts: PartitionOptions,
) -> Result<PartitionResult, SchedError> {
    if ddg.num_ops() == 0 {
        return Err(SchedError::EmptyGraph);
    }
    ddg.validate().map_err(SchedError::InvalidGraph)?;
    let res = res_mii(ddg, machine)?;
    let rec = rec_mii(ddg);
    let lower = res.max(rec);
    let start_ii = lower.max(opts.min_ii).max(1);
    let max_ii = opts.max_ii.unwrap_or(start_ii.saturating_mul(3).saturating_add(64));
    let base_budget = (ddg.num_ops() as u32).saturating_mul(opts.budget_ratio).max(32);

    let mut attempts = 0;
    let mut ii = start_ii;
    while ii <= max_ii {
        attempts += 1;
        // Later attempts get a larger backtracking budget: communication conflicts
        // can require unscheduling the same operations several times before the
        // placement converges.
        let budget = base_budget.saturating_mul(attempts.min(8));
        if let Some((start, fu)) =
            try_partition_at(ddg, machine, ii, budget, opts.allow_transit_moves, None)
        {
            let schedule = Schedule::new(ii, start, fu);
            debug_assert!(schedule.validate(ddg, machine).is_ok());
            let comm = comm_stats(ddg, machine, &schedule);
            return Ok(PartitionResult {
                schedule,
                res_mii: res,
                rec_mii: rec,
                mii: lower,
                attempts,
                comm,
            });
        }
        ii += 1;
    }

    // Last-resort fallback: collapse the whole loop into a single cluster.  A
    // one-cluster placement trivially satisfies the ring constraint (no value ever
    // crosses a cluster boundary) and always exists for a large enough II; it is the
    // partitioning equivalent of fully serialising the loop and corresponds to the
    // worst case the paper's backtracking degenerates to.
    let single_cluster = ClusterId(0);
    let counts = ddg.class_counts();
    let mut collapse_lower = rec.max(1);
    for class in vliw_ddg::OpClass::ALL {
        let ops = counts[class.index()];
        if ops == 0 {
            continue;
        }
        let units = machine.fus_of_class_in_cluster(single_cluster, class).count();
        if units == 0 {
            return Err(SchedError::NoFunctionalUnit { class });
        }
        collapse_lower = collapse_lower.max(ops.div_ceil(units) as u32);
    }
    let collapse_max = collapse_lower.saturating_mul(3).saturating_add(64);
    let mut ii = collapse_lower.max(opts.min_ii);
    while ii <= collapse_max {
        attempts += 1;
        let budget = base_budget.saturating_mul(8);
        if let Some((start, fu)) = try_partition_at(
            ddg,
            machine,
            ii,
            budget,
            opts.allow_transit_moves,
            Some(single_cluster),
        ) {
            let schedule = Schedule::new(ii, start, fu);
            debug_assert!(schedule.validate(ddg, machine).is_ok());
            let comm = comm_stats(ddg, machine, &schedule);
            return Ok(PartitionResult {
                schedule,
                res_mii: res,
                rec_mii: rec,
                mii: lower,
                attempts,
                comm,
            });
        }
        ii += 1;
    }
    Err(SchedError::IiLimitReached { limit: collapse_max })
}

/// One partitioning attempt at a fixed II.
///
/// When `restrict_to` is `Some(c)`, every operation is placed in cluster `c` (the
/// single-cluster collapse fallback).
fn try_partition_at(
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    budget: u32,
    allow_transit: bool,
    restrict_to: Option<ClusterId>,
) -> Option<(Vec<u32>, Vec<FuId>)> {
    let n = ddg.num_ops();
    let heights = height_r(ddg, ii);
    let mut start: Vec<Option<u32>> = vec![None; n];
    let mut fu_of: Vec<FuId> = vec![FuId(0); n];
    let mut prev_start: Vec<u32> = vec![0; n];
    let mut never_scheduled: Vec<bool> = vec![true; n];
    let mut cluster_load: Vec<u32> = vec![0; machine.num_clusters()];
    let mut mrt = Mrt::new(machine, ii);
    let mut budget = budget as i64;

    // Cluster of a scheduled op.
    let cluster_of = |fu_of: &Vec<FuId>, start: &Vec<Option<u32>>, op: OpId| -> Option<ClusterId> {
        start[op.index()].map(|_| machine.fu(fu_of[op.index()]).cluster)
    };

    while let Some(i) =
        (0..n).filter(|&i| start[i].is_none()).max_by_key(|&i| (heights[i], std::cmp::Reverse(i)))
    {
        let op = OpId(i as u32);
        budget -= 1;
        if budget < 0 {
            return None;
        }

        let class = ddg.op(op).class();

        // Earliest start from scheduled predecessors.
        let mut estart: i64 = 0;
        for e in ddg.pred_edges(op) {
            if e.src == op {
                continue;
            }
            if let Some(s) = start[e.src.index()] {
                estart = estart.max(s as i64 + e.weight_at(ii));
            }
        }
        let estart = estart.max(0) as u32;

        // Placed flow neighbours and the communication constraints they impose.
        // `producers` must be able to send to op's cluster; op must be able to send
        // to `consumers`.
        let producers: Vec<ClusterId> = ddg
            .pred_edges(op)
            .filter(|e| e.kind == DepKind::Flow && e.src != op)
            .filter_map(|e| cluster_of(&fu_of, &start, e.src))
            .collect();
        let consumers: Vec<ClusterId> = ddg
            .succ_edges(op)
            .filter(|e| e.kind == DepKind::Flow && e.dst != op)
            .filter_map(|e| cluster_of(&fu_of, &start, e.dst))
            .collect();

        let comm_ok = |c: ClusterId| -> bool {
            if allow_transit {
                return true;
            }
            producers.iter().all(|&p| machine.clusters_communicate(p, c))
                && consumers.iter().all(|&s| machine.clusters_communicate(c, s))
        };

        // Rank every cluster by affinity (more placed neighbours is better), then by
        // load (less is better), then by id; keep only communication-feasible ones.
        let mut ranked: Vec<ClusterId> = match restrict_to {
            Some(c) => vec![c],
            None => machine.cluster_ids().collect(),
        };
        ranked.sort_by_key(|&c| {
            let affinity = producers.iter().filter(|&&p| p == c).count()
                + consumers.iter().filter(|&&s| s == c).count();
            (std::cmp::Reverse(affinity), cluster_load[c.index()], c.0)
        });
        let mut eligible: Vec<ClusterId> = ranked.iter().copied().filter(|&c| comm_ok(c)).collect();

        // Communication conflict: no cluster can talk to all placed neighbours.
        // Backtrack by unscheduling the neighbours that are incompatible with the
        // chosen target cluster, then schedule `op` there.  The target is the
        // cluster that sacrifices the fewest already-placed neighbours (ties broken
        // by the affinity ranking above).
        if eligible.is_empty() {
            let conflicts = |c: ClusterId| -> usize {
                producers.iter().filter(|&&p| !machine.clusters_communicate(p, c)).count()
                    + consumers.iter().filter(|&&s| !machine.clusters_communicate(c, s)).count()
            };
            let target = ranked
                .iter()
                .copied()
                .min_by_key(|&c| (conflicts(c), ranked.iter().position(|&r| r == c).unwrap()))
                .expect("machines have at least one cluster");
            let mut to_unschedule: Vec<OpId> = Vec::new();
            for e in ddg.pred_edges(op) {
                if e.kind == DepKind::Flow && e.src != op {
                    if let Some(c) = cluster_of(&fu_of, &start, e.src) {
                        if !machine.clusters_communicate(c, target) {
                            to_unschedule.push(e.src);
                        }
                    }
                }
            }
            for e in ddg.succ_edges(op) {
                if e.kind == DepKind::Flow && e.dst != op {
                    if let Some(c) = cluster_of(&fu_of, &start, e.dst) {
                        if !machine.clusters_communicate(target, c) {
                            to_unschedule.push(e.dst);
                        }
                    }
                }
            }
            for victim in to_unschedule {
                if let Some(s) = start[victim.index()] {
                    mrt.release(s, fu_of[victim.index()]);
                    let c = machine.fu(fu_of[victim.index()]).cluster;
                    cluster_load[c.index()] = cluster_load[c.index()].saturating_sub(1);
                    start[victim.index()] = None;
                }
            }
            eligible = vec![target];
        }

        // Search the scheduling window for a free unit in an eligible cluster.
        let mut placement: Option<(u32, FuId)> = None;
        'outer: for t in estart..estart + ii {
            for &c in &eligible {
                if let Some(fu) = mrt.free_fu(machine, t, class, Some(c)) {
                    placement = Some((t, fu));
                    break 'outer;
                }
            }
        }

        let (time, fu) = match placement {
            Some(p) => p,
            None => {
                let time = if never_scheduled[op.index()] || estart > prev_start[op.index()] {
                    estart
                } else {
                    prev_start[op.index()] + 1
                };
                // Force into the best eligible cluster, evicting the lowest-priority
                // occupant of that cluster's units.
                let target = eligible[0];
                let victim_fu =
                    machine.fus_of_class_in_cluster(target, class).map(|f| f.id).min_by_key(|&f| {
                        mrt.occupant(time, f).map(|occ| heights[occ.index()]).unwrap_or(i64::MIN)
                    });
                match victim_fu {
                    Some(f) => (time, f),
                    None => {
                        // The eligible cluster has no unit of this class at all (can
                        // only happen for copy units on machines without them in
                        // some clusters); fall back to any cluster that has one.
                        let f = machine
                            .fus_of_class(class)
                            .map(|f| f.id)
                            .min_by_key(|&f| {
                                mrt.occupant(time, f)
                                    .map(|occ| heights[occ.index()])
                                    .unwrap_or(i64::MIN)
                            })
                            .expect("ResMII guarantees at least one unit of the class");
                        (time, f)
                    }
                }
            }
        };

        if let Some(victim) = mrt.release(time, fu) {
            let c = machine.fu(fu_of[victim.index()]).cluster;
            cluster_load[c.index()] = cluster_load[c.index()].saturating_sub(1);
            start[victim.index()] = None;
        }
        mrt.reserve(time, fu, op);
        start[op.index()] = Some(time);
        fu_of[op.index()] = fu;
        prev_start[op.index()] = time;
        never_scheduled[op.index()] = false;
        let placed_cluster = machine.fu(fu).cluster;
        cluster_load[placed_cluster.index()] += 1;

        // Unschedule operations whose dependences with `op` are now violated, and
        // (when transit moves are disabled) flow neighbours that ended up in
        // non-adjacent clusters because of the forced placement.
        for e in ddg.succ_edges(op) {
            if e.dst == op {
                continue;
            }
            if let Some(s_dst) = start[e.dst.index()] {
                let dep_violated = (s_dst as i64) < time as i64 + e.weight_at(ii);
                let comm_violated = !allow_transit
                    && e.kind == DepKind::Flow
                    && !machine.clusters_communicate(
                        placed_cluster,
                        machine.fu(fu_of[e.dst.index()]).cluster,
                    );
                if dep_violated || comm_violated {
                    mrt.release(s_dst, fu_of[e.dst.index()]);
                    let c = machine.fu(fu_of[e.dst.index()]).cluster;
                    cluster_load[c.index()] = cluster_load[c.index()].saturating_sub(1);
                    start[e.dst.index()] = None;
                }
            }
        }
        for e in ddg.pred_edges(op) {
            if e.src == op {
                continue;
            }
            if let Some(s_src) = start[e.src.index()] {
                let dep_violated = (time as i64) < s_src as i64 + e.weight_at(ii);
                let comm_violated = !allow_transit
                    && e.kind == DepKind::Flow
                    && !machine.clusters_communicate(
                        machine.fu(fu_of[e.src.index()]).cluster,
                        placed_cluster,
                    );
                if dep_violated || comm_violated {
                    mrt.release(s_src, fu_of[e.src.index()]);
                    let c = machine.fu(fu_of[e.src.index()]).cluster;
                    cluster_load[c.index()] = cluster_load[c.index()].saturating_sub(1);
                    start[e.src.index()] = None;
                }
            }
        }
    }

    let start: Vec<u32> = start.into_iter().map(|s| s.expect("all ops scheduled")).collect();
    Some((start, fu_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::LatencyModel as MachineLatency;
    use vliw_qrf::insert_copies;
    use vliw_sched::{modulo_schedule, ImsOptions};

    fn clustered(n: usize) -> Machine {
        Machine::paper_clustered(n, MachineLatency::default())
    }

    #[test]
    fn kernels_schedule_on_clustered_machines() {
        for n in [2, 4, 5, 6] {
            let m = clustered(n);
            for l in kernels::all_kernels(LatencyModel::default()) {
                let r = partition_schedule(&l.ddg, &m, PartitionOptions::default())
                    .unwrap_or_else(|e| panic!("{} on {} clusters: {e}", l.name, n));
                assert!(r.schedule.validate(&l.ddg, &m).is_ok(), "{}", l.name);
                assert!(r.schedule.ii >= r.mii);
            }
        }
    }

    #[test]
    fn ring_adjacency_is_respected() {
        let m = clustered(4);
        for l in kernels::all_kernels(LatencyModel::default()) {
            let r = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
            for e in l.ddg.edges() {
                if e.kind != DepKind::Flow {
                    continue;
                }
                let cs = r.schedule.cluster_of(&m, e.src);
                let cd = r.schedule.cluster_of(&m, e.dst);
                assert!(
                    m.clusters_communicate(cs, cd),
                    "{}: value flows between non-adjacent clusters {cs} -> {cd}",
                    l.name
                );
            }
        }
    }

    #[test]
    fn clustered_ii_never_beats_single_cluster_mii() {
        let lat = LatencyModel::default();
        for l in kernels::all_kernels(lat) {
            let rewritten = insert_copies(&l.ddg, &lat);
            let single = Machine::paper_single_cluster_equivalent(4, lat);
            let clusteredm = clustered(4);
            let s = modulo_schedule(&rewritten.ddg, &single, ImsOptions::default()).unwrap();
            let c = partition_schedule(&rewritten.ddg, &clusteredm, PartitionOptions::default())
                .unwrap();
            assert!(
                c.schedule.ii >= s.schedule.ii,
                "{}: clustered II {} beats single-cluster II {}",
                l.name,
                c.schedule.ii,
                s.schedule.ii
            );
        }
    }

    #[test]
    fn small_kernels_keep_single_cluster_ii_on_four_clusters() {
        // The paper reports that 95% of loops keep the single-cluster II on a
        // 4-cluster machine; these tiny kernels certainly should.
        let lat = LatencyModel::default();
        let single = Machine::paper_single_cluster_equivalent(4, lat);
        let cl = clustered(4);
        for l in kernels::all_kernels(lat) {
            let rewritten = insert_copies(&l.ddg, &lat);
            let s = modulo_schedule(&rewritten.ddg, &single, ImsOptions::default()).unwrap();
            let c = partition_schedule(&rewritten.ddg, &cl, PartitionOptions::default()).unwrap();
            assert_eq!(c.schedule.ii, s.schedule.ii, "{}: clustered II degraded", l.name);
        }
    }

    #[test]
    fn transit_moves_drop_the_adjacency_restriction() {
        let m = clustered(6);
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let with_moves =
            partition_schedule(&l.ddg, &m, PartitionOptions::default().with_transit_moves())
                .unwrap();
        assert!(with_moves.schedule.validate(&l.ddg, &m).is_ok());
        let without = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        // Removing a constraint can only help (or leave unchanged) the II.
        assert!(with_moves.schedule.ii <= without.schedule.ii);
    }

    #[test]
    fn min_ii_is_honoured() {
        let m = clustered(4);
        let l = kernels::dot_product(LatencyModel::default(), 100);
        let base = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        let forced = partition_schedule(
            &l.ddg,
            &m,
            PartitionOptions::default().with_min_ii(base.schedule.ii + 2),
        )
        .unwrap();
        assert_eq!(forced.schedule.ii, base.schedule.ii + 2);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let m = clustered(4);
        assert!(matches!(
            partition_schedule(&Ddg::new(), &m, PartitionOptions::default()),
            Err(SchedError::EmptyGraph)
        ));
    }

    #[test]
    fn single_cluster_machine_degenerates_to_plain_ims_bounds() {
        // On a machine with a single cluster the partitioner faces no communication
        // constraints, so it matches plain IMS's II on these kernels.
        let lat = LatencyModel::default();
        let m = Machine::paper_clustered(1, lat);
        for l in kernels::all_kernels(lat) {
            let p = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
            let s = modulo_schedule(&l.ddg, &m, ImsOptions::default()).unwrap();
            assert_eq!(p.schedule.ii, s.schedule.ii, "{}", l.name);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let m = clustered(5);
        let l = kernels::wide_parallel(LatencyModel::default(), 10);
        let a = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        let b = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        assert_eq!(a.schedule, b.schedule);
    }
}
