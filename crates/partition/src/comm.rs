//! Inter-cluster communication analysis.
//!
//! After partitioning, every flow dependence whose producer and consumer live in
//! different (adjacent) clusters must travel through one of the ring's communication
//! queues.  This module measures how many values cross clusters, how many
//! communication queues each directed link needs (using the same Q-compatibility
//! binning as the private QRFs), and how many private queues each cluster needs —
//! the numbers behind the paper's Fig. 7 cluster sizing (8 private + 8 + 8
//! communication queues).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use vliw_ddg::{Ddg, DepKind};
use vliw_machine::{ClusterId, Machine};
use vliw_qrf::{allocate_queues, Lifetime};
use vliw_sched::Schedule;

/// Communication statistics of a partitioned schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Number of flow dependences whose endpoints are in different clusters.
    pub cross_cluster_values: usize,
    /// Number of flow dependences that stay inside one cluster.
    pub local_values: usize,
    /// The largest number of communication queues needed on any directed link
    /// between adjacent clusters.
    pub max_comm_queues_per_link: usize,
    /// The largest queue depth needed by any communication queue.
    pub max_comm_queue_depth: usize,
    /// The largest number of private queues needed by any cluster.
    pub max_private_queues_per_cluster: usize,
    /// The largest queue depth needed by any private queue.
    pub max_private_queue_depth: usize,
}

impl CommStats {
    /// True if the schedule fits the paper's basic cluster of Fig. 7: at most
    /// `private` private queues per cluster and `comm` communication queues per
    /// directed link (depths up to `depth`).
    pub fn fits_cluster_budget(&self, private: usize, comm: usize, depth: usize) -> bool {
        self.max_private_queues_per_cluster <= private
            && self.max_comm_queues_per_link <= comm
            && self.max_private_queue_depth <= depth
            && self.max_comm_queue_depth <= depth
    }

    /// Pool-split feasibility of the schedule on `machine` — the corrected
    /// Fig. 7 sizing predicate.
    ///
    /// Fig. 7's cluster owns three distinct storage pools: the private GPQs
    /// (sized by [`vliw_machine::ClusterConfig`]'s `private_queues` ×
    /// `queue_capacity`) and the ring-input / ring-output communication queues.
    /// In the link-based model the ring-output queues of a cluster *are* the
    /// ring-input queues of its neighbour — one directed link, sized by
    /// [`vliw_machine::RingConfig`]'s `queues_per_direction` ×
    /// `queue_capacity` — so the check is per cluster for the private pool and
    /// per directed link for the communication pools, each against its own
    /// depth budget.  A flat `(num_queues, capacity)` check over the
    /// machine-wide allocation gets both directions wrong: it charges
    /// communication lifetimes against the private budget (spuriously
    /// infeasible loops) and lets local pressure in one cluster borrow another
    /// cluster's queues (spuriously feasible loops).
    ///
    /// `CommStats` records machine-wide *maxima* per pool kind, so the check
    /// compares the worst cluster's demand against every cluster's budget —
    /// exact for the homogeneous machines every constructor in this workspace
    /// builds, conservative (never spuriously feasible, possibly spuriously
    /// infeasible) for a hand-built machine with differently-sized clusters.
    pub fn fits_pools(&self, machine: &Machine) -> bool {
        let private_ok = machine.cluster_ids().all(|c| {
            let cfg = machine.cluster(c);
            self.max_private_queues_per_cluster <= cfg.private_queues
                && self.max_private_queue_depth <= cfg.queue_capacity
        });
        let comm_ok = match machine.ring() {
            Some(r) => {
                self.max_comm_queues_per_link <= r.queues_per_direction
                    && self.max_comm_queue_depth <= r.queue_capacity
            }
            // A machine without a ring can route no cross-cluster value at all.
            None => self.cross_cluster_values == 0,
        };
        private_ok && comm_ok
    }

    /// Fraction of values that cross clusters (0 when the loop has no values).
    pub fn cross_fraction(&self) -> f64 {
        let total = self.cross_cluster_values + self.local_values;
        if total == 0 {
            0.0
        } else {
            self.cross_cluster_values as f64 / total as f64
        }
    }
}

/// Computes the communication statistics of `schedule` for `ddg` on `machine`.
pub fn comm_stats(ddg: &Ddg, machine: &Machine, schedule: &Schedule) -> CommStats {
    let ii = schedule.ii;
    let mut per_link: HashMap<(ClusterId, ClusterId), Vec<Lifetime>> = HashMap::new();
    let mut per_cluster: HashMap<ClusterId, Vec<Lifetime>> = HashMap::new();
    let mut cross = 0usize;
    let mut local = 0usize;

    for e in ddg.edges() {
        if e.kind != DepKind::Flow {
            continue;
        }
        let lt = Lifetime {
            producer: e.src,
            consumer: e.dst,
            start: u64::from(schedule.start_of(e.src)),
            end: u64::from(schedule.start_of(e.dst)) + u64::from(ii) * u64::from(e.distance),
        };
        let cs = schedule.cluster_of(machine, e.src);
        let cd = schedule.cluster_of(machine, e.dst);
        if cs == cd {
            local += 1;
            per_cluster.entry(cs).or_default().push(lt);
        } else {
            cross += 1;
            per_link.entry((cs, cd)).or_default().push(lt);
        }
    }

    let mut max_comm_queues = 0;
    let mut max_comm_depth = 0;
    for lts in per_link.values() {
        let alloc = allocate_queues(lts, ii);
        max_comm_queues = max_comm_queues.max(alloc.num_queues());
        max_comm_depth = max_comm_depth.max(alloc.max_queue_depth());
    }
    let mut max_private_queues = 0;
    let mut max_private_depth = 0;
    for lts in per_cluster.values() {
        let alloc = allocate_queues(lts, ii);
        max_private_queues = max_private_queues.max(alloc.num_queues());
        max_private_depth = max_private_depth.max(alloc.max_queue_depth());
    }

    CommStats {
        cross_cluster_values: cross,
        local_values: local,
        max_comm_queues_per_link: max_comm_queues,
        max_comm_queue_depth: max_comm_depth,
        max_private_queues_per_cluster: max_private_queues,
        max_private_queue_depth: max_private_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{partition_schedule, PartitionOptions};
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::LatencyModel as MachineLatency;
    use vliw_qrf::insert_copies;

    #[test]
    fn stats_cover_every_flow_edge() {
        let m = Machine::paper_clustered(4, MachineLatency::default());
        for l in kernels::all_kernels(LatencyModel::default()) {
            let r = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
            let flow_edges = l.ddg.edges().filter(|e| e.kind == DepKind::Flow).count();
            assert_eq!(r.comm.cross_cluster_values + r.comm.local_values, flow_edges, "{}", l.name);
        }
    }

    #[test]
    fn single_cluster_machine_has_no_cross_traffic() {
        let m = Machine::paper_clustered(1, MachineLatency::default());
        let l = kernels::daxpy(LatencyModel::default(), 100);
        let r = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        assert_eq!(r.comm.cross_cluster_values, 0);
        assert_eq!(r.comm.max_comm_queues_per_link, 0);
        assert!((r.comm.cross_fraction() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn kernel_fits_the_paper_cluster_budget() {
        // The paper concludes 8 private + 8 comm queues per direction suffice; these
        // small kernels must fit comfortably.
        let lat = LatencyModel::default();
        let m = Machine::paper_clustered(4, MachineLatency::default());
        for l in kernels::all_kernels(lat) {
            let rewritten = insert_copies(&l.ddg, &lat);
            let r = partition_schedule(&rewritten.ddg, &m, PartitionOptions::default()).unwrap();
            assert!(
                r.comm.fits_cluster_budget(8, 8, 8),
                "{} does not fit the Fig. 7 cluster: {:?}",
                l.name,
                r.comm
            );
        }
    }

    #[test]
    fn cross_fraction_is_bounded() {
        let m = Machine::paper_clustered(6, MachineLatency::default());
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let r = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        let f = r.comm.cross_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn pool_split_fixes_the_flat_fits_verdict() {
        use vliw_ddg::{DdgBuilder, OpKind};
        use vliw_machine::{ClusterConfig, ClusterId, RingConfig};
        use vliw_qrf::{allocate_queues, use_lifetimes};
        use vliw_sched::Schedule;

        // Two independent producer/consumer pairs whose lifetimes are mutually
        // Q-incompatible (same write slot mod II), so a flat machine-wide
        // allocation needs two queues no matter where the values live.
        let mut b = DdgBuilder::new(vliw_ddg::LatencyModel::unit());
        let l1 = b.op(OpKind::Load);
        let a1 = b.op(OpKind::Add);
        let l2 = b.op(OpKind::Load);
        let a2 = b.op(OpKind::Add);
        b.flow(l1, a1);
        b.flow(l2, a2);
        let g = b.finish();

        let cluster = |queues: usize| ClusterConfig {
            fu_classes: vec![vliw_ddg::OpClass::Memory, vliw_ddg::OpClass::Adder],
            copy_units: 0,
            private_queues: queues,
            queue_capacity: 8,
        };

        // Flip 1 — flat says "does not fit", pools say "fits": one value stays
        // in cluster 0, the other crosses to cluster 1.  Each pool holds one
        // lifetime, but the flat allocation charges both against the single
        // private queue.
        let m = Machine::new(
            "tight-private",
            vec![cluster(1), cluster(1)],
            Some(RingConfig { queues_per_direction: 8, queue_capacity: 8 }),
            MachineLatency::unit(),
        );
        let mem0 = m.fu_ids_of_class_in_cluster(ClusterId(0), vliw_ddg::OpClass::Memory)[0];
        let add0 = m.fu_ids_of_class_in_cluster(ClusterId(0), vliw_ddg::OpClass::Adder)[0];
        let add1 = m.fu_ids_of_class_in_cluster(ClusterId(1), vliw_ddg::OpClass::Adder)[0];
        let s = Schedule::new(4, vec![0, 2, 4, 6], vec![mem0, add1, mem0, add0]);
        let flat = allocate_queues(&use_lifetimes(&g, &s), s.ii);
        assert_eq!(flat.num_queues(), 2, "the lifetimes collide in a flat pool");
        let cfg = m.cluster(ClusterId(0));
        assert!(!flat.fits(cfg.private_queues, cfg.queue_capacity), "flat verdict: infeasible");
        let stats = comm_stats(&g, &m, &s);
        assert!(stats.fits_pools(&m), "pool-split verdict: each pool holds one lifetime");

        // Flip 2 — flat says "fits", pools say "does not fit": both values
        // cross the same directed link, which owns a single communication
        // queue; the flat check happily bins them into the ample private pool.
        let m = Machine::new(
            "tight-ring",
            vec![cluster(8), cluster(8)],
            Some(RingConfig { queues_per_direction: 1, queue_capacity: 8 }),
            MachineLatency::unit(),
        );
        let mem0 = m.fu_ids_of_class_in_cluster(ClusterId(0), vliw_ddg::OpClass::Memory)[0];
        let add1 = m.fu_ids_of_class_in_cluster(ClusterId(1), vliw_ddg::OpClass::Adder)[0];
        let s = Schedule::new(4, vec![0, 2, 4, 6], vec![mem0, add1, mem0, add1]);
        let flat = allocate_queues(&use_lifetimes(&g, &s), s.ii);
        let cfg = m.cluster(ClusterId(0));
        assert!(flat.fits(cfg.private_queues, cfg.queue_capacity), "flat verdict: feasible");
        let stats = comm_stats(&g, &m, &s);
        assert_eq!(stats.max_comm_queues_per_link, 2);
        assert!(!stats.fits_pools(&m), "pool-split verdict: the link is oversubscribed");
    }

    #[test]
    fn fits_pools_matches_the_paper_budget_on_the_paper_machine() {
        let lat = LatencyModel::default();
        let m = Machine::paper_clustered(4, MachineLatency::default());
        for l in kernels::all_kernels(lat) {
            let rewritten = insert_copies(&l.ddg, &lat);
            let r = partition_schedule(&rewritten.ddg, &m, PartitionOptions::default()).unwrap();
            // On the paper machine both budgets and both depths are 8, so the
            // pool-split predicate coincides with the legacy budget check.
            assert_eq!(r.comm.fits_pools(&m), r.comm.fits_cluster_budget(8, 8, 8), "{}", l.name);
        }
    }

    #[test]
    fn fits_cluster_budget_edge_cases() {
        let stats = CommStats {
            cross_cluster_values: 3,
            local_values: 5,
            max_comm_queues_per_link: 8,
            max_comm_queue_depth: 8,
            max_private_queues_per_cluster: 8,
            max_private_queue_depth: 8,
        };
        assert!(stats.fits_cluster_budget(8, 8, 8));
        assert!(!stats.fits_cluster_budget(7, 8, 8));
        assert!(!stats.fits_cluster_budget(8, 7, 8));
        assert!(!stats.fits_cluster_budget(8, 8, 7));
    }
}
