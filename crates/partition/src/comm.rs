//! Inter-cluster communication analysis.
//!
//! After partitioning, every flow dependence whose producer and consumer live in
//! different (adjacent) clusters must travel through one of the ring's communication
//! queues.  This module measures how many values cross clusters, how many
//! communication queues each directed link needs (using the same Q-compatibility
//! binning as the private QRFs), and how many private queues each cluster needs —
//! the numbers behind the paper's Fig. 7 cluster sizing (8 private + 8 + 8
//! communication queues).

use std::collections::HashMap;

use vliw_ddg::{Ddg, DepKind};
use vliw_machine::{ClusterId, Machine};
use vliw_qrf::{allocate_queues, Lifetime};
use vliw_sched::Schedule;

/// Communication statistics of a partitioned schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommStats {
    /// Number of flow dependences whose endpoints are in different clusters.
    pub cross_cluster_values: usize,
    /// Number of flow dependences that stay inside one cluster.
    pub local_values: usize,
    /// The largest number of communication queues needed on any directed link
    /// between adjacent clusters.
    pub max_comm_queues_per_link: usize,
    /// The largest queue depth needed by any communication queue.
    pub max_comm_queue_depth: usize,
    /// The largest number of private queues needed by any cluster.
    pub max_private_queues_per_cluster: usize,
    /// The largest queue depth needed by any private queue.
    pub max_private_queue_depth: usize,
}

impl CommStats {
    /// True if the schedule fits the paper's basic cluster of Fig. 7: at most
    /// `private` private queues per cluster and `comm` communication queues per
    /// directed link (depths up to `depth`).
    pub fn fits_cluster_budget(&self, private: usize, comm: usize, depth: usize) -> bool {
        self.max_private_queues_per_cluster <= private
            && self.max_comm_queues_per_link <= comm
            && self.max_private_queue_depth <= depth
            && self.max_comm_queue_depth <= depth
    }

    /// Fraction of values that cross clusters (0 when the loop has no values).
    pub fn cross_fraction(&self) -> f64 {
        let total = self.cross_cluster_values + self.local_values;
        if total == 0 {
            0.0
        } else {
            self.cross_cluster_values as f64 / total as f64
        }
    }
}

/// Computes the communication statistics of `schedule` for `ddg` on `machine`.
pub fn comm_stats(ddg: &Ddg, machine: &Machine, schedule: &Schedule) -> CommStats {
    let ii = schedule.ii;
    let mut per_link: HashMap<(ClusterId, ClusterId), Vec<Lifetime>> = HashMap::new();
    let mut per_cluster: HashMap<ClusterId, Vec<Lifetime>> = HashMap::new();
    let mut cross = 0usize;
    let mut local = 0usize;

    for e in ddg.edges() {
        if e.kind != DepKind::Flow {
            continue;
        }
        let lt = Lifetime {
            producer: e.src,
            consumer: e.dst,
            start: schedule.start_of(e.src),
            end: schedule.start_of(e.dst) + ii * e.distance,
        };
        let cs = schedule.cluster_of(machine, e.src);
        let cd = schedule.cluster_of(machine, e.dst);
        if cs == cd {
            local += 1;
            per_cluster.entry(cs).or_default().push(lt);
        } else {
            cross += 1;
            per_link.entry((cs, cd)).or_default().push(lt);
        }
    }

    let mut max_comm_queues = 0;
    let mut max_comm_depth = 0;
    for lts in per_link.values() {
        let alloc = allocate_queues(lts, ii);
        max_comm_queues = max_comm_queues.max(alloc.num_queues());
        max_comm_depth = max_comm_depth.max(alloc.max_queue_depth());
    }
    let mut max_private_queues = 0;
    let mut max_private_depth = 0;
    for lts in per_cluster.values() {
        let alloc = allocate_queues(lts, ii);
        max_private_queues = max_private_queues.max(alloc.num_queues());
        max_private_depth = max_private_depth.max(alloc.max_queue_depth());
    }

    CommStats {
        cross_cluster_values: cross,
        local_values: local,
        max_comm_queues_per_link: max_comm_queues,
        max_comm_queue_depth: max_comm_depth,
        max_private_queues_per_cluster: max_private_queues,
        max_private_queue_depth: max_private_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{partition_schedule, PartitionOptions};
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::LatencyModel as MachineLatency;
    use vliw_qrf::insert_copies;

    #[test]
    fn stats_cover_every_flow_edge() {
        let m = Machine::paper_clustered(4, MachineLatency::default());
        for l in kernels::all_kernels(LatencyModel::default()) {
            let r = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
            let flow_edges = l.ddg.edges().filter(|e| e.kind == DepKind::Flow).count();
            assert_eq!(r.comm.cross_cluster_values + r.comm.local_values, flow_edges, "{}", l.name);
        }
    }

    #[test]
    fn single_cluster_machine_has_no_cross_traffic() {
        let m = Machine::paper_clustered(1, MachineLatency::default());
        let l = kernels::daxpy(LatencyModel::default(), 100);
        let r = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        assert_eq!(r.comm.cross_cluster_values, 0);
        assert_eq!(r.comm.max_comm_queues_per_link, 0);
        assert!((r.comm.cross_fraction() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn kernel_fits_the_paper_cluster_budget() {
        // The paper concludes 8 private + 8 comm queues per direction suffice; these
        // small kernels must fit comfortably.
        let lat = LatencyModel::default();
        let m = Machine::paper_clustered(4, MachineLatency::default());
        for l in kernels::all_kernels(lat) {
            let rewritten = insert_copies(&l.ddg, &lat);
            let r = partition_schedule(&rewritten.ddg, &m, PartitionOptions::default()).unwrap();
            assert!(
                r.comm.fits_cluster_budget(8, 8, 8),
                "{} does not fit the Fig. 7 cluster: {:?}",
                l.name,
                r.comm
            );
        }
    }

    #[test]
    fn cross_fraction_is_bounded() {
        let m = Machine::paper_clustered(6, MachineLatency::default());
        let l = kernels::wide_parallel(LatencyModel::default(), 100);
        let r = partition_schedule(&l.ddg, &m, PartitionOptions::default()).unwrap();
        let f = r.comm.cross_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn fits_cluster_budget_edge_cases() {
        let stats = CommStats {
            cross_cluster_values: 3,
            local_values: 5,
            max_comm_queues_per_link: 8,
            max_comm_queue_depth: 8,
            max_private_queues_per_cluster: 8,
            max_private_queue_depth: 8,
        };
        assert!(stats.fits_cluster_budget(8, 8, 8));
        assert!(!stats.fits_cluster_budget(7, 8, 8));
        assert!(!stats.fits_cluster_budget(8, 7, 8));
        assert!(!stats.fits_cluster_budget(8, 8, 7));
    }
}
