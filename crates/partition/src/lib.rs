//! Partitioned modulo scheduling for clustered VLIW machines — the primary
//! contribution of *Partitioned Schedules for Clustered VLIW Architectures*
//! (Fernandes, Llosa & Topham, IPPS 1998).
//!
//! The partitioner extends iterative modulo scheduling with per-operation cluster
//! assignment under the machine's ring-communication constraint (values may only move
//! between adjacent clusters), backtracking out of communication conflicts and
//! escalating the II when the placement budget runs out.  After scheduling, the
//! communication analysis reports how many private and ring queues the schedule
//! needs, reproducing the cluster-sizing data behind Fig. 7.
//!
//! ```
//! use vliw_ddg::{kernels, LatencyModel};
//! use vliw_machine::Machine;
//! use vliw_partition::{partition_schedule, PartitionOptions};
//!
//! let lp = kernels::daxpy(LatencyModel::default(), 500);
//! let machine = Machine::paper_clustered(4, LatencyModel::default());
//! let result = partition_schedule(&lp.ddg, &machine, PartitionOptions::default()).unwrap();
//! assert!(result.schedule.validate(&lp.ddg, &machine).is_ok());
//! assert!(result.comm.fits_cluster_budget(8, 8, 8));
//! ```

pub mod comm;
pub mod scheduler;

pub use comm::{comm_stats, CommStats};
pub use scheduler::{
    partition_schedule, partition_schedule_with, PartitionOptions, PartitionResult,
    PartitionScratch,
};

// Re-export the shared error type so downstream users need a single import.
pub use vliw_sched::SchedError;

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::Machine;

    #[test]
    fn doc_example_runs() {
        let lp = kernels::daxpy(LatencyModel::default(), 500);
        let machine = Machine::paper_clustered(4, LatencyModel::default());
        let result = partition_schedule(&lp.ddg, &machine, PartitionOptions::default()).unwrap();
        assert!(result.schedule.validate(&lp.ddg, &machine).is_ok());
        assert!(result.comm.fits_cluster_budget(8, 8, 8));
    }
}
