//! Convenience builder for dependence graphs.
//!
//! [`DdgBuilder`] wraps [`Ddg`] and automatically derives flow-edge latencies from a
//! [`LatencyModel`], which is how the corpus generator, the unroller and the
//! hand-written example kernels construct graphs.

use crate::edge::{DepKind, EdgeId};
use crate::graph::{Ddg, Loop};
use crate::latency::LatencyModel;
use crate::op::{OpId, OpKind};

/// Incremental builder of a [`Ddg`].
#[derive(Debug, Clone)]
pub struct DdgBuilder {
    ddg: Ddg,
    latencies: LatencyModel,
}

impl DdgBuilder {
    /// Creates a builder using `latencies` to annotate flow edges.
    pub fn new(latencies: LatencyModel) -> Self {
        DdgBuilder { ddg: Ddg::new(), latencies }
    }

    /// [`DdgBuilder::new`] with space reserved for roughly `ops` operations,
    /// for callers that know the body size up front.
    pub fn with_capacity(latencies: LatencyModel, ops: usize) -> Self {
        DdgBuilder { ddg: Ddg::with_capacity(ops), latencies }
    }

    /// The latency model used by this builder.
    pub fn latencies(&self) -> &LatencyModel {
        &self.latencies
    }

    /// Adds an operation.
    pub fn op(&mut self, kind: OpKind) -> OpId {
        self.ddg.add_op(kind)
    }

    /// Adds several operations of the same kind, returning their ids.
    pub fn ops(&mut self, kind: OpKind, count: usize) -> Vec<OpId> {
        (0..count).map(|_| self.op(kind)).collect()
    }

    /// Adds an intra-iteration flow dependence; the latency is the producer's latency
    /// under the builder's [`LatencyModel`].
    pub fn flow(&mut self, src: OpId, dst: OpId) -> EdgeId {
        self.flow_carried(src, dst, 0)
    }

    /// Adds a loop-carried flow dependence with the given iteration distance.
    pub fn flow_carried(&mut self, src: OpId, dst: OpId, distance: u32) -> EdgeId {
        let lat = self.latencies.of(self.ddg.op(src).kind);
        self.ddg.add_edge(src, dst, DepKind::Flow, lat, distance)
    }

    /// Adds a memory-ordering dependence (latency 1).
    pub fn memory(&mut self, src: OpId, dst: OpId, distance: u32) -> EdgeId {
        self.ddg.add_edge(src, dst, DepKind::Memory, 1, distance)
    }

    /// Adds an anti dependence (latency 0 is illegal in a modulo reservation table,
    /// so the conventional delay of 1 is used).
    pub fn anti(&mut self, src: OpId, dst: OpId, distance: u32) -> EdgeId {
        self.ddg.add_edge(src, dst, DepKind::Anti, 1, distance)
    }

    /// Adds an output dependence (delay 1).
    pub fn output(&mut self, src: OpId, dst: OpId, distance: u32) -> EdgeId {
        self.ddg.add_edge(src, dst, DepKind::Output, 1, distance)
    }

    /// Adds an edge with an explicit latency, bypassing the latency model.
    pub fn edge_with_latency(
        &mut self,
        src: OpId,
        dst: OpId,
        kind: DepKind,
        latency: u32,
        distance: u32,
    ) -> EdgeId {
        self.ddg.add_edge(src, dst, kind, latency, distance)
    }

    /// Finishes construction and returns the graph.
    ///
    /// # Panics
    ///
    /// Panics if the constructed graph is structurally invalid (this indicates a bug
    /// in the caller, not a recoverable condition).
    pub fn finish(self) -> Ddg {
        if let Err(e) = self.ddg.validate() {
            panic!("DdgBuilder produced an invalid graph: {e}");
        }
        self.ddg
    }

    /// Finishes construction and wraps the graph in a [`Loop`].
    pub fn finish_loop(self, name: impl Into<String>, trip_count: u64) -> Loop {
        Loop::new(name, self.finish(), trip_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_edges_use_producer_latency() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let mul = b.op(OpKind::Mul);
        let add = b.op(OpKind::Add);
        b.flow(ld, mul);
        b.flow(mul, add);
        let g = b.finish();
        let lats: Vec<u32> = g.edges().map(|e| e.latency).collect();
        assert_eq!(lats, vec![2, 2]);
    }

    #[test]
    fn carried_edges_have_distance() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let a = b.op(OpKind::Add);
        b.flow_carried(a, a, 1);
        let g = b.finish();
        assert_eq!(g.edges().next().unwrap().distance, 1);
    }

    #[test]
    fn ops_helper_creates_count() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let loads = b.ops(OpKind::Load, 5);
        assert_eq!(loads.len(), 5);
        let g = b.finish();
        assert_eq!(g.num_ops(), 5);
    }

    #[test]
    fn non_flow_edges_have_small_latency() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let st = b.op(OpKind::Store);
        let ld = b.op(OpKind::Load);
        let add = b.op(OpKind::Add);
        b.memory(st, ld, 1);
        b.anti(add, st, 0);
        b.output(add, add, 2);
        let g = b.finish();
        assert!(g.edges().all(|e| e.latency == 1));
    }

    #[test]
    fn finish_loop_carries_metadata() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        b.op(OpKind::Add);
        let l = b.finish_loop("tiny", 42);
        assert_eq!(l.name, "tiny");
        assert_eq!(l.trip_count, 42);
        assert_eq!(l.ops_per_iteration(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid graph")]
    fn finish_panics_on_invalid_graph() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let a = b.op(OpKind::Add);
        let c = b.op(OpKind::Mul);
        b.flow(a, c);
        b.flow(c, a); // distance-0 cycle
        let _ = b.finish();
    }

    #[test]
    fn explicit_latency_edge() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let a = b.op(OpKind::Add);
        let c = b.op(OpKind::Mul);
        b.edge_with_latency(a, c, DepKind::Flow, 7, 0);
        let g = b.finish();
        assert_eq!(g.edges().next().unwrap().latency, 7);
    }
}
