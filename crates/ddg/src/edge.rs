//! Dependence edges.
//!
//! Modulo scheduling needs two numbers per dependence: the **latency** (minimum
//! number of cycles between the issue of the producer and the issue of the consumer)
//! and the **distance** (how many iterations later the consumer executes, often
//! written omega).  Loop-carried dependences have `distance > 0`; intra-iteration
//! dependences have `distance == 0`.

use std::fmt;

use crate::op::OpId;

/// Identifier of an edge inside a [`crate::Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Kind of dependence between two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True (read-after-write) data dependence: the destination consumes the value
    /// produced by the source.  Only flow dependences give rise to register (or
    /// queue) lifetimes.
    Flow,
    /// Anti (write-after-read) dependence.
    Anti,
    /// Output (write-after-write) dependence.
    Output,
    /// Memory ordering dependence between loads and stores whose addresses may alias.
    Memory,
}

impl DepKind {
    /// All dependence kinds.
    pub const ALL: [DepKind; 4] = [DepKind::Flow, DepKind::Anti, DepKind::Output, DepKind::Memory];

    /// True if the dependence carries a data value (and therefore needs storage).
    #[inline]
    pub fn carries_value(self) -> bool {
        matches!(self, DepKind::Flow)
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Memory => "mem",
        };
        f.write_str(s)
    }
}

/// A dependence edge of the data dependence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Identifier of this edge.
    pub id: EdgeId,
    /// Source (producer) operation.
    pub src: OpId,
    /// Destination (consumer) operation.
    pub dst: OpId,
    /// Dependence kind.
    pub kind: DepKind,
    /// Minimum issue-to-issue delay in cycles.
    ///
    /// For a flow dependence this is the latency of the producing operation; for
    /// anti/output/memory dependences it is usually 0 or 1.
    pub latency: u32,
    /// Iteration distance (omega).  `0` means both ends belong to the same iteration.
    pub distance: u32,
}

impl Edge {
    /// Creates an edge.
    pub fn new(
        id: EdgeId,
        src: OpId,
        dst: OpId,
        kind: DepKind,
        latency: u32,
        distance: u32,
    ) -> Self {
        Edge { id, src, dst, kind, latency, distance }
    }

    /// True for loop-carried dependences (`distance > 0`).
    #[inline]
    pub fn is_loop_carried(&self) -> bool {
        self.distance > 0
    }

    /// The scheduling constraint imposed by this edge for a candidate initiation
    /// interval `ii`:
    ///
    /// `start(dst) >= start(src) + latency - ii * distance`
    ///
    /// Returns the signed weight `latency - ii * distance` used by RecMII
    /// computation and by the scheduler's earliest-start calculation.
    #[inline]
    pub fn weight_at(&self, ii: u32) -> i64 {
        self.latency as i64 - (ii as i64) * (self.distance as i64)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} [{} lat={} dist={}]",
            self.src, self.dst, self.kind, self.latency, self.distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_flow_edges_carry_values() {
        assert!(DepKind::Flow.carries_value());
        assert!(!DepKind::Anti.carries_value());
        assert!(!DepKind::Output.carries_value());
        assert!(!DepKind::Memory.carries_value());
    }

    #[test]
    fn loop_carried_detection() {
        let e0 = Edge::new(EdgeId(0), OpId(0), OpId(1), DepKind::Flow, 2, 0);
        let e1 = Edge::new(EdgeId(1), OpId(1), OpId(0), DepKind::Flow, 1, 1);
        assert!(!e0.is_loop_carried());
        assert!(e1.is_loop_carried());
    }

    #[test]
    fn weight_at_various_ii() {
        let e = Edge::new(EdgeId(0), OpId(0), OpId(1), DepKind::Flow, 3, 2);
        assert_eq!(e.weight_at(1), 1);
        assert_eq!(e.weight_at(2), -1);
        assert_eq!(e.weight_at(10), -17);
        let intra = Edge::new(EdgeId(1), OpId(0), OpId(1), DepKind::Flow, 3, 0);
        // Intra-iteration edges do not depend on the II.
        assert_eq!(intra.weight_at(1), 3);
        assert_eq!(intra.weight_at(100), 3);
    }

    #[test]
    fn display_formats() {
        let e = Edge::new(EdgeId(5), OpId(0), OpId(1), DepKind::Memory, 1, 3);
        let s = e.to_string();
        assert!(s.contains("op0"));
        assert!(s.contains("op1"));
        assert!(s.contains("mem"));
        assert!(s.contains("dist=3"));
        assert_eq!(EdgeId(5).to_string(), "e5");
    }
}
