//! Data-dependence-graph (DDG) intermediate representation for modulo-scheduled
//! innermost loops.
//!
//! This crate is the IR substrate of the reproduction of *Partitioned Schedules for
//! Clustered VLIW Architectures* (Fernandes, Llosa & Topham, IPPS 1998).  A loop body
//! is represented as a graph of [`Operation`]s connected by dependence [`Edge`]s, each
//! edge carrying a `latency` (the delay in cycles that must elapse between the issue
//! of the source and the issue of the destination) and a `distance` (the number of
//! loop iterations separating the two operations, also called *omega*).
//!
//! The representation is deliberately close to the one used by the modulo-scheduling
//! literature of the 1990s: operations are typed by the functional-unit class they
//! occupy ([`OpClass`]), arithmetic is register-to-register, and memory traffic is
//! expressed with explicit load/store operations.
//!
//! # Quick example
//!
//! ```
//! use vliw_ddg::{DdgBuilder, LatencyModel, OpKind};
//!
//! // s = s + a[i] * b[i]   (dot product step)
//! let lat = LatencyModel::default();
//! let mut b = DdgBuilder::new(lat);
//! let a = b.op(OpKind::Load);
//! let bb = b.op(OpKind::Load);
//! let m = b.op(OpKind::Mul);
//! let s = b.op(OpKind::Add);
//! b.flow(a, m);
//! b.flow(bb, m);
//! b.flow(m, s);
//! b.flow_carried(s, s, 1); // the accumulator recurrence
//! let ddg = b.finish();
//! assert_eq!(ddg.num_ops(), 4);
//! assert!(ddg.has_recurrence());
//! ```

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod edge;
pub mod graph;
pub mod kernels;
pub mod latency;
pub mod op;

pub use analysis::{CriticalPath, GraphStats};
pub use builder::DdgBuilder;
pub use edge::{DepKind, Edge, EdgeId};
pub use graph::{Ddg, DdgError, Loop, ValidateScratch};
pub use latency::LatencyModel;
pub use op::{OpClass, OpId, OpKind, Operation};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_builds() {
        let lat = LatencyModel::default();
        let mut b = DdgBuilder::new(lat);
        let a = b.op(OpKind::Load);
        let m = b.op(OpKind::Mul);
        b.flow(a, m);
        let ddg = b.finish();
        assert_eq!(ddg.num_ops(), 2);
        assert_eq!(ddg.num_edges(), 1);
    }
}
