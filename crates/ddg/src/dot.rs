//! Graphviz (DOT) export of dependence graphs, mainly for debugging and
//! documentation.

use std::fmt::Write as _;

use crate::edge::DepKind;
use crate::graph::Ddg;

/// Renders `ddg` in Graphviz DOT syntax.
///
/// Operations are labelled with their id and mnemonic; loop-carried edges are drawn
/// dashed and annotated with their distance.
pub fn to_dot(ddg: &Ddg, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(name));
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for op in ddg.ops() {
        let _ = writeln!(out, "  n{} [label=\"{} {}\"];", op.id.0, op.id, op.kind);
    }
    for e in ddg.edges() {
        let style = if e.is_loop_carried() { "dashed" } else { "solid" };
        let color = match e.kind {
            DepKind::Flow => "black",
            DepKind::Anti => "blue",
            DepKind::Output => "purple",
            DepKind::Memory => "red",
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [style={}, color={}, label=\"{},{}\"];",
            e.src.0, e.dst.0, style, color, e.latency, e.distance
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c == '"' || c == '\\' { '_' } else { c }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::latency::LatencyModel;
    use crate::op::OpKind;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let ld = b.op(OpKind::Load);
        let add = b.op(OpKind::Add);
        b.flow(ld, add);
        b.flow_carried(add, add, 1);
        let g = b.finish();
        let dot = to_dot(&g, "example");
        assert!(dot.starts_with("digraph \"example\""));
        assert!(dot.contains("n0 [label=\"op0 ld\"]"));
        assert!(dot.contains("n1 [label=\"op1 add\"]"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_name_is_sanitized() {
        let g = Ddg::new();
        let dot = to_dot(&g, "we\"ird\\name");
        assert!(!dot.contains('\\'));
        assert!(dot.contains("we_ird_name"));
    }

    #[test]
    fn edge_colors_by_kind() {
        let mut b = DdgBuilder::new(LatencyModel::default());
        let st = b.op(OpKind::Store);
        let ld = b.op(OpKind::Load);
        b.memory(st, ld, 0);
        let g = b.finish();
        let dot = to_dot(&g, "mem");
        assert!(dot.contains("color=red"));
    }
}
