//! Hand-written example kernels.
//!
//! These are classic numerical inner loops of the kind the Perfect Club benchmarks
//! contain; the examples and the integration tests use them as small, fully
//! understood inputs alongside the synthetic corpus.

use crate::builder::DdgBuilder;
use crate::graph::Loop;
use crate::latency::LatencyModel;
use crate::op::OpKind;

/// `s = s + a[i] * b[i]` — the dot-product (DDOT) kernel.
///
/// Two loads feed a multiply that feeds an accumulating add; the add carries a
/// distance-1 recurrence on itself.  Address increments are modelled explicitly.
pub fn dot_product(lat: LatencyModel, trip_count: u64) -> Loop {
    let mut b = DdgBuilder::new(lat);
    let addr_a = b.op(OpKind::AddressAdd);
    let addr_b = b.op(OpKind::AddressAdd);
    let load_a = b.op(OpKind::Load);
    let load_b = b.op(OpKind::Load);
    let mul = b.op(OpKind::Mul);
    let acc = b.op(OpKind::Add);
    b.flow(addr_a, load_a);
    b.flow(addr_b, load_b);
    b.flow_carried(addr_a, addr_a, 1);
    b.flow_carried(addr_b, addr_b, 1);
    b.flow(load_a, mul);
    b.flow(load_b, mul);
    b.flow(mul, acc);
    b.flow_carried(acc, acc, 1);
    b.finish_loop("dot_product", trip_count)
}

/// `y[i] = y[i] + alpha * x[i]` — the DAXPY kernel.
///
/// Loads of `x[i]` and `y[i]`, a multiply by the loop-invariant `alpha`, an add and a
/// store back to `y[i]`; no recurrence other than address updates.
pub fn daxpy(lat: LatencyModel, trip_count: u64) -> Loop {
    let mut b = DdgBuilder::new(lat);
    let addr_x = b.op(OpKind::AddressAdd);
    let addr_y = b.op(OpKind::AddressAdd);
    let load_x = b.op(OpKind::Load);
    let load_y = b.op(OpKind::Load);
    let mul = b.op(OpKind::Mul);
    let add = b.op(OpKind::Add);
    let store = b.op(OpKind::Store);
    b.flow_carried(addr_x, addr_x, 1);
    b.flow_carried(addr_y, addr_y, 1);
    b.flow(addr_x, load_x);
    b.flow(addr_y, load_y);
    b.flow(addr_y, store);
    b.flow(load_x, mul);
    b.flow(load_y, add);
    b.flow(mul, add);
    b.flow(add, store);
    b.memory(load_y, store, 0);
    b.finish_loop("daxpy", trip_count)
}

/// First-order recurrence `x[i] = a[i] * x[i-1] + b[i]` (Livermore kernel 11 style).
///
/// The multiply-add chain carries a distance-1 recurrence, so the loop's II is bound
/// by RecMII rather than by resources on all but the narrowest machines.
pub fn first_order_recurrence(lat: LatencyModel, trip_count: u64) -> Loop {
    let mut b = DdgBuilder::new(lat);
    let addr = b.op(OpKind::AddressAdd);
    let load_a = b.op(OpKind::Load);
    let load_b = b.op(OpKind::Load);
    let mul = b.op(OpKind::Mul);
    let add = b.op(OpKind::Add);
    let store = b.op(OpKind::Store);
    b.flow_carried(addr, addr, 1);
    b.flow(addr, load_a);
    b.flow(addr, load_b);
    b.flow(addr, store);
    b.flow(load_a, mul);
    b.flow_carried(add, mul, 1); // x[i-1] feeds the multiply of iteration i
    b.flow(mul, add);
    b.flow(load_b, add);
    b.flow(add, store);
    b.finish_loop("first_order_recurrence", trip_count)
}

/// A wide, parallelism-rich body: `d[i] = (a[i] + b[i]) * (a[i] - b[i]) + c[i]^2`.
///
/// Plenty of independent work per iteration and a value (`a[i]`, `b[i]`) consumed
/// twice, which exercises the copy-insertion pass.
pub fn wide_parallel(lat: LatencyModel, trip_count: u64) -> Loop {
    let mut b = DdgBuilder::new(lat);
    let addr = b.op(OpKind::AddressAdd);
    let load_a = b.op(OpKind::Load);
    let load_b = b.op(OpKind::Load);
    let load_c = b.op(OpKind::Load);
    let sum = b.op(OpKind::Add);
    let diff = b.op(OpKind::Sub);
    let prod = b.op(OpKind::Mul);
    let csq = b.op(OpKind::Mul);
    let total = b.op(OpKind::Add);
    let store = b.op(OpKind::Store);
    b.flow_carried(addr, addr, 1);
    for ld in [load_a, load_b, load_c] {
        b.flow(addr, ld);
    }
    b.flow(addr, store);
    b.flow(load_a, sum);
    b.flow(load_b, sum);
    b.flow(load_a, diff);
    b.flow(load_b, diff);
    b.flow(sum, prod);
    b.flow(diff, prod);
    b.flow(load_c, csq);
    b.flow(load_c, csq);
    b.flow(prod, total);
    b.flow(csq, total);
    b.flow(total, store);
    b.finish_loop("wide_parallel", trip_count)
}

/// All hand-written kernels with the given latency model and a representative trip
/// count each.
pub fn all_kernels(lat: LatencyModel) -> Vec<Loop> {
    vec![
        dot_product(lat, 1000),
        daxpy(lat, 500),
        first_order_recurrence(lat, 200),
        wide_parallel(lat, 800),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphStats;

    #[test]
    fn all_kernels_are_valid() {
        for l in all_kernels(LatencyModel::default()) {
            assert!(l.ddg.validate().is_ok(), "kernel {} is invalid", l.name);
            assert!(l.ddg.num_ops() >= 4);
            assert!(l.trip_count > 0);
        }
    }

    #[test]
    fn dot_product_has_accumulator_recurrence() {
        let l = dot_product(LatencyModel::default(), 100);
        assert!(l.ddg.has_recurrence());
        let stats = GraphStats::of(&l.ddg);
        assert_eq!(stats.ops, 6);
        assert!(stats.carried_edges >= 3);
    }

    #[test]
    fn daxpy_has_no_value_recurrence_beyond_addresses() {
        let l = daxpy(LatencyModel::default(), 100);
        // Only the address-increment self-loops are recurrences; the value chain is
        // acyclic, so the critical path is short and fan-out moderate.
        assert!(l.ddg.has_recurrence());
        assert_eq!(l.ddg.num_ops(), 7);
        assert!(l.ddg.max_fanout() >= 3); // addr_y feeds load, store and itself
    }

    #[test]
    fn first_order_recurrence_has_cross_op_cycle() {
        let l = first_order_recurrence(LatencyModel::default(), 100);
        let sccs = crate::analysis::strongly_connected_components(&l.ddg);
        assert!(sccs.iter().any(|s| s.len() >= 2), "mul/add recurrence circuit expected");
    }

    #[test]
    fn wide_parallel_has_multi_consumer_values() {
        let l = wide_parallel(LatencyModel::default(), 100);
        assert!(l.ddg.max_fanout() >= 2);
        assert!(!crate::analysis::strongly_connected_components(&l.ddg)
            .iter()
            .any(|s| s.len() > 1));
    }

    #[test]
    fn kernels_respect_latency_model() {
        let unit = dot_product(LatencyModel::unit(), 10);
        assert!(unit.ddg.edges().all(|e| e.latency == 1));
        let long = dot_product(LatencyModel::long_latency(), 10);
        assert!(long.ddg.edges().any(|e| e.latency == 4));
    }
}
