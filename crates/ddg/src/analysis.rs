//! Structural analyses over dependence graphs: strongly connected components,
//! critical paths, depth/height of the acyclic subgraph and aggregate statistics.

use crate::graph::Ddg;
use crate::op::{OpClass, OpId};

/// Tarjan's strongly-connected-components algorithm (iterative formulation).
///
/// Returns the SCCs in reverse topological order; every operation appears in exactly
/// one component.  SCCs with more than one node (or single nodes with a self edge)
/// correspond to the paper's *recurrence circuits*.
pub fn strongly_connected_components(ddg: &Ddg) -> Vec<Vec<OpId>> {
    let n = ddg.num_ops();
    const UNVISITED: usize = usize::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<OpId>> = Vec::new();

    // Explicit DFS stack: (node, iterator position over its successors).
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, succ_pos)) = call_stack.last() {
            if succ_pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            // Successor list for v.
            let succs: Vec<usize> = ddg.succ_edges(OpId(v as u32)).map(|e| e.dst.index()).collect();
            if succ_pos < succs.len() {
                call_stack.last_mut().expect("frame just observed").1 += 1;
                let w = succs[succ_pos];
                if index[w] == UNVISITED {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // All successors processed: maybe emit an SCC, then return to caller.
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(OpId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    sccs.push(component);
                }
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
    }
    sccs
}

/// Result of [`critical_path`]: the longest latency chain through the distance-0
/// subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Sum of edge latencies along the longest chain, plus nothing for the final op
    /// (issue-to-issue convention).
    pub length: u32,
    /// Operations on one longest chain, in dependence order.
    pub ops: Vec<OpId>,
}

/// Computes the critical path of the intra-iteration subgraph.
///
/// Loop-carried edges are ignored: the critical path bounds the length of a single
/// iteration's schedule, not the recurrence-constrained II.
pub fn critical_path(ddg: &Ddg) -> CriticalPath {
    let order = match ddg.topo_order_intra() {
        Some(o) => o,
        None => return CriticalPath { length: 0, ops: Vec::new() },
    };
    let n = ddg.num_ops();
    let mut dist = vec![0u32; n];
    let mut pred: Vec<Option<OpId>> = vec![None; n];
    for &op in &order {
        for e in ddg.succ_edges(op) {
            if e.distance != 0 {
                continue;
            }
            let cand = dist[op.index()] + e.latency;
            if cand > dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                pred[e.dst.index()] = Some(op);
            }
        }
    }
    let (mut best_op, mut best) = (None, 0u32);
    for op in ddg.op_ids() {
        if dist[op.index()] >= best {
            best = dist[op.index()];
            best_op = Some(op);
        }
    }
    let mut ops = Vec::new();
    let mut cur = best_op;
    while let Some(op) = cur {
        ops.push(op);
        cur = pred[op.index()];
    }
    ops.reverse();
    CriticalPath { length: best, ops }
}

/// Per-operation *depth*: longest latency chain from any source of the distance-0
/// subgraph to the operation (0 for sources).
pub fn depths(ddg: &Ddg) -> Vec<u32> {
    let order = ddg.topo_order_intra().unwrap_or_default();
    let mut depth = vec![0u32; ddg.num_ops()];
    for &op in &order {
        for e in ddg.succ_edges(op) {
            if e.distance == 0 {
                depth[e.dst.index()] = depth[e.dst.index()].max(depth[op.index()] + e.latency);
            }
        }
    }
    depth
}

/// Per-operation *height*: longest latency chain from the operation to any sink of
/// the distance-0 subgraph.  Height is the classic modulo-scheduling priority: an
/// operation with a large height has a long chain of dependents and should be placed
/// early.
pub fn heights(ddg: &Ddg) -> Vec<u32> {
    let order = ddg.topo_order_intra().unwrap_or_default();
    let mut height = vec![0u32; ddg.num_ops()];
    for &op in order.iter().rev() {
        for e in ddg.succ_edges(op) {
            if e.distance == 0 {
                height[op.index()] = height[op.index()].max(height[e.dst.index()] + e.latency);
            }
        }
    }
    height
}

/// Aggregate statistics of a dependence graph, used by the corpus generator tests and
/// by the experiment reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of operations.
    pub ops: usize,
    /// Number of edges.
    pub edges: usize,
    /// Operations per functional-unit class.
    pub class_counts: [usize; OpClass::COUNT],
    /// Number of loop-carried edges.
    pub carried_edges: usize,
    /// Whether the graph has at least one recurrence circuit.
    pub has_recurrence: bool,
    /// Maximum value fan-out.
    pub max_fanout: usize,
    /// Critical-path length of the distance-0 subgraph.
    pub critical_path: u32,
}

impl GraphStats {
    /// Computes the statistics of `ddg`.
    pub fn of(ddg: &Ddg) -> Self {
        GraphStats {
            ops: ddg.num_ops(),
            edges: ddg.num_edges(),
            class_counts: ddg.class_counts(),
            carried_edges: ddg.edges().filter(|e| e.is_loop_carried()).count(),
            has_recurrence: ddg.has_recurrence(),
            max_fanout: ddg.max_fanout(),
            critical_path: critical_path(ddg).length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::DepKind;
    use crate::op::OpKind;

    fn chain(n: usize) -> Ddg {
        let mut g = Ddg::new();
        let ops: Vec<OpId> = (0..n).map(|_| g.add_op(OpKind::Add)).collect();
        for w in ops.windows(2) {
            g.add_edge(w[0], w[1], DepKind::Flow, 1, 0);
        }
        g
    }

    #[test]
    fn scc_of_a_chain_is_all_singletons() {
        let g = chain(5);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 5);
        assert!(sccs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn scc_finds_recurrence_circuit() {
        let mut g = Ddg::new();
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Mul);
        let c = g.add_op(OpKind::Load);
        g.add_edge(a, b, DepKind::Flow, 1, 0);
        g.add_edge(b, a, DepKind::Flow, 2, 1);
        g.add_edge(c, a, DepKind::Flow, 2, 0);
        let sccs = strongly_connected_components(&g);
        let big: Vec<_> = sccs.iter().filter(|s| s.len() > 1).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].as_slice(), &[a, b]);
    }

    #[test]
    fn scc_handles_two_disjoint_cycles() {
        let mut g = Ddg::new();
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Add);
        let c = g.add_op(OpKind::Mul);
        let d = g.add_op(OpKind::Mul);
        g.add_edge(a, b, DepKind::Flow, 1, 0);
        g.add_edge(b, a, DepKind::Flow, 1, 1);
        g.add_edge(c, d, DepKind::Flow, 1, 0);
        g.add_edge(d, c, DepKind::Flow, 1, 2);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.iter().filter(|s| s.len() == 2).count(), 2);
    }

    #[test]
    fn critical_path_of_chain() {
        let g = chain(4);
        let cp = critical_path(&g);
        assert_eq!(cp.length, 3);
        assert_eq!(cp.ops.len(), 4);
    }

    #[test]
    fn critical_path_picks_longest_branch() {
        let mut g = Ddg::new();
        let ld = g.add_op(OpKind::Load);
        let mul = g.add_op(OpKind::Mul);
        let add = g.add_op(OpKind::Add);
        let st = g.add_op(OpKind::Store);
        g.add_edge(ld, mul, DepKind::Flow, 2, 0);
        g.add_edge(ld, add, DepKind::Flow, 2, 0);
        g.add_edge(mul, st, DepKind::Flow, 2, 0);
        g.add_edge(add, st, DepKind::Flow, 1, 0);
        let cp = critical_path(&g);
        assert_eq!(cp.length, 4);
        assert_eq!(cp.ops, vec![ld, mul, st]);
    }

    #[test]
    fn depths_and_heights_are_consistent() {
        let g = chain(5);
        let d = depths(&g);
        let h = heights(&g);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(h, vec![4, 3, 2, 1, 0]);
        // depth + height == critical path for ops on the critical path of a chain.
        let cp = critical_path(&g).length;
        for i in 0..5 {
            assert_eq!(d[i] + h[i], cp);
        }
    }

    #[test]
    fn heights_ignore_loop_carried_edges() {
        let mut g = Ddg::new();
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Add);
        g.add_edge(a, b, DepKind::Flow, 1, 0);
        g.add_edge(b, a, DepKind::Flow, 1, 1); // carried back edge
        let h = heights(&g);
        assert_eq!(h[a.index()], 1);
        assert_eq!(h[b.index()], 0);
    }

    #[test]
    fn stats_of_small_graph() {
        let mut g = Ddg::new();
        let ld = g.add_op(OpKind::Load);
        let mul = g.add_op(OpKind::Mul);
        let st = g.add_op(OpKind::Store);
        g.add_edge(ld, mul, DepKind::Flow, 2, 0);
        g.add_edge(mul, st, DepKind::Flow, 2, 0);
        g.add_edge(mul, mul, DepKind::Flow, 2, 1);
        let s = GraphStats::of(&g);
        assert_eq!(s.ops, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.carried_edges, 1);
        assert!(s.has_recurrence);
        assert_eq!(s.class_counts, [2, 0, 1, 0]);
        assert_eq!(s.critical_path, 4);
    }

    #[test]
    fn empty_graph_analyses() {
        let g = Ddg::new();
        assert!(strongly_connected_components(&g).is_empty());
        assert_eq!(critical_path(&g).length, 0);
        assert!(depths(&g).is_empty());
        assert!(heights(&g).is_empty());
    }
}
