//! Operation latency model.
//!
//! The paper's experimental framework (described in the companion technical report
//! ECS-CSG-34-97) uses fixed per-opcode latencies typical of mid-1990s VLIW designs.
//! The exact values are a machine parameter; the defaults below are the conventional
//! ones used throughout the modulo-scheduling literature of the period (loads take a
//! couple of cycles, multiplies are pipelined with a small latency, divides are
//! long-latency).

use crate::op::OpKind;

/// Per-opcode issue-to-result latencies, in cycles.
///
/// All functional units are assumed fully pipelined (a new operation can be issued to
/// a unit every cycle), so the latency only constrains dependent operations, not the
/// unit's own occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyModel {
    /// Latency of a load.
    pub load: u32,
    /// Latency of a store (to a dependent memory operation).
    pub store: u32,
    /// Latency of an add/sub/compare/address computation.
    pub add: u32,
    /// Latency of a multiply.
    pub mul: u32,
    /// Latency of a divide.
    pub div: u32,
    /// Latency of a queue-to-queue copy executed on the copy unit.
    pub copy: u32,
}

impl Default for LatencyModel {
    /// Default latencies: load 2, store 1, add 1, mul 2, div 8, copy 1.
    fn default() -> Self {
        LatencyModel { load: 2, store: 1, add: 1, mul: 2, div: 8, copy: 1 }
    }
}

impl LatencyModel {
    /// A model in which every operation has unit latency; useful for tests where the
    /// schedule arithmetic should be easy to follow by hand.
    pub fn unit() -> Self {
        LatencyModel { load: 1, store: 1, add: 1, mul: 1, div: 1, copy: 1 }
    }

    /// An aggressive model with longer memory and multiply latencies, used to stress
    /// register pressure (longer lifetimes) in the experiments.
    pub fn long_latency() -> Self {
        LatencyModel { load: 4, store: 1, add: 1, mul: 4, div: 16, copy: 1 }
    }

    /// Latency of `kind` under this model.
    #[inline]
    pub fn of(&self, kind: OpKind) -> u32 {
        match kind {
            OpKind::Load => self.load,
            OpKind::Store => self.store,
            OpKind::Add | OpKind::Sub | OpKind::Compare | OpKind::AddressAdd => self.add,
            OpKind::Mul => self.mul,
            OpKind::Div => self.div,
            OpKind::Copy => self.copy,
        }
    }

    /// The largest latency of any opcode under this model.
    pub fn max_latency(&self) -> u32 {
        OpKind::ALL.iter().map(|&k| self.of(k)).max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_are_positive() {
        let lat = LatencyModel::default();
        for kind in OpKind::ALL {
            assert!(lat.of(kind) >= 1, "latency of {kind} must be at least 1");
        }
    }

    #[test]
    fn unit_model_is_all_ones() {
        let lat = LatencyModel::unit();
        for kind in OpKind::ALL {
            assert_eq!(lat.of(kind), 1);
        }
        assert_eq!(lat.max_latency(), 1);
    }

    #[test]
    fn long_latency_dominates_default() {
        let def = LatencyModel::default();
        let long = LatencyModel::long_latency();
        for kind in OpKind::ALL {
            assert!(long.of(kind) >= def.of(kind) || kind == OpKind::Copy || kind == OpKind::Store);
        }
        assert_eq!(long.max_latency(), 16);
    }

    #[test]
    fn opcode_to_latency_mapping() {
        let lat = LatencyModel::default();
        assert_eq!(lat.of(OpKind::Load), 2);
        assert_eq!(lat.of(OpKind::Add), 1);
        assert_eq!(lat.of(OpKind::AddressAdd), 1);
        assert_eq!(lat.of(OpKind::Mul), 2);
        assert_eq!(lat.of(OpKind::Div), 8);
        assert_eq!(lat.of(OpKind::Copy), 1);
        assert_eq!(lat.max_latency(), 8);
    }
}
