//! Operations and operation classes.
//!
//! An [`Operation`] is a single machine-level instruction of the loop body.  The
//! paper's machine model issues operations on four classes of functional unit —
//! load/store, adder, multiplier and the dedicated copy unit — so every [`OpKind`]
//! maps onto an [`OpClass`] that the scheduler uses for resource accounting.

use std::fmt;

/// Identifier of an operation inside a [`crate::Ddg`].
///
/// Operation ids are dense indices assigned in insertion order; they are stable for
/// the lifetime of a graph and are used to index per-operation side tables by the
/// scheduler, the register allocators and the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// Returns the id as a `usize` index, for use with side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Concrete opcode of an operation.
///
/// The set is intentionally small: the experiments of the paper only distinguish
/// operations by the functional unit they occupy and by their latency, so a handful
/// of representative opcodes per class is sufficient to model the Perfect-Club-like
/// loop bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Memory read; occupies the load/store unit.
    Load,
    /// Memory write; occupies the load/store unit.
    Store,
    /// Integer or floating-point addition/subtraction; occupies the adder.
    Add,
    /// Subtraction, kept distinct from [`OpKind::Add`] for corpus realism.
    Sub,
    /// Comparison; occupies the adder.
    Compare,
    /// Multiplication; occupies the multiplier.
    Mul,
    /// Division; occupies the multiplier (long latency).
    Div,
    /// Inter-queue copy, executed by the dedicated copy functional unit.
    ///
    /// Copies are never present in source loop bodies: they are inserted by the copy
    /// insertion pass of `vliw-qrf` when a value is consumed more than once (a queue
    /// read is destructive, cf. Section 2 of the paper).
    Copy,
    /// Address computation; occupies the adder.
    AddressAdd,
}

impl OpKind {
    /// All opcodes, useful for exhaustive testing.
    pub const ALL: [OpKind; 9] = [
        OpKind::Load,
        OpKind::Store,
        OpKind::Add,
        OpKind::Sub,
        OpKind::Compare,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Copy,
        OpKind::AddressAdd,
    ];

    /// The functional-unit class this opcode executes on.
    #[inline]
    pub fn class(self) -> OpClass {
        match self {
            OpKind::Load | OpKind::Store => OpClass::Memory,
            OpKind::Add | OpKind::Sub | OpKind::Compare | OpKind::AddressAdd => OpClass::Adder,
            OpKind::Mul | OpKind::Div => OpClass::Multiplier,
            OpKind::Copy => OpClass::Copy,
        }
    }

    /// Whether the operation produces a value that other operations may consume.
    ///
    /// Stores produce no register result; everything else does.
    #[inline]
    pub fn produces_value(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// Short mnemonic used in textual dumps and DOT output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Load => "ld",
            OpKind::Store => "st",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Compare => "cmp",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Copy => "copy",
            OpKind::AddressAdd => "addr",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Functional-unit class an operation occupies.
///
/// The paper's cluster contains one unit of each of the first three classes plus a
/// copy unit (Fig. 5a / Fig. 7).  Resource-constrained MII (ResMII) is computed per
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Load/store unit (the paper's "L/S").
    Memory,
    /// Adder ("ADD").
    Adder,
    /// Multiplier ("MUL").
    Multiplier,
    /// Dedicated copy unit used to replicate queue-resident values.
    Copy,
}

impl OpClass {
    /// All classes in a fixed order, used to index per-class tables.
    pub const ALL: [OpClass; 4] =
        [OpClass::Memory, OpClass::Adder, OpClass::Multiplier, OpClass::Copy];

    /// Number of classes.
    pub const COUNT: usize = 4;

    /// Dense index of the class, for per-class side tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::Memory => 0,
            OpClass::Adder => 1,
            OpClass::Multiplier => 2,
            OpClass::Copy => 3,
        }
    }

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Memory => "L/S",
            OpClass::Adder => "ADD",
            OpClass::Multiplier => "MUL",
            OpClass::Copy => "COPY",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single operation of a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// Identifier of the operation within its graph.
    pub id: OpId,
    /// Opcode.
    pub kind: OpKind,
}

impl Operation {
    /// Creates a new operation.
    pub fn new(id: OpId, kind: OpKind) -> Self {
        Operation { id, kind }
    }

    /// Functional-unit class of the operation.
    #[inline]
    pub fn class(&self) -> OpClass {
        self.kind.class()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.id, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_mapping_matches_paper_cluster() {
        assert_eq!(OpKind::Load.class(), OpClass::Memory);
        assert_eq!(OpKind::Store.class(), OpClass::Memory);
        assert_eq!(OpKind::Add.class(), OpClass::Adder);
        assert_eq!(OpKind::Sub.class(), OpClass::Adder);
        assert_eq!(OpKind::Compare.class(), OpClass::Adder);
        assert_eq!(OpKind::AddressAdd.class(), OpClass::Adder);
        assert_eq!(OpKind::Mul.class(), OpClass::Multiplier);
        assert_eq!(OpKind::Div.class(), OpClass::Multiplier);
        assert_eq!(OpKind::Copy.class(), OpClass::Copy);
    }

    #[test]
    fn stores_do_not_produce_values() {
        assert!(!OpKind::Store.produces_value());
        for kind in OpKind::ALL {
            if kind != OpKind::Store {
                assert!(kind.produces_value(), "{kind} should produce a value");
            }
        }
    }

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; OpClass::COUNT];
        for class in OpClass::ALL {
            assert!(!seen[class.index()]);
            seen[class.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn op_id_display_and_index() {
        let id = OpId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "op7");
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = OpKind::ALL.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpKind::ALL.len());
    }
}
