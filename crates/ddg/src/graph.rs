//! The data dependence graph container and the [`Loop`] wrapper.

use std::fmt;

use crate::edge::{DepKind, Edge, EdgeId};
use crate::op::{OpClass, OpId, OpKind, Operation};

/// Errors reported by [`Ddg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdgError {
    /// An edge refers to an operation id outside the graph.
    DanglingEdge {
        /// Offending edge.
        edge: EdgeId,
    },
    /// The intra-iteration (distance-0) subgraph contains a cycle, which no schedule
    /// could ever satisfy.
    IntraIterationCycle,
    /// A flow edge leaves a store, which produces no value.
    FlowFromStore {
        /// Offending edge.
        edge: EdgeId,
    },
    /// An edge connects an operation to itself with distance 0.
    ZeroDistanceSelfLoop {
        /// Offending edge.
        edge: EdgeId,
    },
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::DanglingEdge { edge } => {
                write!(f, "edge {edge} refers to a missing operation")
            }
            DdgError::IntraIterationCycle => {
                write!(f, "the distance-0 subgraph contains a cycle; no schedule can satisfy it")
            }
            DdgError::FlowFromStore { edge } => {
                write!(f, "flow edge {edge} originates at a store, which produces no value")
            }
            DdgError::ZeroDistanceSelfLoop { edge } => {
                write!(f, "edge {edge} is a self-loop with distance 0")
            }
        }
    }
}

impl std::error::Error for DdgError {}

/// Reusable work buffers for [`Ddg::validate_with`].
#[derive(Debug, Default)]
pub struct ValidateScratch {
    indeg: Vec<usize>,
    stack: Vec<OpId>,
}

/// Sentinel for "no edge" in the intrusive adjacency lists below.
const NO_EDGE: u32 = u32::MAX;

/// A data dependence graph for one innermost-loop body.
///
/// Adjacency is stored as intrusive singly linked lists threaded through the
/// edge array (`*_head`/`*_tail` per operation, `*_next` per edge) instead of a
/// `Vec<EdgeId>` per operation: building, cloning, and dropping a graph then
/// costs a handful of flat allocations rather than two per operation, which is
/// what the compile pipeline spends most of its allocator traffic on.  Edges are
/// appended at the tail, so iteration still yields edges in insertion (id)
/// order, exactly as the per-operation vectors did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ddg {
    ops: Vec<Operation>,
    edges: Vec<Edge>,
    /// First/last outgoing edge per operation (`NO_EDGE` if none).
    succ_head: Vec<u32>,
    succ_tail: Vec<u32>,
    /// First/last incoming edge per operation (`NO_EDGE` if none).
    pred_head: Vec<u32>,
    pred_tail: Vec<u32>,
    /// Next outgoing edge of the same source, per edge (`NO_EDGE` terminates).
    succ_next: Vec<u32>,
    /// Next incoming edge of the same destination, per edge.
    pred_next: Vec<u32>,
}

impl Ddg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Ddg::default()
    }

    /// Creates an empty graph with space reserved for `ops` operations.
    pub fn with_capacity(ops: usize) -> Self {
        Ddg {
            ops: Vec::with_capacity(ops),
            edges: Vec::with_capacity(ops * 2),
            succ_head: Vec::with_capacity(ops),
            succ_tail: Vec::with_capacity(ops),
            pred_head: Vec::with_capacity(ops),
            pred_tail: Vec::with_capacity(ops),
            succ_next: Vec::with_capacity(ops * 2),
            pred_next: Vec::with_capacity(ops * 2),
        }
    }

    /// Adds an operation and returns its id.
    pub fn add_op(&mut self, kind: OpKind) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Operation::new(id, kind));
        self.succ_head.push(NO_EDGE);
        self.succ_tail.push(NO_EDGE);
        self.pred_head.push(NO_EDGE);
        self.pred_tail.push(NO_EDGE);
        id
    }

    /// Adds a dependence edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not an operation of this graph.
    pub fn add_edge(
        &mut self,
        src: OpId,
        dst: OpId,
        kind: DepKind,
        latency: u32,
        distance: u32,
    ) -> EdgeId {
        assert!(src.index() < self.ops.len(), "edge source {src} out of range");
        assert!(dst.index() < self.ops.len(), "edge destination {dst} out of range");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge::new(id, src, dst, kind, latency, distance));
        self.succ_next.push(NO_EDGE);
        self.pred_next.push(NO_EDGE);
        // Append at the tail so list order stays insertion (edge-id) order.
        match self.succ_tail[src.index()] {
            NO_EDGE => self.succ_head[src.index()] = id.0,
            tail => self.succ_next[tail as usize] = id.0,
        }
        self.succ_tail[src.index()] = id.0;
        match self.pred_tail[dst.index()] {
            NO_EDGE => self.pred_head[dst.index()] = id.0,
            tail => self.pred_next[tail as usize] = id.0,
        }
        self.pred_tail[dst.index()] = id.0;
        id
    }

    /// Number of operations.
    #[inline]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The operation with the given id.
    #[inline]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterator over all operations in id order.
    pub fn ops(&self) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter()
    }

    /// Iterator over all operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + 'static {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Iterator over all edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Walks one intrusive adjacency list from `head`, yielding edges in
    /// insertion order.
    fn adjacency<'a>(&'a self, head: u32, next: &'a [u32]) -> impl Iterator<Item = &'a Edge> + 'a {
        let edges = &self.edges;
        let mut cur = head;
        std::iter::from_fn(move || {
            if cur == NO_EDGE {
                return None;
            }
            let e = &edges[cur as usize];
            cur = next[cur as usize];
            Some(e)
        })
    }

    /// Outgoing edges of `op`.
    pub fn succ_edges(&self, op: OpId) -> impl Iterator<Item = &Edge> + '_ {
        self.adjacency(self.succ_head[op.index()], &self.succ_next)
    }

    /// Incoming edges of `op`.
    pub fn pred_edges(&self, op: OpId) -> impl Iterator<Item = &Edge> + '_ {
        self.adjacency(self.pred_head[op.index()], &self.pred_next)
    }

    /// Flow (value-carrying) out-edges of `op`, i.e. the edges whose consumers read
    /// the value produced by `op`.
    pub fn flow_consumers(&self, op: OpId) -> impl Iterator<Item = &Edge> + '_ {
        self.succ_edges(op).filter(|e| e.kind == DepKind::Flow)
    }

    /// Number of distinct flow consumers of `op` (the value's fan-out).
    pub fn fanout(&self, op: OpId) -> usize {
        self.flow_consumers(op).count()
    }

    /// The maximum fan-out over all value-producing operations.
    pub fn max_fanout(&self) -> usize {
        self.op_ids().map(|op| self.fanout(op)).max().unwrap_or(0)
    }

    /// Count of operations per functional-unit class.
    pub fn class_counts(&self) -> [usize; OpClass::COUNT] {
        let mut counts = [0usize; OpClass::COUNT];
        for op in &self.ops {
            counts[op.class().index()] += 1;
        }
        counts
    }

    /// True if the graph contains any loop-carried dependence cycle (a recurrence
    /// circuit in the paper's terminology).
    pub fn has_recurrence(&self) -> bool {
        // A recurrence exists iff some cycle of the full graph exists; because the
        // distance-0 subgraph of a valid DDG is acyclic, any cycle must include a
        // loop-carried edge.  Use the SCC decomposition.
        crate::analysis::strongly_connected_components(self).iter().any(|scc| scc.len() > 1)
            || self.edges.iter().any(|e| e.src == e.dst && e.distance > 0)
    }

    /// Empties the graph while keeping (and growing to `ops`) the capacity of
    /// every backing vector, so a long-lived scratch graph can be rebuilt
    /// without reallocating.
    pub fn clear_and_reserve(&mut self, ops: usize) {
        self.ops.clear();
        self.edges.clear();
        self.succ_head.clear();
        self.succ_tail.clear();
        self.pred_head.clear();
        self.pred_tail.clear();
        self.succ_next.clear();
        self.pred_next.clear();
        self.ops.reserve(ops);
        self.succ_head.reserve(ops);
        self.succ_tail.reserve(ops);
        self.pred_head.reserve(ops);
        self.pred_tail.reserve(ops);
        self.edges.reserve(ops * 2);
        self.succ_next.reserve(ops * 2);
        self.pred_next.reserve(ops * 2);
    }

    /// Topological order of the intra-iteration (distance-0) subgraph.
    ///
    /// Returns `None` if that subgraph has a cycle (an invalid DDG).
    pub fn topo_order_intra(&self) -> Option<Vec<OpId>> {
        let n = self.num_ops();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.distance == 0 {
                indeg[e.dst.index()] += 1;
            }
        }
        let mut stack: Vec<OpId> =
            (0..n as u32).map(OpId).filter(|o| indeg[o.index()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(op) = stack.pop() {
            order.push(op);
            for e in self.succ_edges(op) {
                if e.distance == 0 {
                    indeg[e.dst.index()] -= 1;
                    if indeg[e.dst.index()] == 0 {
                        stack.push(e.dst);
                    }
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Checks the structural invariants of the graph.
    pub fn validate(&self) -> Result<(), DdgError> {
        let mut scratch = ValidateScratch::default();
        self.validate_with(&mut scratch)
    }

    /// [`Ddg::validate`] with caller-owned work buffers, so hot callers (the
    /// schedulers validate every body they are handed) do not allocate.
    pub fn validate_with(&self, scratch: &mut ValidateScratch) -> Result<(), DdgError> {
        for e in &self.edges {
            if e.src.index() >= self.ops.len() || e.dst.index() >= self.ops.len() {
                return Err(DdgError::DanglingEdge { edge: e.id });
            }
            if e.kind == DepKind::Flow && !self.ops[e.src.index()].kind.produces_value() {
                return Err(DdgError::FlowFromStore { edge: e.id });
            }
            if e.src == e.dst && e.distance == 0 {
                return Err(DdgError::ZeroDistanceSelfLoop { edge: e.id });
            }
        }
        // Kahn's algorithm over the distance-0 subgraph, counting processed
        // operations instead of materialising the order (the count alone decides
        // acyclicity, and it does not depend on the visit order).
        let n = self.num_ops();
        scratch.indeg.clear();
        scratch.indeg.resize(n, 0);
        for e in &self.edges {
            if e.distance == 0 {
                scratch.indeg[e.dst.index()] += 1;
            }
        }
        scratch.stack.clear();
        scratch.stack.extend((0..n as u32).map(OpId).filter(|o| scratch.indeg[o.index()] == 0));
        let mut processed = 0usize;
        while let Some(op) = scratch.stack.pop() {
            processed += 1;
            for e in self.succ_edges(op) {
                if e.distance == 0 {
                    scratch.indeg[e.dst.index()] -= 1;
                    if scratch.indeg[e.dst.index()] == 0 {
                        scratch.stack.push(e.dst);
                    }
                }
            }
        }
        if processed != n {
            return Err(DdgError::IntraIterationCycle);
        }
        Ok(())
    }

    /// Sum of all operation latencies along the longest latency chain in the
    /// intra-iteration subgraph; a crude lower bound on the schedule length of one
    /// iteration.
    pub fn critical_path_length(&self) -> u32 {
        crate::analysis::critical_path(self).length
    }
}

/// A named innermost loop: its dependence graph plus the execution metadata needed by
/// the dynamic-IPC analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Name of the loop (benchmark-style identifier such as `"synth_0042"`).
    pub name: String,
    /// Body of the loop.
    pub ddg: Ddg,
    /// Number of iterations the loop executes at run time.
    ///
    /// The dynamic-issue analysis of the paper (Figs. 8 and 9) weighs the prologue and
    /// epilogue against the kernel using the trip count.
    pub trip_count: u64,
}

impl Loop {
    /// Creates a loop.
    pub fn new(name: impl Into<String>, ddg: Ddg, trip_count: u64) -> Self {
        Loop { name: name.into(), ddg, trip_count }
    }

    /// Number of operations in one iteration of the loop body.
    pub fn ops_per_iteration(&self) -> usize {
        self.ddg.num_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Ddg {
        // ld -> add -> st, ld -> mul -> st
        let mut g = Ddg::new();
        let ld = g.add_op(OpKind::Load);
        let add = g.add_op(OpKind::Add);
        let mul = g.add_op(OpKind::Mul);
        let st = g.add_op(OpKind::Store);
        g.add_edge(ld, add, DepKind::Flow, 2, 0);
        g.add_edge(ld, mul, DepKind::Flow, 2, 0);
        g.add_edge(add, st, DepKind::Flow, 1, 0);
        g.add_edge(mul, st, DepKind::Flow, 2, 0);
        g
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.num_ops(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.fanout(OpId(0)), 2);
        assert_eq!(g.fanout(OpId(3)), 0);
        assert_eq!(g.max_fanout(), 2);
        assert_eq!(g.class_counts(), [2, 1, 1, 0]);
        assert!(!g.has_recurrence());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn succ_and_pred_edges() {
        let g = diamond();
        assert_eq!(g.succ_edges(OpId(0)).count(), 2);
        assert_eq!(g.pred_edges(OpId(3)).count(), 2);
        assert_eq!(g.pred_edges(OpId(0)).count(), 0);
        assert_eq!(g.succ_edges(OpId(3)).count(), 0);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order_intra().expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_ops()];
            for (i, op) in order.iter().enumerate() {
                p[op.index()] = i;
            }
            p
        };
        for e in g.edges() {
            if e.distance == 0 {
                assert!(pos[e.src.index()] < pos[e.dst.index()]);
            }
        }
    }

    #[test]
    fn recurrence_detected_via_self_loop() {
        let mut g = Ddg::new();
        let add = g.add_op(OpKind::Add);
        g.add_edge(add, add, DepKind::Flow, 1, 1);
        assert!(g.has_recurrence());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn recurrence_detected_via_cycle() {
        let mut g = Ddg::new();
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Mul);
        g.add_edge(a, b, DepKind::Flow, 1, 0);
        g.add_edge(b, a, DepKind::Flow, 2, 1);
        assert!(g.has_recurrence());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn validate_rejects_intra_iteration_cycle() {
        let mut g = Ddg::new();
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Mul);
        g.add_edge(a, b, DepKind::Flow, 1, 0);
        g.add_edge(b, a, DepKind::Flow, 1, 0);
        assert_eq!(g.validate(), Err(DdgError::IntraIterationCycle));
    }

    #[test]
    fn validate_rejects_flow_from_store() {
        let mut g = Ddg::new();
        let st = g.add_op(OpKind::Store);
        let add = g.add_op(OpKind::Add);
        let e = g.add_edge(st, add, DepKind::Flow, 1, 0);
        assert_eq!(g.validate(), Err(DdgError::FlowFromStore { edge: e }));
    }

    #[test]
    fn validate_rejects_zero_distance_self_loop() {
        let mut g = Ddg::new();
        let add = g.add_op(OpKind::Add);
        let e = g.add_edge(add, add, DepKind::Flow, 1, 0);
        assert_eq!(g.validate(), Err(DdgError::ZeroDistanceSelfLoop { edge: e }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_panics_on_bad_endpoint() {
        let mut g = Ddg::new();
        let a = g.add_op(OpKind::Add);
        g.add_edge(a, OpId(42), DepKind::Flow, 1, 0);
    }

    #[test]
    fn memory_edges_allowed_from_store() {
        let mut g = Ddg::new();
        let st = g.add_op(OpKind::Store);
        let ld = g.add_op(OpKind::Load);
        g.add_edge(st, ld, DepKind::Memory, 1, 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn loop_wrapper() {
        let l = Loop::new("dot", diamond(), 100);
        assert_eq!(l.name, "dot");
        assert_eq!(l.ops_per_iteration(), 4);
        assert_eq!(l.trip_count, 100);
    }

    #[test]
    fn error_display_messages() {
        let msgs = [
            DdgError::DanglingEdge { edge: EdgeId(1) }.to_string(),
            DdgError::IntraIterationCycle.to_string(),
            DdgError::FlowFromStore { edge: EdgeId(2) }.to_string(),
            DdgError::ZeroDistanceSelfLoop { edge: EdgeId(3) }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
