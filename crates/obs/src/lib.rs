//! `vliw-obs`: zero-cost-when-disabled instrumentation for the compile /
//! simulate / verify stack.
//!
//! The crate is deliberately std-only (no external deps — every stage crate
//! links it, so it sits below the whole dependency graph) and unsafe-free.
//!
//! # Model
//!
//! A *span* brackets one unit of pipeline work — one IMS placement, one queue
//! allocation, one persist read — and is attributed to a fixed [`Stage`]
//! taxonomy: `corpusgen → ddg/copies → unroll → sched/ims | sched/partition →
//! qrf/alloc → sim → verify → bounds → persist/io`.  Recording is off by default; a
//! [`span!`] at a disabled call site costs one relaxed atomic load and a
//! branch, which is what lets the instrumented hot paths ship enabled-by-code
//! in release builds.
//!
//! When enabled (see [`enable`]), every thread appends begin/end events to its
//! own buffer — racing executor workers never contend on a shared lock — and
//! the buffers are registered in a process-global list so [`snapshot`] can
//! collect them at the end of a run.  Two exporters consume a snapshot:
//! [`chrome_trace`] renders Chrome `trace_event` JSON (loadable in
//! `chrome://tracing` or Perfetto) and [`stage_stats`] aggregates per-stage
//! duration histograms (count / p50 / p99 / total) for the text and JSON
//! breakdown tables.
//!
//! ```
//! vliw_obs::enable();
//! {
//!     let _span = vliw_obs::span!("sched/ims", 7);
//!     // ... place one loop ...
//! }
//! let threads = vliw_obs::snapshot();
//! let trace = vliw_obs::chrome_trace(&threads);
//! assert!(trace.contains("sched/ims"));
//! ```
//!
//! [`LatencyHistogram`] is the daemon-side companion: a fixed-bucket,
//! atomically-updated histogram with a Prometheus text-exposition renderer,
//! used by `vliw-serve` for per-request-type latencies.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// The fixed stage taxonomy every span is attributed to.
///
/// Discriminants are dense so aggregation can index arrays by stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Synthetic corpus generation (`vliw-loopgen`).
    Corpusgen = 0,
    /// DDG transformation: copy-op insertion ahead of clustered scheduling.
    Ddg = 1,
    /// Unroll-factor selection and kernel unrolling.
    Unroll = 2,
    /// Iterative modulo scheduling (single-cluster placement).
    Ims = 3,
    /// Partitioned scheduling (clustered placement).
    Partition = 4,
    /// Queue-register-file allocation.
    Qrf = 5,
    /// Cycle-accurate simulation.
    Sim = 6,
    /// Static schedule verification.
    Verify = 7,
    /// Static admissibility analysis (`vliw-bounds`): certified lower bounds
    /// that prune the design-space sweep without compiling.
    Bounds = 8,
    /// Persistent-store reads and writes.
    Persist = 9,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Corpusgen,
        Stage::Ddg,
        Stage::Unroll,
        Stage::Ims,
        Stage::Partition,
        Stage::Qrf,
        Stage::Sim,
        Stage::Verify,
        Stage::Bounds,
        Stage::Persist,
    ];

    /// The stable name used in traces, tables and the [`span!`] macro.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Corpusgen => "corpusgen",
            Stage::Ddg => "ddg/copies",
            Stage::Unroll => "unroll",
            Stage::Ims => "sched/ims",
            Stage::Partition => "sched/partition",
            Stage::Qrf => "qrf/alloc",
            Stage::Sim => "sim",
            Stage::Verify => "verify",
            Stage::Bounds => "bounds",
            Stage::Persist => "persist/io",
        }
    }
}

/// One recorded begin or end mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Which pipeline stage the enclosing span belongs to.
    pub stage: Stage,
    /// Free-form span argument (conventionally the loop index; 0 when unused).
    pub arg: u64,
    /// `true` for the begin mark, `false` for the end mark.
    pub begin: bool,
    /// Nanoseconds since the trace epoch ([`enable`] pins it).
    pub ts_ns: u64,
}

/// One thread's recorded events, in recording order (hence non-decreasing
/// `ts_ns`, properly nested).
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    /// Dense process-local thread id (assigned at first recording).
    pub tid: u64,
    /// Thread label ("main", "worker-3", ...).
    pub name: String,
    /// The begin/end marks this thread recorded.
    pub events: Vec<Event>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static REGISTRY: Mutex<Vec<Arc<ThreadLog>>> = Mutex::new(Vec::new());

struct ThreadLog {
    tid: u64,
    name: Mutex<String>,
    events: Mutex<Vec<Event>>,
}

/// A poisoned instrumentation buffer only ever holds valid (if truncated)
/// events, so recording continues through it instead of panicking.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    static LOG: std::cell::OnceCell<Arc<ThreadLog>> = const { std::cell::OnceCell::new() };
}

fn init_log() -> Arc<ThreadLog> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current().name().unwrap_or("thread").to_string();
    let log = Arc::new(ThreadLog { tid, name: Mutex::new(name), events: Mutex::new(Vec::new()) });
    lock(&REGISTRY).push(Arc::clone(&log));
    log
}

/// Runs `f` on the calling thread's log without cloning the `Arc` — `record`
/// is the per-event hot path, so it stays one TLS access and one
/// uncontended lock.
fn with_local_log<R>(f: impl FnOnce(&ThreadLog) -> R) -> R {
    LOG.with(|cell| f(cell.get_or_init(init_log)))
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Turns recording on, pinning the trace epoch on first call.
pub fn enable() {
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off.  Already-recorded events stay buffered until
/// [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether spans are currently being recorded.  This is the whole cost of a
/// disabled span: one relaxed load and a branch.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops every buffered event (buffers stay registered).
pub fn clear() {
    for log in lock(&REGISTRY).iter() {
        lock(&log.events).clear();
    }
}

/// Labels the calling thread `worker-{index}` in subsequent snapshots.  The
/// work-stealing executor calls this as each worker starts; a no-op while
/// recording is disabled.
pub fn register_worker(index: usize) {
    if !is_enabled() {
        return;
    }
    with_local_log(|log| *lock(&log.name) = format!("worker-{index}"));
}

fn record(stage: Stage, arg: u64, begin: bool) {
    let ts_ns = now_ns();
    with_local_log(|log| lock(&log.events).push(Event { stage, arg, begin, ts_ns }));
}

/// An RAII span: records a begin mark on creation (when enabled) and the
/// matching end mark on drop.  Created via [`span`] or the [`span!`] macro.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct SpanGuard {
    stage: Stage,
    arg: u64,
    armed: bool,
}

/// Opens a span of `stage`.  `arg` is attached to the begin event
/// (conventionally the loop index; pass 0 when there is no natural argument).
#[inline]
pub fn span(stage: Stage, arg: u64) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { stage, arg, armed: false };
    }
    record(stage, arg, true);
    SpanGuard { stage, arg, armed: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // `armed` (not a fresh `is_enabled()` check) decides: a span opened
        // while enabled always closes, and one opened while disabled never
        // emits a dangling end mark if tracing switches on mid-span.
        if self.armed {
            record(self.stage, self.arg, false);
        }
    }
}

#[doc(hidden)]
#[macro_export]
macro_rules! __span_arg {
    () => {
        0u64
    };
    ($arg:expr) => {
        ($arg) as u64
    };
}

/// Opens a [`SpanGuard`] for a stage named by its taxonomy string, with an
/// optional argument: `let _s = vliw_obs::span!("sched/ims", loop_index);`.
/// The string is matched at macro-expansion time, so a typo is a compile
/// error, not a silently unknown stage.
#[macro_export]
macro_rules! span {
    ("corpusgen" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Corpusgen, $crate::__span_arg!($($arg)?))
    };
    ("ddg/copies" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Ddg, $crate::__span_arg!($($arg)?))
    };
    ("unroll" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Unroll, $crate::__span_arg!($($arg)?))
    };
    ("sched/ims" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Ims, $crate::__span_arg!($($arg)?))
    };
    ("sched/partition" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Partition, $crate::__span_arg!($($arg)?))
    };
    ("qrf/alloc" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Qrf, $crate::__span_arg!($($arg)?))
    };
    ("sim" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Sim, $crate::__span_arg!($($arg)?))
    };
    ("verify" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Verify, $crate::__span_arg!($($arg)?))
    };
    ("bounds" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Bounds, $crate::__span_arg!($($arg)?))
    };
    ("persist/io" $(, $arg:expr)?) => {
        $crate::span($crate::Stage::Persist, $crate::__span_arg!($($arg)?))
    };
}

/// Copies out every registered thread's buffer, sorted by thread id.  Threads
/// still running keep recording; the snapshot is a consistent prefix of each
/// buffer.
pub fn snapshot() -> Vec<ThreadEvents> {
    let mut out: Vec<ThreadEvents> = lock(&REGISTRY)
        .iter()
        .map(|log| ThreadEvents {
            tid: log.tid,
            name: lock(&log.name).clone(),
            events: lock(&log.events).clone(),
        })
        .collect();
    out.sort_by_key(|t| t.tid);
    out
}

/// Per-thread flags marking events whose begin/end partner is also in the
/// buffer.  A span still open when the snapshot was taken has an unmatched
/// begin mark; exporters skip it rather than emit an unbalanced pair.
fn matched_flags(events: &[Event]) -> Vec<bool> {
    let mut flags = vec![false; events.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.begin {
            stack.push(i);
        } else if let Some(b) = stack.pop() {
            flags[b] = true;
            flags[i] = true;
        }
    }
    flags
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, rendered in integer arithmetic so
/// equal inputs always produce equal (and ordered inputs ordered) text.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders a snapshot as Chrome `trace_event` JSON (the bare-array form):
/// per-thread metadata records naming each track, then matched `B`/`E` pairs
/// in recording order — `ts` is microseconds since the trace epoch and is
/// non-decreasing within each `tid`.  Open `chrome://tracing` or
/// <https://ui.perfetto.dev> and load the file.
pub fn chrome_trace(threads: &[ThreadEvents]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, record: String| {
        if !*first {
            out.push_str(",\n");
        } else {
            out.push('\n');
            *first = false;
        }
        out.push_str(&record);
    };
    for t in threads {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                json_escape(&t.name)
            ),
        );
        let flags = matched_flags(&t.events);
        for (e, matched) in t.events.iter().zip(flags) {
            if !matched {
                continue;
            }
            let record = if e.begin {
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\
                     \"tid\":{},\"args\":{{\"arg\":{}}}}}",
                    e.stage.name(),
                    ts_us(e.ts_ns),
                    t.tid,
                    e.arg
                )
            } else {
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\
                     \"tid\":{}}}",
                    e.stage.name(),
                    ts_us(e.ts_ns),
                    t.tid
                )
            };
            push(&mut out, &mut first, record);
        }
    }
    out.push_str("\n]\n");
    out
}

/// Aggregated timing of one stage across a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// The stage the durations belong to.
    pub stage: Stage,
    /// Completed spans observed.
    pub count: u64,
    /// Sum of span durations.
    pub total_ns: u64,
    /// Median span duration (nearest rank).
    pub p50_ns: u64,
    /// 99th-percentile span duration (nearest rank).
    pub p99_ns: u64,
}

fn rank(len: usize, pct: usize) -> usize {
    (len - 1) * pct / 100
}

/// Aggregates a snapshot into per-stage duration statistics, in pipeline
/// order; stages with no completed spans are omitted.
pub fn stage_stats(threads: &[ThreadEvents]) -> Vec<StageStat> {
    let mut durations: Vec<Vec<u64>> = vec![Vec::new(); Stage::ALL.len()];
    for t in threads {
        let mut stack: Vec<(usize, u64)> = Vec::new();
        for e in &t.events {
            if e.begin {
                stack.push((e.stage as usize, e.ts_ns));
            } else if let Some((stage, begin_ns)) = stack.pop() {
                durations[stage].push(e.ts_ns.saturating_sub(begin_ns));
            }
        }
    }
    Stage::ALL
        .iter()
        .filter_map(|&stage| {
            let d = &mut durations[stage as usize];
            if d.is_empty() {
                return None;
            }
            d.sort_unstable();
            Some(StageStat {
                stage,
                count: d.len() as u64,
                total_ns: d.iter().sum(),
                p50_ns: d[rank(d.len(), 50)],
                p99_ns: d[rank(d.len(), 99)],
            })
        })
        .collect()
}

/// `12ns` / `3.40µs` / `5.67ms` / `1.23s`, for the breakdown table.
pub fn fmt_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders stage statistics as an aligned text table with a share-of-total
/// column.  Wall-clock shares across threads can sum past the elapsed time of
/// the run (that is parallelism, not double counting: the taxonomy stages
/// never nest within one another on a thread).
pub fn render_stage_table(stats: &[StageStat]) -> String {
    let mut out = String::new();
    if stats.is_empty() {
        out.push_str("no spans recorded\n");
        return out;
    }
    let grand_total: u64 = stats.iter().map(|s| s.total_ns).sum();
    out.push_str(&format!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>7}\n",
        "stage", "count", "total", "p50", "p99", "share"
    ));
    for s in stats {
        let share =
            if grand_total == 0 { 0.0 } else { s.total_ns as f64 * 100.0 / grand_total as f64 };
        out.push_str(&format!(
            "{:<16} {:>8} {:>10} {:>10} {:>10} {:>6.1}%\n",
            s.stage.name(),
            s.count,
            fmt_duration(s.total_ns),
            fmt_duration(s.p50_ns),
            fmt_duration(s.p99_ns),
            share
        ));
    }
    out
}

/// Renders stage statistics as a compact JSON array (machine-readable twin of
/// [`render_stage_table`]).
pub fn stage_table_json(stats: &[StageStat]) -> String {
    let mut out = String::from("[");
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"stage\":\"{}\",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            s.stage.name(),
            s.count,
            s.total_ns,
            s.p50_ns,
            s.p99_ns
        ));
    }
    out.push(']');
    out
}

/// Upper bounds (inclusive, nanoseconds) of the latency buckets: powers of
/// four from 1µs to 16.7s, plus the implicit +Inf overflow bucket.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// A fixed-bucket latency histogram updated with relaxed atomics — one writer
/// per request thread, any number of concurrent scrapes.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram (usable in statics).
    pub const fn new() -> LatencyHistogram {
        // An inline-const block is evaluated per array element, which is what
        // `[AtomicU64::new(0); N]` cannot express for a non-`Copy` type.
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record_ns(&self, ns: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Appends this histogram's Prometheus sample lines (cumulative
    /// `_bucket{le=...}` series in seconds, then `_sum` and `_count`) for the
    /// metric `name`.  `labels` is either empty or a ready-made label list
    /// like `type="run"`; the caller writes the shared `# HELP`/`# TYPE`
    /// header once per metric name.
    pub fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKET_BOUNDS_NS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}\n",
                bound as f64 / 1e9
            ));
        }
        cumulative += self.buckets[LATENCY_BUCKET_BOUNDS_NS.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!(
            "{name}_sum{{{labels}}} {}\n",
            self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", self.count.load(Ordering::Relaxed)));
    }
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// Appends a `# HELP` + `# TYPE` header for `name` (`kind` is `counter`,
/// `gauge` or `histogram`).
pub fn prom_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Appends one integer-valued sample line; `labels` as in
/// [`LatencyHistogram::render_prometheus`].
pub fn prom_sample_u64(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

/// Appends one float-valued sample line.
pub fn prom_sample_f64(out: &mut String, name: &str, labels: &str, value: f64) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global state; every test that reads or writes
    /// the enabled flag serializes on this gate.
    static GATE: Mutex<()> = Mutex::new(());

    /// Runs `f` with tracing enabled, serialized, cleaning up after itself.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _gate = lock(&GATE);
        clear();
        enable();
        let result = f();
        disable();
        clear();
        result
    }

    /// This thread's events in the current snapshot.
    fn my_events() -> Vec<Event> {
        let tid = with_local_log(|log| log.tid);
        snapshot().into_iter().find(|t| t.tid == tid).map(|t| t.events).unwrap_or_default()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = lock(&GATE);
        assert!(!is_enabled());
        let before = my_events().len();
        {
            let _s = span!("sched/ims", 3);
        }
        assert_eq!(my_events().len(), before, "a disabled span must not allocate or record");
    }

    #[test]
    fn spans_record_matched_pairs_in_order() {
        with_tracing(|| {
            {
                let _outer = span!("verify", 1);
                let _inner = span!("sim", 2);
            }
            let events = my_events();
            assert_eq!(events.len(), 4);
            assert!(events[0].begin && events[0].stage == Stage::Verify);
            assert!(events[1].begin && events[1].stage == Stage::Sim);
            // Drop order closes the inner span first.
            assert!(!events[2].begin && events[2].stage == Stage::Sim);
            assert!(!events[3].begin && events[3].stage == Stage::Verify);
            let ts: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps must be monotone: {ts:?}");
        });
    }

    #[test]
    fn a_span_opened_before_disable_still_closes() {
        with_tracing(|| {
            let s = span!("qrf/alloc");
            disable();
            drop(s);
            enable();
            let events = my_events();
            assert_eq!(events.len(), 2, "{events:?}");
            assert!(!events[1].begin);
        });
    }

    #[test]
    fn chrome_trace_renders_thread_metadata_and_pairs() {
        with_tracing(|| {
            {
                let _s = span!("sched/partition", 9);
            }
            let trace = chrome_trace(&snapshot());
            assert!(trace.starts_with('['));
            assert!(trace.trim_end().ends_with(']'));
            assert!(trace.contains("\"thread_name\""));
            assert!(trace.contains("\"name\":\"sched/partition\""));
            assert!(trace.contains("\"ph\":\"B\""));
            assert!(trace.contains("\"ph\":\"E\""));
            assert!(trace.contains("\"args\":{\"arg\":9}"));
        });
    }

    #[test]
    fn unmatched_open_spans_are_skipped_by_the_exporters() {
        with_tracing(|| {
            let open = span!("corpusgen");
            {
                let _closed = span!("unroll");
            }
            let threads = snapshot();
            let trace = chrome_trace(&threads);
            assert!(!trace.contains("corpusgen"), "an open span must not emit a dangling B");
            assert!(trace.contains("unroll"));
            let stats = stage_stats(&threads);
            assert_eq!(stats.len(), 1);
            assert_eq!(stats[0].stage, Stage::Unroll);
            drop(open);
        });
    }

    #[test]
    fn stage_stats_aggregate_counts_and_percentiles() {
        let events = |durs: &[u64]| -> Vec<Event> {
            let mut out = Vec::new();
            let mut ts = 0;
            for &d in durs {
                out.push(Event { stage: Stage::Ims, arg: 0, begin: true, ts_ns: ts });
                out.push(Event { stage: Stage::Ims, arg: 0, begin: false, ts_ns: ts + d });
                ts += d;
            }
            out
        };
        let threads = vec![
            ThreadEvents { tid: 1, name: "a".into(), events: events(&[10, 30]) },
            ThreadEvents { tid: 2, name: "b".into(), events: events(&[20, 40]) },
        ];
        let stats = stage_stats(&threads);
        assert_eq!(stats.len(), 1);
        let s = stats[0];
        assert_eq!((s.stage, s.count, s.total_ns), (Stage::Ims, 4, 100));
        assert_eq!(s.p50_ns, 20, "nearest-rank median of [10,20,30,40]");
        assert_eq!(s.p99_ns, 30, "nearest-rank p99 of a 4-sample set");
    }

    #[test]
    fn stage_table_renders_every_observed_stage() {
        let stats = vec![
            StageStat {
                stage: Stage::Ims,
                count: 3,
                total_ns: 3_000_000,
                p50_ns: 900,
                p99_ns: 1_200_000,
            },
            StageStat {
                stage: Stage::Qrf,
                count: 1,
                total_ns: 1_000_000,
                p50_ns: 1_000_000,
                p99_ns: 1_000_000,
            },
        ];
        let table = render_stage_table(&stats);
        assert!(table.contains("sched/ims"), "{table}");
        assert!(table.contains("qrf/alloc"), "{table}");
        assert!(table.contains("75.0%"), "{table}");
        assert!(table.contains("3.00ms"), "{table}");
        let json = stage_table_json(&stats);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"stage\":\"sched/ims\",\"count\":3,\"total_ns\":3000000"));
    }

    #[test]
    fn latency_histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::new();
        h.record_ns(500); // le 1µs
        h.record_ns(3_000); // le 4µs
        h.record_ns(1_000_000_000); // le 1.048576s
        h.record_ns(u64::MAX / 2); // +Inf
        assert_eq!(h.count(), 4);
        let mut out = String::new();
        h.render_prometheus(&mut out, "x_seconds", "type=\"run\"");
        assert!(out.contains("x_seconds_bucket{type=\"run\",le=\"0.000001\"} 1"), "{out}");
        assert!(out.contains("x_seconds_bucket{type=\"run\",le=\"0.000004\"} 2"), "{out}");
        assert!(out.contains("x_seconds_bucket{type=\"run\",le=\"+Inf\"} 4"), "{out}");
        assert!(out.contains("x_seconds_count{type=\"run\"} 4"), "{out}");
    }

    #[test]
    fn prometheus_helpers_format_headers_and_samples() {
        let mut out = String::new();
        prom_header(&mut out, "vliw_up", "gauge", "Uptime.");
        prom_sample_u64(&mut out, "vliw_up", "", 3);
        prom_sample_f64(&mut out, "vliw_lat", "type=\"info\"", 0.25);
        assert_eq!(out, "# HELP vliw_up Uptime.\n# TYPE vliw_up gauge\nvliw_up 3\nvliw_lat{type=\"info\"} 0.25\n");
    }

    #[test]
    fn timestamps_render_as_fixed_point_microseconds() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }
}
