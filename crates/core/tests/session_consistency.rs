//! Property test: the session's memoized compilation layer is *transparent* — for
//! random (machine, compiler-configuration, loop) triples, the artifact served by
//! the session (first request cold, second request cached) is identical to what a
//! fresh `Compiler::compile` produces on the same loop.

use proptest::prelude::*;

use vliw_core::pipeline::{Compiler, CompilerConfig};
use vliw_core::session::Session;
use vliw_core::{Compilation, LatencyModel, Machine, SchedError};

/// A machine drawn from the paper's configuration space.
fn machine_for(selector: u32, width: usize, clusters: usize) -> Machine {
    match selector % 3 {
        0 => Machine::paper_single(width),
        1 => Machine::paper_clustered(clusters, LatencyModel::default()),
        _ => Machine::paper_single_cluster_equivalent(clusters, LatencyModel::default()),
    }
}

/// A compiler configuration drawn from the options the experiments exercise.
fn config_for(machine: Machine, selector: u32) -> CompilerConfig {
    match selector % 4 {
        0 => CompilerConfig::paper_defaults(machine),
        1 => CompilerConfig::paper_defaults(machine).no_unroll(),
        2 => CompilerConfig::without_copies(machine),
        _ => CompilerConfig::without_copies(machine).no_unroll(),
    }
}

/// The observable surface of a compilation, compared field by field (the
/// dependence graph and schedule are compared through their derived metrics; the
/// pipeline is deterministic, so metric equality on identical inputs means the
/// underlying artifacts are identical too).
fn assert_same(
    cached: &Result<Compilation, SchedError>,
    fresh: &Result<Compilation, SchedError>,
) -> proptest::test_runner::TestCaseResult {
    match (cached, fresh) {
        (Ok(c), Ok(f)) => {
            prop_assert_eq!(&c.loop_name, &f.loop_name);
            prop_assert_eq!(c.unroll_factor, f.unroll_factor);
            prop_assert_eq!(c.num_copies, f.num_copies);
            prop_assert_eq!(c.transformed.num_ops(), f.transformed.num_ops());
            prop_assert_eq!(c.ii(), f.ii());
            prop_assert_eq!(c.res_mii, f.res_mii);
            prop_assert_eq!(c.rec_mii, f.rec_mii);
            prop_assert_eq!(c.mii, f.mii);
            prop_assert_eq!(c.stage_count, f.stage_count);
            prop_assert_eq!(c.ipc.static_ipc, f.ipc.static_ipc);
            prop_assert_eq!(c.ipc.dynamic_ipc, f.ipc.dynamic_ipc);
            prop_assert_eq!(c.queues_required(), f.queues_required());
            prop_assert_eq!(c.registers_required, f.registers_required);
            prop_assert_eq!(c.comm.is_some(), f.comm.is_some());
            if let (Some(cc), Some(fc)) = (&c.comm, &f.comm) {
                prop_assert_eq!(cc.cross_cluster_values, fc.cross_cluster_values);
                prop_assert_eq!(cc.local_values, fc.local_values);
            }
        }
        (Err(c), Err(f)) => prop_assert_eq!(c.to_string(), f.to_string()),
        (c, f) => prop_assert!(false, "cached {:?} disagrees with fresh {:?}", c, f),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cached results are identical to fresh `Compiler::compile` output across
    /// random (machine, config, loop) triples.
    #[test]
    fn session_cache_is_transparent(
        seed in 0u64..5000,
        machine_sel in 0u32..30,
        config_sel in 0u32..20,
        width in 4usize..13,
        clusters in 2usize..7,
        loop_index in 0usize..6,
    ) {
        let session = Session::quick(6, seed);
        let machine = machine_for(machine_sel, width, clusters);
        let config = config_for(machine, config_sel);

        let fresh = Compiler::new(config.clone()).compile(&session.corpus()[loop_index]);
        let compiler = session.compiler(config);
        let cold = compiler.compile_full(loop_index);
        let warm = compiler.compile_full(loop_index);

        prop_assert!(
            std::sync::Arc::ptr_eq(&cold, &warm),
            "second request must be served from the cache"
        );
        assert_same(&cold, &fresh)?;

        let stats = session.stats();
        prop_assert_eq!(stats.compilations, 1);
        prop_assert_eq!(stats.hits, 1);
    }
}
