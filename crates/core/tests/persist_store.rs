//! Persistent-store integration tests: a session with a `cache_dir` must serve
//! a warm reopen entirely from disk, degrade corrupt entries to recomputes
//! (never wrong answers), and retire every prior entry on a store-version
//! bump.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use vliw_core::pipeline::CompilerConfig;
use vliw_core::session::persist::{key_digest, loop_digest, PersistStore};
use vliw_core::session::STORE_VERSION;
use vliw_core::{kernels, LatencyModel, Machine, Session, SessionBuilder, VliwError};

/// A fresh scratch directory under the system temp dir, unique per test.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> ScratchDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("vliw_persist_{label}_{}_{n}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("scratch dir is creatable");
        ScratchDir(path)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn builder(dir: &ScratchDir) -> SessionBuilder {
    SessionBuilder::quick(10, 8644).threads(2).cache_dir(&dir.0)
}

/// Compiles and simulates the whole corpus once, returning the observable
/// results (so two sessions can be compared entry by entry).
fn run_corpus(session: &Session) -> Vec<(Result<u32, String>, Option<u64>)> {
    let compiler = session.compiler(CompilerConfig::paper_defaults(Machine::paper_single(6)));
    (0..session.num_loops())
        .map(|i| {
            let ii = match compiler.compile(i).as_ref() {
                Ok(summary) => Ok(summary.ii),
                Err(e) => Err(e.to_string()),
            };
            let cycles = compiler.simulate(i, 100).map(|run| run.measurement.total_cycles);
            (ii, cycles)
        })
        .collect()
}

#[test]
fn a_warm_reopen_serves_everything_from_disk() {
    let dir = ScratchDir::new("warm");

    let cold = builder(&dir).try_build().expect("cache dir opens");
    let cold_results = run_corpus(&cold);
    let cold_stats = cold.stats();
    assert!(cold_stats.compilations > 0, "the cold run must compile");
    assert_eq!(cold_stats.disk_hits, 0, "an empty store cannot hit");
    assert!(cold_stats.sim_runs > 0);
    assert_eq!(cold_stats.sim_disk_hits, 0);
    drop(cold);

    // Same corpus, same cache dir, fresh process state: every first-touch
    // request is a disk hit and nothing compiles or simulates again.
    let warm = builder(&dir).try_build().expect("cache dir reopens");
    assert!(warm.is_persistent());
    let warm_results = run_corpus(&warm);
    let warm_stats = warm.stats();
    assert_eq!(warm_results, cold_results, "disk round-trip must be lossless");
    assert_eq!(warm_stats.compilations, 0, "a warm reopen must not compile: {warm_stats:?}");
    assert_eq!(warm_stats.disk_hits, cold_stats.compilations);
    assert_eq!(warm_stats.sim_runs, 0, "a warm reopen must not simulate: {warm_stats:?}");
    assert_eq!(warm_stats.sim_disk_hits, cold_stats.sim_runs);
}

#[test]
fn corrupt_entries_degrade_to_recomputes() {
    let dir = ScratchDir::new("corrupt");

    let cold = builder(&dir).try_build().expect("cache dir opens");
    let cold_results = run_corpus(&cold);
    let cold_stats = cold.stats();
    drop(cold);

    // Vandalise every compile entry three different ways: non-JSON garbage,
    // truncation, and an empty file.
    let store_root = dir.0.join(format!("v{STORE_VERSION}"));
    let mut vandalised = 0usize;
    for (i, entry) in fs::read_dir(&store_root).expect("store dir exists").enumerate() {
        let path = entry.expect("dir entry").path();
        if !path.file_name().is_some_and(|n| n.to_string_lossy().starts_with("c_")) {
            continue;
        }
        match i % 3 {
            0 => fs::write(&path, b"{ this is not json").unwrap(),
            1 => {
                let text = fs::read(&path).unwrap();
                fs::write(&path, &text[..text.len() / 2]).unwrap();
            }
            _ => fs::write(&path, b"").unwrap(),
        }
        vandalised += 1;
    }
    assert!(vandalised > 0, "the cold run must have persisted compile entries");

    // The reopened session silently recompiles everything the vandalism hit —
    // and reaches the same answers.
    let warm = builder(&dir).try_build().expect("cache dir reopens");
    let warm_results = run_corpus(&warm);
    let warm_stats = warm.stats();
    assert_eq!(warm_results, cold_results, "recomputed answers must match");
    assert_eq!(
        warm_stats.compilations, cold_stats.compilations,
        "every corrupt entry must recompute: {warm_stats:?}"
    );
    assert_eq!(warm_stats.disk_hits, 0);
    // The sim entries were left intact and still serve from disk.
    assert_eq!(warm_stats.sim_runs, 0);
    assert_eq!(warm_stats.sim_disk_hits, cold_stats.sim_runs);
}

#[test]
fn a_store_version_bump_retires_prior_entries() {
    let dir = ScratchDir::new("version");

    let cold = builder(&dir).try_build().expect("cache dir opens");
    let cold_results = run_corpus(&cold);
    let cold_stats = cold.stats();
    drop(cold);

    // Simulate a schema bump: the entries now live under a version directory
    // the current code never opens.
    let current = dir.0.join(format!("v{STORE_VERSION}"));
    let retired = dir.0.join(format!("v{}", STORE_VERSION + 1));
    fs::rename(&current, &retired).expect("version dir renames");

    let fresh = builder(&dir).try_build().expect("cache dir reopens");
    let fresh_results = run_corpus(&fresh);
    let fresh_stats = fresh.stats();
    assert_eq!(fresh_results, cold_results);
    assert_eq!(
        fresh_stats.compilations, cold_stats.compilations,
        "a bumped store must start cold: {fresh_stats:?}"
    );
    assert_eq!(fresh_stats.disk_hits, 0);
    assert_eq!(fresh_stats.sim_disk_hits, 0);
}

#[test]
fn the_raw_store_round_trips_and_rejects_foreign_versions() {
    let dir = ScratchDir::new("raw");
    let store = PersistStore::open(&dir.0).expect("store opens");

    let lp = kernels::dot_product(LatencyModel::default(), 100);
    let key =
        vliw_core::CompilationKey::of(&CompilerConfig::paper_defaults(Machine::paper_single(6)));
    let (k, l) = (key_digest(&key), loop_digest(&lp));

    // Both arms of a compile result survive the disk.
    let message = VliwError::internal("no schedule under II cap").to_string();
    let failure: Result<_, VliwError> = Err(VliwError::internal("no schedule under II cap"));
    store.store_compile(k, l, &failure);
    let loaded = store.load_compile(k, l).expect("entry exists");
    assert_eq!(loaded.unwrap_err().to_string(), message);

    // An unwritten address is a plain miss, not a reject.
    let (loads, writes, rejects) = store.counter_values();
    assert_eq!((loads, writes, rejects), (1, 1, 0));
    assert!(store.load_compile(k.wrapping_add(1), l).is_none());
    assert_eq!(store.counter_values().2, 0, "a miss is not a reject");

    // An entry stamped with a different store version is rejected on load even
    // though the file parses — the per-file stamp backs up the directory split.
    let path = dir.0.join(format!("v{STORE_VERSION}")).join(format!("c_{k:016x}_{l:016x}.json"));
    let text = fs::read_to_string(&path).unwrap();
    let stamped = text.replace(
        &format!("\"store_version\":{STORE_VERSION}"),
        &format!("\"store_version\":{}", STORE_VERSION + 1),
    );
    assert_ne!(text, stamped, "the envelope must carry the version stamp");
    fs::write(&path, stamped).unwrap();
    assert!(store.load_compile(k, l).is_none());
    assert_eq!(store.counter_values().2, 1, "a version mismatch counts a reject");
}
