//! `vliw-core` — the top-level library of the reproduction of *Partitioned Schedules
//! for Clustered VLIW Architectures* (Fernandes, Llosa & Topham, IPPS/SPDP 1998).
//!
//! The crate wires the substrates together and exposes:
//!
//! * the [`Compiler`] pipeline (unroll → copy insertion → modulo scheduling /
//!   partitioning → queue allocation → analysis) — see [`pipeline`];
//! * the [`session`] layer — a shared, concurrency-safe compilation session
//!   (corpus generated once, memoized per-(configuration, loop) artifacts, a
//!   work-stealing sweep executor) that every experiment driver runs through;
//! * the [`experiments`] drivers that regenerate every table and figure of the
//!   paper's evaluation on a synthetic Perfect-Club-like corpus;
//! * re-exports of all substrate crates under one roof, so applications only need a
//!   single dependency.
//!
//! # Quickstart
//!
//! ```
//! use vliw_core::pipeline::{Compiler, CompilerConfig};
//! use vliw_core::{kernels, LatencyModel, Machine};
//!
//! // A 4-cluster machine (12 compute FUs) with queue register files.
//! let machine = Machine::paper_clustered(4, LatencyModel::default());
//! let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
//!
//! let lp = kernels::dot_product(LatencyModel::default(), 1000);
//! let out = compiler.compile(&lp).unwrap();
//! println!("II = {}, stages = {}, queues = {}",
//!          out.ii(), out.stage_count, out.queues_required());
//! assert!(out.ii() >= out.mii);
//! ```

pub mod error;
pub mod experiments;
pub mod pipeline;
pub mod protocol;
pub mod session;

pub use error::VliwError;
pub use pipeline::{Compilation, Compiler, CompilerConfig, ScratchArena};
pub use session::{
    compile_stream, CompilationKey, LoopSummary, Session, SessionBuilder, SessionCompiler,
    SessionStats, SimSummary, StreamConfig, StreamReport, VerifySummary,
};

// Re-export the substrate crates so downstream users (examples, benches, tests) can
// reach everything through `vliw_core::...`.
pub use vliw_analysis as analysis;
pub use vliw_bounds as bounds;
pub use vliw_ddg as ddg;
pub use vliw_loopgen as loopgen;
pub use vliw_machine as machine;
pub use vliw_obs as obs;
pub use vliw_partition as partition;
pub use vliw_qrf as qrf;
pub use vliw_sched as sched;
pub use vliw_sim as sim;
pub use vliw_unroll as unroll;
pub use vliw_verify as verify;

// Frequently used items, re-exported flat for convenience.
pub use vliw_ddg::{kernels, Ddg, DdgBuilder, LatencyModel, Loop, OpClass, OpId, OpKind};
pub use vliw_loopgen::{generate_corpus, CorpusConfig};
pub use vliw_machine::{
    copy_units_for, ClusterConfig, ClusterId, FuId, FuMix, Machine, MachineConfig, MachineSpace,
    RingConfig, SweepGrid, Topology,
};
pub use vliw_partition::{partition_schedule, CommStats, PartitionOptions, PartitionResult};
pub use vliw_qrf::{allocate_queues, insert_copies, q_compatible, use_lifetimes, QueueAllocation};
pub use vliw_sched::{modulo_schedule, ImsOptions, ImsResult, SchedError, Schedule};
pub use vliw_sim::{simulate, SimMeasurement, SimRun, SimViolation};
pub use vliw_unroll::{ii_speedup, select_unroll_factor, unroll_ddg};
// `vliw_verify::verify` itself stays behind the module path (`verify::verify`)
// to avoid shadowing the module re-export above; the types come out flat.
pub use vliw_verify::{Fault, Verification, Violation, ALL_FAULTS};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_compiles_and_validates() {
        let machine = Machine::paper_clustered(4, LatencyModel::default());
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
        let lp = kernels::dot_product(LatencyModel::default(), 1000);
        let out = compiler.compile(&lp).unwrap();
        assert!(out.schedule.validate(&out.transformed, &machine).is_ok());
        assert!(out.ii() >= out.mii);
    }
}
