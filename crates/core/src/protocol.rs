//! The `vliw-serve` wire protocol: length-prefixed JSON frames over any byte
//! stream.
//!
//! A connection is a sequence of *frames* in each direction.  Every frame is a
//! 4-byte big-endian length followed by exactly that many bytes of UTF-8 JSON
//! (compact form — the frame boundary, not whitespace, delimits documents).
//! Clients send [`RequestEnvelope`]s and receive [`ResponseEnvelope`]s; the
//! `id` field pairs them up, so a client may pipeline several requests on one
//! connection and match answers as they arrive.  The daemon answers every
//! request — failures travel as [`WireResponse::Error`] carrying a
//! [`VliwError`] (which deserializes client-side as [`VliwError::Remote`],
//! keeping the server's error kind and message while staying honest about
//! where the failure happened).
//!
//! The protocol is versioned ([`PROTOCOL_VERSION`]); the version travels in
//! [`ServerInfo`] so a client can refuse to talk to a daemon it does not
//! understand before submitting work.  Frames are capped at
//! [`MAX_FRAME_BYTES`] in both directions: a corrupt or malicious length
//! prefix must not make either side allocate gigabytes.
//!
//! Everything here is transport-agnostic (`Read`/`Write`), so the same code
//! serves Unix sockets, TCP sockets and the in-process `Vec<u8>` pipes the
//! tests use.

use std::io::{ErrorKind, Read, Write};

use serde::{de, Deserialize, Serialize, Value};

use crate::error::VliwError;
use crate::experiments::{ExperimentRequest, ExperimentResponse};
use crate::session::SessionStats;

/// Version of the wire protocol; bumped on any incompatible change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a single frame's payload, in bytes.  Large enough for any
/// full-corpus report, small enough that a corrupt length prefix cannot drive
/// either side out of memory.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

/// Writes one frame: 4-byte big-endian length, then the compact JSON of
/// `value`.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, value: &Value) -> Result<(), VliwError> {
    let text = serde_json::to_string(value).map_err(|e| VliwError::Protocol(e.to_string()))?;
    let bytes = text.as_bytes();
    let len =
        u32::try_from(bytes.len()).ok().filter(|len| *len <= MAX_FRAME_BYTES).ok_or_else(|| {
            VliwError::Protocol(format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                bytes.len()
            ))
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, or `None` on a clean end-of-stream (the peer closed the
/// connection *between* frames).  A stream that ends mid-frame is a protocol
/// error, as is a frame above [`MAX_FRAME_BYTES`] or one that is not valid
/// JSON.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Option<Value>, VliwError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(VliwError::Protocol("connection closed mid-frame header".to_string()))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(VliwError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            VliwError::Protocol("connection closed mid-frame".to_string())
        } else {
            VliwError::from(e)
        }
    })?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| VliwError::Protocol(format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str::<Value>(text)
        .map(Some)
        .map_err(|e| VliwError::Protocol(format!("frame is not valid JSON: {e}")))
}

/// Serializes `message` and writes it as one frame.
pub fn write_message<W: Write + ?Sized, T: Serialize>(
    w: &mut W,
    message: &T,
) -> Result<(), VliwError> {
    write_frame(w, &message.serialize())
}

/// Reads one frame and deserializes it, or `None` on a clean end-of-stream.
pub fn read_message<R: Read + ?Sized, T: Deserialize>(r: &mut R) -> Result<Option<T>, VliwError> {
    match read_frame(r)? {
        Some(value) => T::deserialize(&value)
            .map(Some)
            .map_err(|e| VliwError::Protocol(format!("malformed message: {e}"))),
        None => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------------

/// What a daemon is serving: the session parameters a client must agree with
/// before submitting work, plus the protocol and store versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerInfo {
    /// Number of loops in the daemon's corpus.
    pub corpus_size: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Worker threads of the daemon's session executor.
    pub threads: usize,
    /// Wire protocol version ([`PROTOCOL_VERSION`]).
    pub protocol_version: u32,
    /// On-disk artifact store format version
    /// ([`crate::session::STORE_VERSION`]).
    pub store_version: u32,
    /// Whether the daemon's session persists artifacts to disk.
    pub persistent: bool,
}

/// A client request body.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Describe the daemon's session ([`ServerInfo`]).
    Info,
    /// Run experiments over the daemon's session, in order.
    Run(Vec<ExperimentRequest>),
    /// Report the session's cache statistics.
    Stats,
    /// Report the daemon's telemetry as Prometheus text exposition
    /// (per-request-type latency histograms, store counters, uptime, RSS).
    Metrics,
    /// Stop accepting connections and exit after the in-flight ones drain.
    Shutdown,
}

/// A daemon response body.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Info`].
    Info(ServerInfo),
    /// Answer to [`WireRequest::Run`]: one response per request, in order.
    Run(Vec<ExperimentResponse>),
    /// Answer to [`WireRequest::Stats`].
    Stats(SessionStats),
    /// Answer to [`WireRequest::Metrics`]: the Prometheus text exposition.
    Metrics(String),
    /// Acknowledges [`WireRequest::Shutdown`].
    Shutdown,
    /// The request failed; deserializes as [`VliwError::Remote`].
    Error(VliwError),
}

/// One client request: a connection-local `id` and the body.  The daemon
/// echoes the `id` in its [`ResponseEnvelope`].
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Connection-local request id, echoed in the response.
    pub id: u64,
    /// The request body.
    pub body: WireRequest,
}

/// One daemon response, paired to its request by `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// The `id` of the request this answers.
    pub id: u64,
    /// The response body.
    pub body: WireResponse,
}

// The vendored serde derive covers named-field structs of primitives
// (`ServerInfo` above) but not data-carrying enums, so the envelopes and
// their bodies are serialized by hand as one flat tagged object:
// `{"id": N, "type": "<tag>", ...body}`.

/// Builds the flat `{"id", "type", ...}` envelope object.
fn envelope(id: u64, tag: &str, extra: Option<(&str, Value)>) -> Value {
    let mut entries = vec![
        ("id".to_string(), id.serialize()),
        ("type".to_string(), Value::String(tag.to_string())),
    ];
    if let Some((key, value)) = extra {
        entries.push((key.to_string(), value));
    }
    Value::Object(entries)
}

/// An envelope's `id`, `type` tag and remaining entries, as read off the wire.
type EnvelopeParts<'a> = (u64, &'a str, &'a [(String, Value)]);

/// Reads the `id` and `type` fields off an envelope object.
fn envelope_parts(v: &Value) -> Result<EnvelopeParts<'_>, de::Error> {
    let entries = v.as_object().ok_or_else(|| de::Error::unexpected("object", v))?;
    let id: u64 = de::field(entries, "id")?;
    match v.get("type") {
        Some(Value::String(tag)) => Ok((id, tag, entries)),
        Some(other) => Err(de::Error::unexpected("type tag", other)),
        None => Err(de::Error::custom("missing field `type`")),
    }
}

impl Serialize for RequestEnvelope {
    fn serialize(&self) -> Value {
        match &self.body {
            WireRequest::Info => envelope(self.id, "info", None),
            WireRequest::Run(requests) => {
                envelope(self.id, "run", Some(("requests", requests.serialize())))
            }
            WireRequest::Stats => envelope(self.id, "stats", None),
            WireRequest::Metrics => envelope(self.id, "metrics", None),
            WireRequest::Shutdown => envelope(self.id, "shutdown", None),
        }
    }
}

impl Deserialize for RequestEnvelope {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let (id, tag, entries) = envelope_parts(v)?;
        let body = match tag {
            "info" => WireRequest::Info,
            "run" => WireRequest::Run(de::field(entries, "requests")?),
            "stats" => WireRequest::Stats,
            "metrics" => WireRequest::Metrics,
            "shutdown" => WireRequest::Shutdown,
            other => return Err(de::Error::custom(format!("unknown request type `{other}`"))),
        };
        Ok(RequestEnvelope { id, body })
    }
}

impl Serialize for ResponseEnvelope {
    fn serialize(&self) -> Value {
        match &self.body {
            WireResponse::Info(info) => envelope(self.id, "info", Some(("info", info.serialize()))),
            WireResponse::Run(responses) => {
                envelope(self.id, "run", Some(("responses", responses.serialize())))
            }
            WireResponse::Stats(stats) => {
                envelope(self.id, "stats", Some(("stats", stats.serialize())))
            }
            WireResponse::Metrics(text) => {
                envelope(self.id, "metrics", Some(("text", Value::String(text.clone()))))
            }
            WireResponse::Shutdown => envelope(self.id, "shutdown", None),
            WireResponse::Error(error) => {
                envelope(self.id, "error", Some(("error", error.serialize())))
            }
        }
    }
}

impl Deserialize for ResponseEnvelope {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let (id, tag, entries) = envelope_parts(v)?;
        let body = match tag {
            "info" => WireResponse::Info(de::field(entries, "info")?),
            "run" => WireResponse::Run(de::field(entries, "responses")?),
            "stats" => WireResponse::Stats(de::field(entries, "stats")?),
            "metrics" => WireResponse::Metrics(de::field(entries, "text")?),
            "shutdown" => WireResponse::Shutdown,
            "error" => WireResponse::Error(de::field(entries, "error")?),
            other => return Err(de::Error::custom(format!("unknown response type `{other}`"))),
        };
        Ok(ResponseEnvelope { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_round_trip(value: Value) -> Value {
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        let mut cursor = Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "stream ends cleanly");
        back
    }

    #[test]
    fn frames_round_trip_and_the_stream_ends_cleanly() {
        let value = Value::Object(vec![
            ("id".to_string(), Value::Int(7)),
            ("type".to_string(), Value::String("info".to_string())),
        ]);
        assert_eq!(frame_round_trip(value.clone()), value);
    }

    #[test]
    fn several_frames_on_one_stream_arrive_in_order() {
        let mut buf = Vec::new();
        for i in 0..3i64 {
            write_frame(&mut buf, &Value::Int(i)).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for i in 0..3i64 {
            assert_eq!(read_frame(&mut cursor).unwrap(), Some(Value::Int(i)));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn truncated_frames_are_protocol_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Value::String("hello, world".to_string())).unwrap();
        for cut in [1, 3, 5, buf.len() - 1] {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert_eq!(err.kind(), "protocol", "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xxxx");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn non_json_frames_are_protocol_errors() {
        let payload = b"not json";
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(payload);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), "protocol");
    }

    #[test]
    fn request_envelopes_round_trip() {
        let requests = vec![
            RequestEnvelope { id: 1, body: WireRequest::Info },
            RequestEnvelope {
                id: 2,
                body: WireRequest::Run(vec![
                    ExperimentRequest::Fig3,
                    ExperimentRequest::Resources { cluster_counts: vec![4, 5, 6] },
                ]),
            },
            RequestEnvelope { id: 3, body: WireRequest::Stats },
            RequestEnvelope { id: 4, body: WireRequest::Metrics },
            RequestEnvelope { id: u64::MAX, body: WireRequest::Shutdown },
        ];
        for request in requests {
            let mut buf = Vec::new();
            write_message(&mut buf, &request).unwrap();
            let back: RequestEnvelope =
                read_message(&mut Cursor::new(buf)).unwrap().expect("one message");
            assert_eq!(back, request);
        }
    }

    #[test]
    fn response_envelopes_round_trip() {
        let responses = vec![
            ResponseEnvelope {
                id: 1,
                body: WireResponse::Info(ServerInfo {
                    corpus_size: 32,
                    seed: 386,
                    threads: 4,
                    protocol_version: PROTOCOL_VERSION,
                    store_version: crate::session::STORE_VERSION,
                    persistent: true,
                }),
            },
            ResponseEnvelope { id: 2, body: WireResponse::Run(Vec::new()) },
            ResponseEnvelope { id: 3, body: WireResponse::Stats(SessionStats::default()) },
            ResponseEnvelope { id: 4, body: WireResponse::Shutdown },
            ResponseEnvelope {
                id: 5,
                body: WireResponse::Error(VliwError::InvalidRequest("bad grid".to_string())),
            },
            ResponseEnvelope {
                id: 6,
                body: WireResponse::Metrics(
                    "# TYPE vliw_uptime_seconds gauge\nvliw_uptime_seconds 1.5\n".to_string(),
                ),
            },
        ];
        for response in responses {
            let mut buf = Vec::new();
            write_message(&mut buf, &response).unwrap();
            let back: ResponseEnvelope =
                read_message(&mut Cursor::new(buf)).unwrap().expect("one message");
            match (&back.body, &response.body) {
                // Errors deserialize as `Remote`, preserving kind and message.
                (WireResponse::Error(got), WireResponse::Error(sent)) => {
                    assert_eq!(back.id, response.id);
                    match got {
                        VliwError::Remote { kind, message } => {
                            assert_eq!(kind, sent.kind());
                            assert_eq!(message, &sent.to_string());
                        }
                        other => panic!("expected Remote, got {other:?}"),
                    }
                }
                _ => assert_eq!(back, response),
            }
        }
    }

    #[test]
    fn unknown_envelope_types_are_rejected() {
        let value = Value::Object(vec![
            ("id".to_string(), Value::Int(1)),
            ("type".to_string(), Value::String("dance".to_string())),
        ]);
        assert!(RequestEnvelope::deserialize(&value).is_err());
        assert!(ResponseEnvelope::deserialize(&value).is_err());
    }
}
