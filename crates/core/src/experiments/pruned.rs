//! The certificate-pruned design-space sweep.
//!
//! The exhaustive sweep ([`super::sweep`]) consults the compiler pipeline for
//! every (grid point, loop) pair — the memo store collapses the *compiles* to
//! one per machine shape, but each of the `configs × loops` pairs still pays a
//! store consultation and a classification.  On the huge grid (103 680
//! configurations, 60 shapes) that is 3.3 million consultations for what is,
//! mathematically, 60 shapes' worth of information.
//!
//! This driver classifies the same pairs from **certificates** instead:
//!
//! 1. Per (shape, loop), one *witness* consultation compiles on the shape's
//!    probe machine and extracts the exact storage thresholds of the verdict
//!    bits: the allocation fits iff `q ≥ max(private queues, comm queues)`,
//!    `c ≥ private depth` and `d ≥ comm depth` (the pool-split
//!    [`vliw_partition::CommStats::fits_pools`] predicate, decomposed per
//!    axis), and the execution is capacity-clean iff the schedule is
//!    fault-free and `q·c` / `q·d` cover the proved occupancy peaks.  The
//!    transfer of these thresholds across the shape's storage sub-grid is the
//!    `B006-MONOTONE` certificate of `vliw-bounds`.
//! 2. Each proven-monotone storage axis is **binary-searched** for its
//!    threshold index ([`[T]::partition_point`]) instead of enumerated, and
//!    the per-config verdict counts come from three-dimensional difference
//!    arrays with suffix sums — `O(loops · log axis + grid)` per shape rather
//!    than `O(loops · grid)`.
//! 3. Pairs whose config cannot even store the certified minimum of live
//!    values (`B004-STORAGE`, [`vliw_bounds::LoopBounds::min_live`] against
//!    [`vliw_bounds::value_slots`]) are additionally counted as decided by
//!    DDG arithmetic alone — the pigeonhole needs no witness thresholds for
//!    its two capacity bits.
//!
//! The resulting report is **verdict-identical** to the exhaustive driver —
//! same rows, same fractions (the same integer count divided by the same
//! denominator), same frontier marks — with `shapes × loops` consultations
//! instead of `configs × loops`; the tests assert equality row for row.  The
//! audit mode re-derives a seeded random sample of pruned verdicts through
//! the exhaustive classification path and reports the agreement rate in the
//! [`PruneReport`], so the certificates are *checked*, not trusted.

use serde::{Deserialize, Serialize};
use vliw_analysis::{mark_pareto, SweepRow};
use vliw_bounds::{value_slots, BoundsAnalyzer};
use vliw_ddg::LatencyModel;
use vliw_machine::{MachineConfig, SweepGrid};

use super::sweep::{
    classify_loop, classify_loop_static, Classify, LoopVerdict, SweepReport, SWEEP_TRIP_COUNT,
};
use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::{LoopSummary, Session};

/// How many (config, loop) pairs one certificate code decided.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeCount {
    /// Stable certificate code (`B004-STORAGE`, `B006-MONOTONE`).
    pub code: String,
    /// Pairs the certificate decided.
    pub count: usize,
}

/// Accounting of one pruned sweep run, attached to its [`SweepReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneReport {
    /// Total (config, loop) pairs the grid classifies.
    pub pairs: usize,
    /// Pairs that consulted the compiler pipeline (one witness per shape and
    /// loop; every storage config of the shape shares it).
    pub configs_compiled: usize,
    /// Pairs served by a certificate instead of a consultation.
    pub configs_pruned: usize,
    /// `configs_pruned / pairs`.
    pub pruning_ratio: f64,
    /// Per-certificate-code counts; the counts sum to `pairs` (every verdict
    /// carries a certificate, anchored by the witness consultations).
    pub codes: Vec<CodeCount>,
    /// Pruned pairs re-derived through the exhaustive classification path.
    pub audited: usize,
    /// Audited pairs whose compiled verdict matched the certificate's.
    pub audit_agreed: usize,
}

impl PruneReport {
    /// True when every audited pair agreed (vacuously true when none were).
    pub fn audit_clean(&self) -> bool {
        self.audited == self.audit_agreed
    }
}

/// The per-loop storage thresholds one witness consultation certifies for a
/// whole machine shape (the payload of a `B006-MONOTONE` certificate).
#[derive(Debug, Clone, Copy)]
struct LoopThresholds {
    /// Allocation fits iff `queues_per_cluster >= q_alloc`, …
    q_alloc: usize,
    /// … `queue_capacity >= c_alloc`, …
    c_alloc: usize,
    /// … and `link_depth >= d_alloc`.
    d_alloc: usize,
    /// The schedule itself is fault-free (a shape property; a faulty schedule
    /// is never simulation-clean at any storage size).
    faults_clean: bool,
    /// Simulation-clean additionally needs `q·c >= private_peak` …
    private_peak: usize,
    /// … and `q·d >= comm_peak`.
    comm_peak: usize,
    /// Certified minimum of simultaneously live values (`vliw-bounds`), for
    /// the `B004-STORAGE` accounting.
    min_live: usize,
}

fn thresholds_of(
    summary: &LoopSummary,
    schedule_faults: u64,
    private_peak: usize,
    comm_peak: usize,
    min_live: usize,
) -> LoopThresholds {
    let (q_alloc, c_alloc, d_alloc) = match &summary.comm {
        Some(comm) => (
            comm.max_private_queues_per_cluster.max(comm.max_comm_queues_per_link),
            comm.max_private_queue_depth,
            comm.max_comm_queue_depth,
        ),
        None => (summary.queues_required, summary.max_queue_depth, 0),
    };
    LoopThresholds {
        q_alloc,
        c_alloc,
        d_alloc,
        faults_clean: schedule_faults == 0,
        private_peak,
        comm_peak,
        min_live,
    }
}

/// The verdict the thresholds certify for one storage config — the closed
/// form the exhaustive classifiers compute from the full artifacts.
fn verdict_of(thresholds: &Option<LoopThresholds>, config: &MachineConfig) -> LoopVerdict {
    match thresholds {
        None => LoopVerdict::default(),
        Some(t) => LoopVerdict {
            schedulable: true,
            alloc_fits: config.queues_per_cluster >= t.q_alloc
                && config.queue_capacity >= t.c_alloc
                && config.link_depth >= t.d_alloc,
            sim_clean: t.faults_clean
                && config.queues_per_cluster * config.queue_capacity >= t.private_peak
                && config.queues_per_cluster * config.link_depth >= t.comm_peak,
        },
    }
}

/// Verdict counts over one machine shape's storage sub-grid, aggregated with
/// per-axis binary searches and 3-D difference arrays instead of per-config
/// enumeration.
struct ShapeCounts {
    nc: usize,
    nd: usize,
    schedulable: usize,
    alloc: Vec<u32>,
    sim: Vec<u32>,
    clean: Vec<u32>,
}

impl ShapeCounts {
    fn new(nq: usize, nc: usize, nd: usize) -> Self {
        let len = nq * nc * nd;
        ShapeCounts {
            nc,
            nd,
            schedulable: 0,
            alloc: vec![0; len],
            sim: vec![0; len],
            clean: vec![0; len],
        }
    }

    fn idx(&self, qi: usize, ci: usize, di: usize) -> usize {
        (qi * self.nc + ci) * self.nd + di
    }

    /// Accumulates one loop's thresholds: for each queue-count index, binary-
    /// search the capacity and link-depth axes for the first admissible value
    /// and mark the upper-set corner in the difference arrays.
    fn add_loop(&mut self, t: &LoopThresholds, qs: &[usize], cs: &[usize], ds: &[usize]) {
        self.schedulable += 1;
        let iq = qs.partition_point(|&q| q < t.q_alloc);
        let ic = cs.partition_point(|&c| c < t.c_alloc);
        let id = ds.partition_point(|&d| d < t.d_alloc);
        for (qi, &q) in qs.iter().enumerate() {
            let cmin = cs.partition_point(|&c| q * c < t.private_peak);
            let dmin = ds.partition_point(|&d| q * d < t.comm_peak);
            if t.faults_clean {
                self.bump_sim(qi, cmin, dmin);
            }
            if qi >= iq {
                self.bump_alloc(qi, ic, id);
                if t.faults_clean {
                    self.bump_clean(qi, ic.max(cmin), id.max(dmin));
                }
            }
        }
    }

    fn bump_alloc(&mut self, qi: usize, ci: usize, di: usize) {
        if ci < self.nc && di < self.nd {
            let i = self.idx(qi, ci, di);
            self.alloc[i] += 1;
        }
    }

    fn bump_sim(&mut self, qi: usize, ci: usize, di: usize) {
        if ci < self.nc && di < self.nd {
            let i = self.idx(qi, ci, di);
            self.sim[i] += 1;
        }
    }

    fn bump_clean(&mut self, qi: usize, ci: usize, di: usize) {
        if ci < self.nc && di < self.nd {
            let i = self.idx(qi, ci, di);
            self.clean[i] += 1;
        }
    }

    /// Turns the corner marks into per-config counts: a loop marked at corner
    /// `(cmin, dmin)` is admissible at every index pair at or above it (the
    /// axes are ascending), so the count at `(ci, di)` is the 2-D prefix sum
    /// of the marks over `ci' <= ci, di' <= di`, per queue-count plane.
    fn resolve(&mut self) {
        let nq = self.alloc.len() / (self.nc * self.nd);
        for arr in [&mut self.alloc, &mut self.sim, &mut self.clean] {
            for qi in 0..nq {
                for ci in 0..self.nc {
                    for di in 0..self.nd {
                        let i = (qi * self.nc + ci) * self.nd + di;
                        let mut v = arr[i];
                        if ci > 0 {
                            v += arr[i - self.nd];
                        }
                        if di > 0 {
                            v += arr[i - 1];
                        }
                        if ci > 0 && di > 0 {
                            v -= arr[i - self.nd - 1];
                        }
                        arr[i] = v;
                    }
                }
            }
        }
    }
}

/// A tiny deterministic PRNG (splitmix64) for the audit sample; seeded from
/// the corpus seed so runs are reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the certificate-pruned design-space sweep (no audit sample).
pub fn pruned_sweep_experiment(
    session: &Session,
    grid: SweepGrid,
    classify: Classify,
) -> Result<SweepReport, VliwError> {
    pruned_sweep_experiment_with(session, grid, classify, 0)
}

/// Runs the certificate-pruned design-space sweep, re-deriving `audit`
/// randomly sampled pairs through the exhaustive classification path.
pub fn pruned_sweep_experiment_with(
    session: &Session,
    grid: SweepGrid,
    classify: Classify,
    audit: usize,
) -> Result<SweepReport, VliwError> {
    let space = grid.space();
    let configs = space.configs();
    let qs = &space.queues_per_cluster;
    let cs = &space.queue_capacities;
    let ds = &space.link_depths;
    for axis in [qs, cs, ds] {
        if axis.windows(2).any(|w| w[0] >= w[1]) {
            return Err(VliwError::internal("storage axes must be strictly ascending"));
        }
    }
    let (nq, nc, nd) = (qs.len(), cs.len(), ds.len());
    let per_shape = nq * nc * nd;

    let analyzer = BoundsAnalyzer::new(LatencyModel::default());
    let mut rows = Vec::with_capacity(configs.len());
    let mut shape_thresholds: Vec<Vec<Option<LoopThresholds>>> =
        Vec::with_capacity(space.num_shapes());
    let mut b004_pairs = 0usize;

    for shape in configs.chunks(per_shape) {
        let probe = shape[0].probe_machine(Default::default());
        let compiler = session.compiler(CompilerConfig::paper_defaults(probe.clone()));
        let thresholds: Vec<Option<LoopThresholds>> = session.try_sweep(|i, lp| {
            let bounds = analyzer.analyze(i, lp, &probe);
            match classify {
                Classify::Static => {
                    let Some(verify) = compiler.verify(i) else {
                        return Ok(None);
                    };
                    compiler
                        .map_ok(i, |c| {
                            thresholds_of(
                                c,
                                verify.schedule_faults,
                                verify.max_private_peak,
                                verify.max_comm_peak,
                                bounds.min_live,
                            )
                        })
                        .map(Some)
                        .ok_or_else(|| VliwError::internal("verified loops compiled"))
                }
                Classify::Dynamic => {
                    let Some(run) = compiler.simulate(i, SWEEP_TRIP_COUNT) else {
                        return Ok(None);
                    };
                    compiler
                        .map_ok(i, |c| {
                            thresholds_of(
                                c,
                                run.schedule_faults,
                                run.measurement.max_private_peak(),
                                run.measurement.max_comm_peak(),
                                bounds.min_live,
                            )
                        })
                        .map(Some)
                        .ok_or_else(|| VliwError::internal("simulated loops compiled"))
                }
            }
        })?;
        let loops = thresholds.len();

        let mut counts = ShapeCounts::new(nq, nc, nd);
        for t in thresholds.iter().flatten() {
            counts.add_loop(t, qs, cs, ds);
        }
        counts.resolve();

        for (k, config) in shape.iter().enumerate() {
            let (qi, ci, di) = (k / (nc * nd), (k / nd) % nc, k % nd);
            let i = counts.idx(qi, ci, di);
            let frac = |count: usize| {
                if loops == 0 {
                    0.0
                } else {
                    count as f64 / loops as f64
                }
            };
            rows.push(SweepRow {
                clusters: config.clusters,
                fu_mix: config.fu_mix.tag().to_string(),
                topology: config.topology.tag().to_string(),
                fus: config.clusters * config.fu_mix.compute_fus(),
                queues_per_cluster: config.queues_per_cluster,
                queue_capacity: config.queue_capacity,
                link_depth: config.link_depth,
                storage_bits: config.storage_bits(),
                loops,
                frac_schedulable: frac(counts.schedulable),
                frac_alloc_fits: frac(counts.alloc[i] as usize),
                frac_sim_clean: frac(counts.sim[i] as usize),
                frac_clean: frac(counts.clean[i] as usize),
                pareto: false,
                paper_point: config.is_paper_point(),
            });
            let slots = value_slots(config);
            b004_pairs += thresholds.iter().flatten().filter(|t| t.min_live > slots).count();
        }
        shape_thresholds.push(thresholds);
    }
    mark_pareto(&mut rows);

    let loops = shape_thresholds.first().map_or(0, Vec::len);
    let pairs = configs.len() * loops;
    let configs_compiled = space.num_shapes() * loops;
    let configs_pruned = pairs.saturating_sub(configs_compiled);

    let mut audited = 0;
    let mut audit_agreed = 0;
    if audit > 0 && pairs > 0 {
        let mut state = session.config().corpus.seed ^ 0xB0B5_0A11_D17B_0001;
        for _ in 0..audit {
            let pick = (splitmix64(&mut state) % pairs as u64) as usize;
            let (ci, li) = (pick / loops, pick % loops);
            let config = &configs[ci];
            let certified = verdict_of(&shape_thresholds[ci / per_shape][li], config);
            let compiled = audit_pair(session, config, li, classify)?;
            audited += 1;
            if compiled == certified {
                audit_agreed += 1;
            }
        }
    }

    Ok(SweepReport {
        corpus_size: session.config().corpus.num_loops,
        seed: session.config().corpus.seed,
        grid: grid.name().to_string(),
        trip_count: SWEEP_TRIP_COUNT,
        configs: space.num_configs(),
        shapes: space.num_shapes(),
        prune: Some(PruneReport {
            pairs,
            configs_compiled,
            configs_pruned,
            pruning_ratio: if pairs == 0 { 0.0 } else { configs_pruned as f64 / pairs as f64 },
            codes: vec![
                CodeCount { code: "B004-STORAGE".to_string(), count: b004_pairs },
                CodeCount { code: "B006-MONOTONE".to_string(), count: pairs - b004_pairs },
            ],
            audited,
            audit_agreed,
        }),
        rows,
    })
}

/// Re-derives one (config, loop) verdict through the exhaustive path — full
/// artifacts out of the session store, classified against the real machine.
fn audit_pair(
    session: &Session,
    config: &MachineConfig,
    loop_index: usize,
    classify: Classify,
) -> Result<LoopVerdict, VliwError> {
    let probe = config.probe_machine(Default::default());
    let machine = config.machine(Default::default());
    let compiler = session.compiler(CompilerConfig::paper_defaults(probe));
    match classify {
        Classify::Static => match compiler.verify(loop_index) {
            None => Ok(LoopVerdict::default()),
            Some(v) => compiler
                .map_ok(loop_index, |c| classify_loop_static(c, &v, &machine, config))
                .ok_or_else(|| VliwError::internal("verified loops compiled")),
        },
        Classify::Dynamic => match compiler.simulate(loop_index, SWEEP_TRIP_COUNT) {
            None => Ok(LoopVerdict::default()),
            Some(run) => compiler
                .map_ok(loop_index, |c| classify_loop(c, &run, &machine, config))
                .ok_or_else(|| VliwError::internal("simulated loops compiled")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::sweep_experiment_with;

    fn strip_prune(mut report: SweepReport) -> SweepReport {
        report.prune = None;
        report
    }

    #[test]
    fn pruned_small_grid_is_verdict_identical_to_the_exhaustive_sweep() {
        let session = Session::quick(10, 386);
        for classify in [Classify::Static, Classify::Dynamic] {
            let exhaustive = sweep_experiment_with(&session, SweepGrid::Small, classify).unwrap();
            let pruned = pruned_sweep_experiment(&session, SweepGrid::Small, classify).unwrap();
            assert_eq!(strip_prune(pruned), exhaustive, "{}", classify.name());
        }
    }

    #[test]
    fn pruned_paper_grid_is_verdict_identical_to_the_exhaustive_sweep() {
        let session = Session::quick(8, 99);
        let exhaustive =
            sweep_experiment_with(&session, SweepGrid::Paper, Classify::Static).unwrap();
        let pruned = pruned_sweep_experiment(&session, SweepGrid::Paper, Classify::Static).unwrap();
        assert_eq!(strip_prune(pruned), exhaustive);
    }

    #[test]
    fn prune_accounting_adds_up() {
        let session = Session::quick(6, 5);
        let report = pruned_sweep_experiment(&session, SweepGrid::Paper, Classify::Static).unwrap();
        let prune = report.prune.as_ref().unwrap();
        assert_eq!(prune.pairs, report.configs * 6);
        assert_eq!(prune.configs_compiled, report.shapes * 6);
        assert_eq!(prune.configs_pruned, prune.pairs - prune.configs_compiled);
        assert!(prune.pruning_ratio > 0.9, "paper grid: 192 configs over 3 shapes");
        let code_total: usize = prune.codes.iter().map(|c| c.count).sum();
        assert_eq!(code_total, prune.pairs, "every pair carries a certificate");
        assert!(
            prune.configs_compiled * 5 <= prune.pairs,
            "the paper grid must need at least 5x fewer consultations"
        );
        assert_eq!(prune.audited, 0);
        assert!(prune.audit_clean(), "vacuously clean without an audit");
    }

    #[test]
    fn audited_pairs_always_agree_with_the_certificates() {
        let session = Session::quick(7, 42);
        for classify in [Classify::Static, Classify::Dynamic] {
            let report =
                pruned_sweep_experiment_with(&session, SweepGrid::Small, classify, 25).unwrap();
            let prune = report.prune.unwrap();
            assert_eq!(prune.audited, 25, "{}", classify.name());
            assert_eq!(
                prune.audit_agreed,
                25,
                "{}: certificate/compiler disagreement",
                classify.name()
            );
            assert!(prune.audit_clean());
        }
    }

    #[test]
    fn the_pruned_driver_consults_once_per_shape_and_loop() {
        let session = Session::quick(9, 386);
        let _ = pruned_sweep_experiment(&session, SweepGrid::Small, Classify::Static).unwrap();
        let stats = session.stats();
        // One shape: 9 witness consultations, no per-config re-classification.
        assert_eq!(stats.unique_keys, 1);
        assert!(stats.compilations <= 9);
    }

    #[test]
    fn prune_reports_round_trip_through_serde() {
        let session = Session::quick(5, 11);
        let report =
            pruned_sweep_experiment_with(&session, SweepGrid::Small, Classify::Static, 4).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"prune\""), "{json}");
        assert!(json.contains("B006-MONOTONE"), "{json}");
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
