//! The static-verification experiment: prove every scheduled loop sound
//! without executing a single cycle.
//!
//! For each machine of [`sim_machines`] every corpus loop that schedules is
//! passed through the `vliw-verify` flow-sensitive checker, which proves the
//! same invariant set the simulator observes — dependence distances under
//! modulo wraparound, FU legality per MRT row, ring adjacency of every flow
//! edge, per-pool steady-state occupancy, declared queue depths, copy-bus
//! bounds — in `O(ops + edges)` per loop instead of `O(cycles · N)`.  The
//! rows therefore mirror `figures simulate`'s verdict columns (violations,
//! peaks, copy-bus utilisation) with no trip-count axis: a verification is a
//! steady-state proof, so one row per machine covers every `N`.
//!
//! The driver is the fast half of the differential pair: `tests/` assert its
//! verdicts coincide with the simulator's on clean and fault-injected
//! schedules alike, which is what lets `sweep --classify static` stand in for
//! dynamic classification.

use serde::{Deserialize, Serialize};
use vliw_analysis::{mean, TextTable};

use crate::error::VliwError;
use crate::experiments::simulate::sim_machines;
use crate::pipeline::CompilerConfig;
use crate::session::{CachedVerify, Session};

/// One aggregated verification row: a (machine) sweep point over the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifyRow {
    /// Machine name.
    pub machine: String,
    /// Compute FUs of the machine.
    pub fus: usize,
    /// Clusters of the machine.
    pub clusters: usize,
    /// Loops that scheduled and were verified.
    pub loops: usize,
    /// Total schedule faults proved across the point (0 when healthy).
    pub schedule_faults: u64,
    /// Total capacity faults proved across the point.
    pub capacity_faults: u64,
    /// Loops with at least one violation of any class.
    pub loops_with_violations: usize,
    /// Largest private-QRF steady-state peak over all loops and clusters.
    pub max_private_peak: usize,
    /// Largest ring-link steady-state peak over all loops and links.
    pub max_comm_peak: usize,
    /// Mean steady-state copy-bus utilisation over the verified loops.
    pub mean_copy_bus_utilisation: f64,
}

/// Everything one `figures verify` run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Number of loops in the corpus the run evaluated.
    pub corpus_size: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// One row per machine.
    pub rows: Vec<VerifyRow>,
}

impl VerifyReport {
    /// Total violations of both classes across every row.
    pub fn total_violations(&self) -> u64 {
        self.rows.iter().map(|r| r.schedule_faults + r.capacity_faults).sum()
    }

    /// True if every loop on every machine verified clean.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }
}

/// Runs the static-verification experiment over `session`.
pub fn verify_experiment(session: &Session) -> Result<VerifyReport, VliwError> {
    let mut rows = Vec::new();
    for machine in sim_machines() {
        let fus = machine.num_compute_fus();
        let clusters = machine.num_clusters();
        let name = machine.name().to_string();
        let compiler = session.compiler(CompilerConfig::paper_defaults(machine));
        let verdicts: Vec<Option<CachedVerify>> =
            session.try_sweep(|i, _| Ok(compiler.verify(i)))?;
        let ok: Vec<CachedVerify> = verdicts.into_iter().flatten().collect();
        rows.push(VerifyRow {
            machine: name,
            fus,
            clusters,
            loops: ok.len(),
            schedule_faults: ok.iter().map(|v| v.schedule_faults).sum(),
            capacity_faults: ok.iter().map(|v| v.capacity_faults).sum(),
            loops_with_violations: ok.iter().filter(|v| !v.is_clean()).count(),
            max_private_peak: ok.iter().map(|v| v.max_private_peak).max().unwrap_or(0),
            max_comm_peak: ok.iter().map(|v| v.max_comm_peak).max().unwrap_or(0),
            mean_copy_bus_utilisation: mean(
                &ok.iter().map(|v| v.copy_bus_utilisation).collect::<Vec<_>>(),
            ),
        });
    }
    Ok(VerifyReport {
        corpus_size: session.config().corpus.num_loops,
        seed: session.config().corpus.seed,
        rows,
    })
}

/// Renders the verification rows as a text table.
pub fn render(rows: &[VerifyRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "machine",
        "loops",
        "sched faults",
        "cap faults",
        "dirty loops",
        "peak QRF",
        "peak ring",
        "copy util",
    ]);
    for r in rows {
        t.row(vec![
            r.machine.clone(),
            r.loops.to_string(),
            r.schedule_faults.to_string(),
            r.capacity_faults.to_string(),
            r.loops_with_violations.to_string(),
            r.max_private_peak.to_string(),
            r.max_comm_peak.to_string(),
            format!("{:.3}", r.mean_copy_bus_utilisation),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_whole_corpus_verifies_clean_on_every_machine() {
        let session = Session::quick(12, 386);
        let report = verify_experiment(&session).unwrap();
        assert_eq!(report.rows.len(), sim_machines().len());
        assert!(report.is_clean(), "scheduled loops must verify clean: {:?}", report.rows);
        for row in &report.rows {
            assert!(row.loops > 0, "{}: no loop verified", row.machine);
            assert_eq!(row.loops_with_violations, 0, "{}", row.machine);
        }
        assert!(session.stats().verifications > 0);
    }

    #[test]
    fn static_peaks_match_what_the_simulator_observes_in_steady_state() {
        // The static checker derives occupancy from lifetimes; at N=1000 the
        // simulator's observed peaks must agree on every machine row.
        let session = Session::quick(8, 99);
        let report = verify_experiment(&session).unwrap();
        let sim = super::super::simulate::simulate_experiment(&session).unwrap();
        for row in &report.rows {
            let sim_row = sim
                .rows
                .iter()
                .find(|r| r.machine == row.machine && r.trip_count == 1000)
                .expect("simulate covers the same machines");
            assert_eq!(
                row.max_private_peak, sim_row.max_peak_private_occupancy,
                "{}: private peak diverged",
                row.machine
            );
            assert_eq!(
                row.max_comm_peak, sim_row.max_peak_comm_occupancy,
                "{}: ring peak diverged",
                row.machine
            );
        }
    }

    #[test]
    fn repeated_verification_sweeps_are_served_from_the_cache() {
        let session = Session::quick(6, 17);
        let first = verify_experiment(&session).unwrap();
        let after_first = session.stats().verifications;
        let second = verify_experiment(&session).unwrap();
        assert_eq!(first, second, "cached verdicts must not change the rows");
        assert_eq!(session.stats().verifications, after_first);
        assert!(session.stats().verify_hits > 0);
    }

    #[test]
    fn render_mentions_the_verdict_columns() {
        let session = Session::quick(4, 5);
        let report = verify_experiment(&session).unwrap();
        let text = render(&report.rows).render();
        assert!(text.contains("sched faults"));
        assert!(text.contains("dirty loops"));
        assert!(text.contains("peak QRF"));
    }
}
