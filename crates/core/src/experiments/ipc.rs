//! Figs. 8 and 9 — *Operations Issued per Cycle* (static and dynamic), for all loops
//! (Fig. 8) and for the resource-constrained subset (Fig. 9).
//!
//! The x-axis is the machine width in compute FUs (4–18).  Single-cluster machines
//! exist at every width; clustered machines exist at 12, 15 and 18 FUs (4, 5 and 6
//! clusters of 3 FUs).  The paper's observations reproduced here:
//!
//! * static IPC exceeds dynamic IPC (the prologue/epilogue overhead);
//! * IPC saturates on the full corpus (Fig. 8) because recurrence-bound loops cannot
//!   use more FUs, and scales much better on the resource-constrained subset
//!   (Fig. 9);
//! * clustered machines track their single-cluster equivalents closely at 12 FUs and
//!   fall behind slightly at 15 and 18 FUs (the partitioning penalty).
//!
//! Both figures compile the same sweep points (Fig. 9 is a subset of Fig. 8's
//! loops), and the clustered points are Fig. 6's, so in a shared session Fig. 9 is
//! a pure cache aggregation.

use serde::{Deserialize, Serialize};
use vliw_analysis::{is_resource_constrained, mean, TextTable};
use vliw_machine::Machine;

use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::{Session, SessionCompiler};

/// One point of the IPC curves: a machine width with the four IPC series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpcCurvePoint {
    /// Machine width in compute FUs.
    pub fus: usize,
    /// Mean static IPC on the single-cluster machine.
    pub static_single: f64,
    /// Mean dynamic IPC on the single-cluster machine.
    pub dynamic_single: f64,
    /// Mean static IPC on the clustered machine (only at 12/15/18 FUs).
    pub static_clustered: Option<f64>,
    /// Mean dynamic IPC on the clustered machine (only at 12/15/18 FUs).
    pub dynamic_clustered: Option<f64>,
    /// Number of loops contributing to the point.
    pub loops: usize,
}

/// Machine widths evaluated by default: every even width from 4 to 18 plus 15, which
/// covers the paper's x-axis while keeping the sweep affordable.
pub const DEFAULT_WIDTHS: [usize; 9] = [4, 6, 8, 10, 12, 14, 15, 16, 18];

/// Fig. 8: IPC over **all** loops of the corpus.
pub fn fig8_experiment(session: &Session) -> Result<Vec<IpcCurvePoint>, VliwError> {
    ipc_curves(session, &DEFAULT_WIDTHS, false)
}

/// Fig. 9: IPC over the **resource-constrained** loops only.
pub fn fig9_experiment(session: &Session) -> Result<Vec<IpcCurvePoint>, VliwError> {
    ipc_curves(session, &DEFAULT_WIDTHS, true)
}

/// Sweeps the eligible loops through `compiler` and collects the IPC pairs of the
/// loops that scheduled.
fn ipc_samples(
    session: &Session,
    compiler: &SessionCompiler<'_>,
    indices: &[usize],
) -> Result<Vec<(f64, f64)>, VliwError> {
    let samples: Vec<Option<(f64, f64)>> = session.try_sweep_indices(indices, |i, _| {
        Ok(compiler.map_ok(i, |c| (c.ipc.static_ipc, c.ipc.dynamic_ipc)))
    })?;
    Ok(samples.into_iter().flatten().collect())
}

/// Shared implementation of Figs. 8 and 9.
pub fn ipc_curves(
    session: &Session,
    widths: &[usize],
    resource_constrained_only: bool,
) -> Result<Vec<IpcCurvePoint>, VliwError> {
    let mut points = Vec::new();
    for &fus in widths {
        let single = Machine::paper_single(fus);
        // Fig. 9 filters loops that are resource constrained *on this machine* (the
        // reference machine for the classification is the single-cluster one).
        let indices: Vec<usize> = session
            .corpus()
            .iter()
            .enumerate()
            .filter(|(_, lp)| {
                !resource_constrained_only || is_resource_constrained(&lp.ddg, &single)
            })
            .map(|(i, _)| i)
            .collect();
        if indices.is_empty() {
            points.push(IpcCurvePoint {
                fus,
                static_single: 0.0,
                dynamic_single: 0.0,
                static_clustered: None,
                dynamic_clustered: None,
                loops: 0,
            });
            continue;
        }

        let single_compiler = session.compiler(CompilerConfig::paper_defaults(single));
        let single_ok = ipc_samples(session, &single_compiler, &indices)?;

        // Clustered machines only exist at widths that are multiples of 3 (the basic
        // 3-FU cluster) and of at least 2 clusters.
        let clustered_ok = if fus % 3 == 0 && fus >= 6 {
            let clustered = Machine::paper_clustered(fus / 3, Default::default());
            let compiler = session.compiler(CompilerConfig::paper_defaults(clustered));
            Some(ipc_samples(session, &compiler, &indices)?)
        } else {
            None
        };

        points.push(IpcCurvePoint {
            fus,
            static_single: mean(&single_ok.iter().map(|p| p.0).collect::<Vec<_>>()),
            dynamic_single: mean(&single_ok.iter().map(|p| p.1).collect::<Vec<_>>()),
            static_clustered: clustered_ok
                .as_ref()
                .map(|ok| mean(&ok.iter().map(|p| p.0).collect::<Vec<_>>())),
            dynamic_clustered: clustered_ok
                .as_ref()
                .map(|ok| mean(&ok.iter().map(|p| p.1).collect::<Vec<_>>())),
            loops: single_ok.len(),
        });
    }
    Ok(points)
}

/// Renders the IPC curve points as a text table.
pub fn render(points: &[IpcCurvePoint]) -> TextTable {
    let fmt = |v: f64| format!("{v:.2}");
    let opt = |v: Option<f64>| v.map(fmt).unwrap_or_else(|| "-".to_string());
    let mut t = TextTable::new(vec![
        "FUs",
        "static single",
        "dynamic single",
        "static clustered",
        "dynamic clustered",
        "loops",
    ]);
    for p in points {
        t.row(vec![
            p.fus.to_string(),
            fmt(p.static_single),
            fmt(p.dynamic_single),
            opt(p.static_clustered),
            opt(p.dynamic_clustered),
            p.loops.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_grows_with_machine_width_and_static_dominates_dynamic() {
        let session = Session::quick(60, 37);
        let points = ipc_curves(&session, &[4, 12], false).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.loops > 0);
            assert!(p.static_single > 0.0);
            assert!(
                p.dynamic_single <= p.static_single + 1e-9,
                "dynamic IPC cannot exceed static IPC"
            );
        }
        let narrow = &points[0];
        let wide = &points[1];
        assert!(
            wide.static_single >= narrow.static_single,
            "a wider machine should not issue fewer operations per cycle"
        );
    }

    #[test]
    fn clustered_points_exist_only_at_multiples_of_three() {
        let session = Session::quick(30, 41);
        let points = ipc_curves(&session, &[4, 12], false).unwrap();
        assert!(points[0].static_clustered.is_none());
        assert!(points[1].static_clustered.is_some());
        let clustered = points[1].static_clustered.unwrap();
        let single = points[1].static_single;
        // The partitioning penalty can only reduce the issue rate (allow a small
        // tolerance because the unroll-factor heuristic may differ per machine).
        assert!(clustered <= single * 1.05 + 1e-9);
    }

    #[test]
    fn resource_constrained_subset_scales_better() {
        let session = Session::quick(80, 53);
        let all = ipc_curves(&session, &[12], false).unwrap();
        let before = session.stats();
        let constrained = ipc_curves(&session, &[12], true).unwrap();
        let after = session.stats();
        assert!(constrained[0].loops <= all[0].loops);
        if constrained[0].loops > 0 {
            assert!(
                constrained[0].static_single >= all[0].static_single * 0.9,
                "the resource-constrained subset should not issue much less"
            );
        }
        // Fig. 9's loops are a subset of Fig. 8's, so nothing new compiles.
        assert_eq!(after.compilations, before.compilations);
    }

    #[test]
    fn render_uses_dash_for_missing_clustered_points() {
        let session = Session::quick(15, 61);
        let points = ipc_curves(&session, &[4], false).unwrap();
        let s = render(&points).render();
        assert!(s.contains('-'));
    }
}
