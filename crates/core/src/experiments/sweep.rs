//! The machine design-space sweep behind the paper's Fig. 7 sizing conclusion.
//!
//! Fig. 7 claims a *sizing*: the basic cluster with 8 private queues of 8
//! entries and depth-8 ring links is the smallest clustered configuration that
//! still fits nearly all loops of the workload.  This driver searches the
//! neighbourhood of that claim.  For every grid point of a
//! [`vliw_machine::MachineSpace`] it runs the full pipeline — copy insertion,
//! partition/IMS scheduling, queue allocation, cycle-accurate simulation — and
//! classifies each corpus loop three ways:
//!
//! * **schedulable** — the loop compiles on the machine shape at all;
//! * **allocation-fits** — the per-pool queue allocation (private GPQs per
//!   cluster, communication queues per directed ring link — the corrected,
//!   pool-split [`CommStats::fits_pools`] predicate) fits the configured
//!   budgets;
//! * **simulation-clean** — the executed kernel's observed queue occupancy
//!   stays within every storage pool at every cycle (zero capacity faults).
//!
//! The sweep compiles and simulates on the shape's *probe* machine (unbounded
//! storage, identical FU structure), because queue budgets constrain what fits
//! but never where the scheduler places operations and never how occupancy
//! evolves — the simulator accumulates occupancy regardless of capacity.  Every
//! grid point sharing a shape therefore shares one `CompilationKey`, and the
//! whole storage sub-grid is served from the session memo store after the first
//! point: on the small grid, 8 configurations cost 1 compile + 1 simulation per
//! loop.
//!
//! [`CommStats::fits_pools`]: vliw_partition::CommStats::fits_pools

use serde::{de, Deserialize, Serialize, Value};
use vliw_analysis::{mark_pareto, SweepRow, TextTable};
use vliw_machine::{Machine, MachineConfig, SweepGrid};

use super::pruned::PruneReport;
use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::{LoopSummary, Session, SimSummary, VerifySummary};

/// Trip count of the sweep's simulation runs: long enough that every queue
/// reaches its steady-state peak occupancy, short enough to keep the full grid
/// affordable.
pub const SWEEP_TRIP_COUNT: u64 = 100;

/// How the sweep classifies each loop against a grid point's storage budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Classify {
    /// Execute each loop on the cycle-accurate simulator and read the observed
    /// occupancy peaks (the original, slower path).
    #[default]
    Dynamic,
    /// Prove the occupancy peaks statically with `vliw-verify` — no execution,
    /// verdict-identical to `Dynamic` (asserted by tests and the differential
    /// suite).
    Static,
}

impl Classify {
    /// Stable name, used on the wire and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Classify::Dynamic => "dynamic",
            Classify::Static => "static",
        }
    }
}

impl std::str::FromStr for Classify {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dynamic" => Ok(Classify::Dynamic),
            "static" => Ok(Classify::Static),
            other => Err(format!("unknown classify mode `{other}` (dynamic|static)")),
        }
    }
}

/// Everything one `figures sweep` run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Number of loops in the corpus the run evaluated.
    pub corpus_size: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Name of the swept grid preset (`small`, `paper`, `full`, `huge`).
    pub grid: String,
    /// Trip count of the simulation runs.
    pub trip_count: u64,
    /// Number of grid points evaluated.
    pub configs: usize,
    /// Number of distinct machine shapes (paid compiles) in the grid.
    pub shapes: usize,
    /// Pruning accounting when the run used the certificate-pruned driver
    /// ([`super::pruned`]); `None` for the exhaustive driver.
    pub prune: Option<PruneReport>,
    /// One row per grid point, in grid order.
    pub rows: Vec<SweepRow>,
}

// The wire form is written by hand so `prune` is emitted only when present —
// exhaustive reports (and every committed baseline) keep their pre-pruning
// byte-identical JSON.

impl Serialize for SweepReport {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            ("corpus_size".to_string(), self.corpus_size.serialize()),
            ("seed".to_string(), self.seed.serialize()),
            ("grid".to_string(), self.grid.serialize()),
            ("trip_count".to_string(), self.trip_count.serialize()),
            ("configs".to_string(), self.configs.serialize()),
            ("shapes".to_string(), self.shapes.serialize()),
        ];
        if let Some(prune) = &self.prune {
            entries.push(("prune".to_string(), prune.serialize()));
        }
        entries.push(("rows".to_string(), self.rows.serialize()));
        Value::Object(entries)
    }
}

impl Deserialize for SweepReport {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let entries = v.as_object().ok_or_else(|| de::Error::unexpected("object", v))?;
        Ok(SweepReport {
            corpus_size: de::field(entries, "corpus_size")?,
            seed: de::field(entries, "seed")?,
            grid: de::field(entries, "grid")?,
            trip_count: de::field(entries, "trip_count")?,
            configs: de::field(entries, "configs")?,
            shapes: de::field(entries, "shapes")?,
            prune: de::field(entries, "prune")?,
            rows: de::field(entries, "rows")?,
        })
    }
}

impl SweepReport {
    /// The rows on the Pareto frontier of their machine shape.
    pub fn frontier(&self) -> impl Iterator<Item = &SweepRow> {
        self.rows.iter().filter(|r| r.pareto)
    }

    /// The paper's published sizing points (8×8 queues, depth-8 links, basic
    /// cluster — one per swept cluster count).
    pub fn paper_points(&self) -> impl Iterator<Item = &SweepRow> {
        self.rows.iter().filter(|r| r.paper_point)
    }

    /// The Fig. 7 conclusion, as a checkable predicate: every paper point in
    /// the grid lies on its shape's Pareto frontier.
    pub fn paper_point_is_pareto(&self) -> bool {
        let mut any = false;
        for p in self.paper_points() {
            any = true;
            if !p.pareto {
                return false;
            }
        }
        any
    }
}

/// Per-loop verdict of one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopVerdict {
    /// The loop compiles on the machine shape.
    pub schedulable: bool,
    /// The pool-split queue allocation fits the configured budgets.
    pub alloc_fits: bool,
    /// The executed kernel stays within every storage pool at every cycle.
    pub sim_clean: bool,
}

/// Classifies one compiled-and-simulated loop against one grid point's storage
/// budgets.
///
/// `machine` must be `config.machine(..)` (the *real* budgets; the compilation
/// itself came from the shape's probe machine).  The simulation verdict mirrors
/// the engine's pool model: a cluster's private QRF overflows when more than
/// `queues × capacity` values are resident, a directed link when more than
/// `queues × link_depth` are — evaluated here against the probe run's observed
/// peaks, which is exactly what simulating on the real machine would have
/// capacity-checked cycle by cycle.
pub fn classify_loop(
    summary: &LoopSummary,
    run: &SimSummary,
    machine: &Machine,
    config: &MachineConfig,
) -> LoopVerdict {
    debug_assert_eq!(run.capacity_faults, 0, "probe machines must never clip occupancy");
    let m = &run.measurement;
    let private_budget = config.queues_per_cluster * config.queue_capacity;
    let link_budget = config.queues_per_cluster * config.link_depth;
    LoopVerdict {
        schedulable: true,
        alloc_fits: summary.fits_machine(machine),
        sim_clean: run.schedule_faults == 0
            && m.max_private_peak() <= private_budget
            && m.max_comm_peak() <= link_budget,
    }
}

/// Classifies one statically verified loop against one grid point's storage
/// budgets — the execution-free counterpart of [`classify_loop`], reading the
/// `vliw-verify` proved peaks instead of the simulator's observed ones.  The
/// two must agree verdict-for-verdict; the sweep tests and the differential
/// suite assert they do.
pub fn classify_loop_static(
    summary: &LoopSummary,
    verify: &VerifySummary,
    machine: &Machine,
    config: &MachineConfig,
) -> LoopVerdict {
    let private_budget = config.queues_per_cluster * config.queue_capacity;
    let link_budget = config.queues_per_cluster * config.link_depth;
    LoopVerdict {
        schedulable: true,
        alloc_fits: summary.fits_machine(machine),
        sim_clean: verify.schedule_faults == 0
            && verify.max_private_peak <= private_budget
            && verify.max_comm_peak <= link_budget,
    }
}

/// Runs the design-space sweep over `session` for the given grid preset,
/// classifying dynamically (simulation).
pub fn sweep_experiment(session: &Session, grid: SweepGrid) -> Result<SweepReport, VliwError> {
    sweep_experiment_with(session, grid, Classify::Dynamic)
}

/// Runs the design-space sweep over `session` for the given grid preset and
/// classification mode.
pub fn sweep_experiment_with(
    session: &Session,
    grid: SweepGrid,
    classify: Classify,
) -> Result<SweepReport, VliwError> {
    let space = grid.space();
    let mut rows = Vec::with_capacity(space.num_configs());
    for config in space.configs() {
        let probe = config.probe_machine(Default::default());
        let machine = config.machine(Default::default());
        let compiler = session.compiler(CompilerConfig::paper_defaults(probe));
        let verdicts: Vec<LoopVerdict> = session.try_sweep(|i, _| match classify {
            Classify::Dynamic => {
                let Some(run) = compiler.simulate(i, SWEEP_TRIP_COUNT) else {
                    return Ok(LoopVerdict::default());
                };
                compiler
                    .map_ok(i, |c| classify_loop(c, &run, &machine, &config))
                    .ok_or_else(|| VliwError::internal("simulated loops compiled"))
            }
            Classify::Static => {
                let Some(verify) = compiler.verify(i) else {
                    return Ok(LoopVerdict::default());
                };
                compiler
                    .map_ok(i, |c| classify_loop_static(c, &verify, &machine, &config))
                    .ok_or_else(|| VliwError::internal("verified loops compiled"))
            }
        })?;
        let loops = verdicts.len();
        let frac = |f: &dyn Fn(&LoopVerdict) -> bool| {
            if loops == 0 {
                0.0
            } else {
                verdicts.iter().filter(|v| f(v)).count() as f64 / loops as f64
            }
        };
        rows.push(SweepRow {
            clusters: config.clusters,
            fu_mix: config.fu_mix.tag().to_string(),
            topology: config.topology.tag().to_string(),
            fus: config.clusters * config.fu_mix.compute_fus(),
            queues_per_cluster: config.queues_per_cluster,
            queue_capacity: config.queue_capacity,
            link_depth: config.link_depth,
            storage_bits: config.storage_bits(),
            loops,
            frac_schedulable: frac(&|v| v.schedulable),
            frac_alloc_fits: frac(&|v| v.alloc_fits),
            frac_sim_clean: frac(&|v| v.sim_clean),
            frac_clean: frac(&|v| v.alloc_fits && v.sim_clean),
            pareto: false,
            paper_point: config.is_paper_point(),
        });
    }
    mark_pareto(&mut rows);
    Ok(SweepReport {
        corpus_size: session.config().corpus.num_loops,
        seed: session.config().corpus.seed,
        grid: grid.name().to_string(),
        trip_count: SWEEP_TRIP_COUNT,
        configs: space.num_configs(),
        shapes: space.num_shapes(),
        prune: None,
        rows,
    })
}

/// Renders the sweep rows as a text table.
pub fn render(rows: &[SweepRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "clusters",
        "mix",
        "topo",
        "queues",
        "capacity",
        "link depth",
        "storage bits",
        "schedulable",
        "alloc fits",
        "sim clean",
        "clean",
        "pareto",
        "paper",
    ]);
    for r in rows {
        t.row(vec![
            r.clusters.to_string(),
            r.fu_mix.clone(),
            r.topology.clone(),
            r.queues_per_cluster.to_string(),
            r.queue_capacity.to_string(),
            r.link_depth.to_string(),
            r.storage_bits.to_string(),
            vliw_analysis::pct(r.frac_schedulable),
            vliw_analysis::pct(r.frac_alloc_fits),
            vliw_analysis::pct(r.frac_sim_clean),
            vliw_analysis::pct(r.frac_clean),
            if r.pareto { "*" } else { "" }.to_string(),
            if r.paper_point { "<- Fig. 7" } else { "" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_reuses_one_compile_per_shape() {
        let session = Session::quick(10, 386);
        let report = sweep_experiment(&session, SweepGrid::Small).unwrap();
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.shapes, 1);
        let stats = session.stats();
        // One shape: every loop compiled and simulated exactly once, the seven
        // other grid points were served from the memo store.
        assert_eq!(stats.unique_keys, 1);
        assert!(stats.compilations <= 10);
        assert!(stats.hits > 0, "storage sub-grid must hit the cache");
        assert!(stats.sim_hits > 0, "storage sub-grid must reuse sim runs");
        assert!(stats.sim_runs <= stats.compilations);
    }

    #[test]
    fn fractions_are_ordered_and_bounded() {
        let session = Session::quick(12, 7);
        let report = sweep_experiment(&session, SweepGrid::Small).unwrap();
        for r in &report.rows {
            assert_eq!(r.loops, 12);
            for f in [r.frac_schedulable, r.frac_alloc_fits, r.frac_sim_clean, r.frac_clean] {
                assert!((0.0..=1.0).contains(&f));
            }
            assert!(r.frac_alloc_fits <= r.frac_schedulable, "fitting implies scheduling");
            assert!(r.frac_sim_clean <= r.frac_schedulable, "clean implies scheduling");
            assert!(r.frac_clean <= r.frac_alloc_fits.min(r.frac_sim_clean));
        }
    }

    #[test]
    fn growing_a_storage_dimension_never_loses_loops() {
        // The monotonicity the proptest checks per loop, at the corpus level:
        // within one shape, a configuration that dominates another dimension-
        // wise classifies at least as many loops clean.
        let session = Session::quick(16, 23);
        let report = sweep_experiment(&session, SweepGrid::Small).unwrap();
        for a in &report.rows {
            for b in &report.rows {
                if a.clusters == b.clusters
                    && a.fu_mix == b.fu_mix
                    && a.queues_per_cluster <= b.queues_per_cluster
                    && a.queue_capacity <= b.queue_capacity
                    && a.link_depth <= b.link_depth
                {
                    assert!(a.frac_alloc_fits <= b.frac_alloc_fits + 1e-12);
                    assert!(a.frac_sim_clean <= b.frac_sim_clean + 1e-12);
                    assert!(a.frac_clean <= b.frac_clean + 1e-12);
                    assert_eq!(a.frac_schedulable, b.frac_schedulable);
                }
            }
        }
    }

    #[test]
    fn paper_point_is_flagged_and_frontier_is_nonempty() {
        let session = Session::quick(16, 386);
        let report = sweep_experiment(&session, SweepGrid::Small).unwrap();
        assert_eq!(report.paper_points().count(), 1);
        assert!(report.frontier().count() >= 1);
        let paper = report.paper_points().next().unwrap();
        assert_eq!(paper.queues_per_cluster, 8);
        assert_eq!(paper.queue_capacity, 8);
        assert_eq!(paper.link_depth, 8);
        assert_eq!(paper.fus, 12);
    }

    #[test]
    fn static_classification_reproduces_the_dynamic_verdicts_exactly() {
        // The headline differential property at the sweep level: swapping the
        // simulator out for the static verifier changes no row of the report
        // (fractions, frontier marks and paper points all included).
        let session = Session::quick(14, 386);
        let dynamic = sweep_experiment_with(&session, SweepGrid::Small, Classify::Dynamic).unwrap();
        let sim_runs_after_dynamic = session.stats().sim_runs;
        let static_ = sweep_experiment_with(&session, SweepGrid::Small, Classify::Static).unwrap();
        assert_eq!(static_, dynamic, "static and dynamic classification diverged");
        assert_eq!(
            session.stats().sim_runs,
            sim_runs_after_dynamic,
            "the static pass must not simulate anything"
        );
        assert!(session.stats().verifications > 0, "the static pass must verify");
    }

    #[test]
    fn classify_mode_names_round_trip() {
        for mode in [Classify::Dynamic, Classify::Static] {
            assert_eq!(mode.name().parse::<Classify>().unwrap(), mode);
        }
        assert!("cycle".parse::<Classify>().is_err());
        assert_eq!(Classify::default(), Classify::Dynamic);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let session = Session::quick(6, 5);
        let report = sweep_experiment(&session, SweepGrid::Small).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn render_shape() {
        let session = Session::quick(6, 5);
        let report = sweep_experiment(&session, SweepGrid::Small).unwrap();
        let t = render(&report.rows);
        assert_eq!(t.num_rows(), report.rows.len());
        let text = t.render();
        assert!(text.contains("storage bits"));
        assert!(text.contains("Fig. 7"));
    }
}
