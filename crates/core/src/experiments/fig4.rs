//! Fig. 4 — *Initiation Interval Speedup* from loop unrolling.
//!
//! For every loop the driver schedules the original body and the unrolled body
//! (unroll factor chosen per machine, at most 4) on the same machine and computes
//! the II speedup `II_original / (II_unrolled / U)`.  The paper reports the fraction
//! of loops with speedup > 1 for 4-, 6- and 12-FU machines and notes that the stage
//! count rarely increases.  The no-unroll baseline is the same sweep point Fig. 3's
//! with-copies series compiles, so the session cache serves it for free.

use serde::{Deserialize, Serialize};
use vliw_analysis::{fraction, mean, pct, TextTable};
use vliw_machine::Machine;
use vliw_unroll::ii_speedup;

use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::Session;

/// Per-machine summary of the unrolling experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Number of compute functional units.
    pub fus: usize,
    /// Fraction of loops with II speedup strictly greater than 1.
    pub speedup_gt_one: f64,
    /// Fraction of loops that were actually unrolled (factor > 1).
    pub unrolled: f64,
    /// Mean II speedup over all loops (1.0 = no change).
    pub mean_speedup: f64,
    /// Fraction of loops whose stage count did not increase.
    pub stage_count_not_worse: f64,
    /// Number of loops evaluated.
    pub loops: usize,
}

/// One loop's measurements in the unrolling experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sample {
    speedup: f64,
    factor: u32,
    stage_before: u32,
    stage_after: u32,
}

/// Runs the Fig. 4 experiment on 4/6/12-FU machines.
///
/// Copy operations are enabled in both configurations (the unrolling study of the
/// paper is carried out within the QRF architecture model).
pub fn fig4_experiment(session: &Session) -> Result<Vec<Fig4Row>, VliwError> {
    let mut rows = Vec::new();
    for &fus in &[4usize, 6, 12] {
        let machine = Machine::paper_single(fus);
        let base = session.compiler(CompilerConfig::paper_defaults(machine.clone()).no_unroll());
        let unrolled = session.compiler(CompilerConfig::paper_defaults(machine));
        let samples: Vec<Option<Sample>> = session.try_sweep(|i, _| {
            let Some((base_ii, stage_before)) = base.map_ok(i, |c| (c.ii(), c.stage_count)) else {
                return Ok(None);
            };
            Ok(unrolled.map_ok(i, |u| Sample {
                speedup: ii_speedup(base_ii, u.ii(), u.unroll_factor),
                factor: u.unroll_factor,
                stage_before,
                stage_after: u.stage_count,
            }))
        })?;
        let ok: Vec<Sample> = samples.into_iter().flatten().collect();
        rows.push(Fig4Row {
            fus,
            speedup_gt_one: fraction(&ok, |s| s.speedup > 1.0 + 1e-9),
            unrolled: fraction(&ok, |s| s.factor > 1),
            mean_speedup: mean(&ok.iter().map(|s| s.speedup).collect::<Vec<_>>()),
            stage_count_not_worse: fraction(&ok, |s| s.stage_after <= s.stage_before),
            loops: ok.len(),
        });
    }
    Ok(rows)
}

/// Renders the Fig. 4 rows as a text table.
pub fn render(rows: &[Fig4Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "FUs",
        "speedup > 1",
        "loops unrolled",
        "mean speedup",
        "stage count not worse",
        "loops",
    ]);
    for r in rows {
        t.row(vec![
            r.fus.to_string(),
            pct(r.speedup_gt_one),
            pct(r.unrolled),
            format!("{:.2}", r.mean_speedup),
            pct(r.stage_count_not_worse),
            r.loops.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_meaningful_fraction_of_loops_gains_from_unrolling() {
        let session = Session::quick(120, 31);
        let rows = fig4_experiment(&session).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.loops > 0);
            // On the 4-FU machine the single L/S unit is usually the bottleneck and
            // its ResMII is already an integer multiple, so rounding slack (and hence
            // unrolling gain) is rare there; the wider machines must show gains.
            if r.fus >= 6 {
                assert!(
                    r.speedup_gt_one >= 0.10,
                    "{} FUs: only {} of loops gained from unrolling",
                    r.fus,
                    pct(r.speedup_gt_one)
                );
            }
            assert!(r.mean_speedup >= 0.95, "unrolling should not hurt on average");
            assert!(r.speedup_gt_one <= r.unrolled + 1e-9);
        }
    }

    #[test]
    fn wider_machines_benefit_at_least_as_much() {
        // The paper's Fig. 4 shows larger gains on wider machines (more slack to
        // recover).  Allow generous noise tolerance on the small test corpus.
        let session = Session::quick(100, 5);
        let rows = fig4_experiment(&session).unwrap();
        let narrow = rows.iter().find(|r| r.fus == 4).unwrap();
        let wide = rows.iter().find(|r| r.fus == 12).unwrap();
        assert!(wide.speedup_gt_one + 0.15 >= narrow.speedup_gt_one);
    }

    #[test]
    fn render_shape() {
        let session = Session::quick(30, 9);
        let rows = fig4_experiment(&session).unwrap();
        let table = render(&rows);
        assert_eq!(table.num_rows(), 3);
    }
}
