//! Fig. 7 / Section 4 — cluster resource sizing.
//!
//! The paper concludes that a cluster with **8 private queues** plus **8
//! communication queues in each direction** suffices for nearly all loops of the
//! benchmark.  This driver partitions every loop on clustered machines and reports
//! the fraction of loops that fit those budgets, along with the observed maxima.
//! The clustered sweep points are identical to Fig. 6's, so after that driver has
//! run in the same session this one compiles nothing.

use serde::{Deserialize, Serialize};
use vliw_analysis::{fraction, pct, TextTable};
use vliw_machine::Machine;

use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::Session;

/// Per-machine summary of the queue-demand analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterResourcesRow {
    /// Number of clusters.
    pub clusters: usize,
    /// Fraction of loops that fit the paper's cluster (8 private + 8 comm queues per
    /// direction, depth 8).
    pub fits_paper_cluster: f64,
    /// Fraction of loops needing at most 8 private queues in every cluster.
    pub private_within_8: f64,
    /// Fraction of loops needing at most 8 communication queues on every link.
    pub comm_within_8: f64,
    /// Largest number of private queues needed by any cluster over the corpus.
    pub max_private_queues: usize,
    /// Largest number of communication queues needed by any link over the corpus.
    pub max_comm_queues: usize,
    /// Mean fraction of values that cross clusters.
    pub mean_cross_fraction: f64,
    /// Number of loops evaluated.
    pub loops: usize,
}

/// One loop's measurements: `(private queues, comm queues, private depth, comm
/// depth, cross fraction)`.
type ResourceSample = (usize, usize, usize, usize, f64);

/// Runs the cluster-resource experiment for the given cluster counts (the paper's
/// machines are 4, 5 and 6 clusters).
pub fn cluster_resources_experiment(
    session: &Session,
    cluster_counts: &[usize],
) -> Result<Vec<ClusterResourcesRow>, VliwError> {
    let mut rows = Vec::new();
    for &clusters in cluster_counts {
        let machine = Machine::paper_clustered(clusters, Default::default());
        let compiler = session.compiler(CompilerConfig::paper_defaults(machine));
        let samples: Vec<Option<ResourceSample>> = session.try_sweep(|i, _| {
            compiler
                .map_ok(i, |c| {
                    let comm = c.comm.as_ref().ok_or_else(|| {
                        VliwError::internal("clustered machine without CommStats")
                    })?;
                    Ok((
                        comm.max_private_queues_per_cluster,
                        comm.max_comm_queues_per_link,
                        comm.max_private_queue_depth,
                        comm.max_comm_queue_depth,
                        comm.cross_fraction(),
                    ))
                })
                .transpose()
        })?;
        let ok: Vec<ResourceSample> = samples.into_iter().flatten().collect();
        rows.push(ClusterResourcesRow {
            clusters,
            fits_paper_cluster: fraction(&ok, |&(p, c, pd, cd, _)| {
                p <= 8 && c <= 8 && pd <= 8 && cd <= 8
            }),
            private_within_8: fraction(&ok, |&(p, _, _, _, _)| p <= 8),
            comm_within_8: fraction(&ok, |&(_, c, _, _, _)| c <= 8),
            max_private_queues: ok.iter().map(|&(p, _, _, _, _)| p).max().unwrap_or(0),
            max_comm_queues: ok.iter().map(|&(_, c, _, _, _)| c).max().unwrap_or(0),
            mean_cross_fraction: if ok.is_empty() {
                0.0
            } else {
                ok.iter().map(|&(_, _, _, _, f)| f).sum::<f64>() / ok.len() as f64
            },
            loops: ok.len(),
        });
    }
    Ok(rows)
}

/// Renders the resource rows as a text table.
pub fn render(rows: &[ClusterResourcesRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "clusters",
        "fits 8+8 cluster",
        "private <= 8",
        "comm <= 8",
        "max private",
        "max comm",
        "mean cross traffic",
        "loops",
    ]);
    for r in rows {
        t.row(vec![
            r.clusters.to_string(),
            pct(r.fits_paper_cluster),
            pct(r.private_within_8),
            pct(r.comm_within_8),
            r.max_private_queues.to_string(),
            r.max_comm_queues.to_string(),
            pct(r.mean_cross_fraction),
            r.loops.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig6::fig6_experiment_for;

    #[test]
    fn paper_cluster_budget_covers_most_loops() {
        let session = Session::quick(60, 13);
        let rows = cluster_resources_experiment(&session, &[4]).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.loops > 0);
        assert!(
            r.fits_paper_cluster >= 0.70,
            "only {} of loops fit the 8+8 cluster",
            pct(r.fits_paper_cluster)
        );
        assert!(r.private_within_8 >= r.fits_paper_cluster);
        assert!(r.comm_within_8 >= r.fits_paper_cluster);
        assert!((0.0..=1.0).contains(&r.mean_cross_fraction));
    }

    #[test]
    fn shares_the_clustered_sweep_points_with_fig6() {
        let session = Session::quick(20, 13);
        fig6_experiment_for(&session, &[4, 5]).unwrap();
        let before = session.stats();
        cluster_resources_experiment(&session, &[4, 5]).unwrap();
        let after = session.stats();
        assert_eq!(
            after.compilations, before.compilations,
            "the resource driver must reuse fig6's clustered compilations"
        );
        assert!(after.hits > before.hits);
    }

    #[test]
    fn render_shape() {
        let session = Session::quick(20, 19);
        let rows = cluster_resources_experiment(&session, &[4, 5]).unwrap();
        assert_eq!(render(&rows).num_rows(), 2);
    }
}
