//! The simulated-IPC experiment: cycle-accurate execution of every scheduled
//! loop, as a dynamic end-to-end check of the formula-derived Figs. 8 and 9.
//!
//! For each machine of [`sim_machines`] and each trip count of
//! [`SIM_TRIP_COUNTS`], every corpus loop that schedules is executed on the
//! `vliw-sim` engine and the sweep point is aggregated into one
//! [`SimReport`] row:
//!
//! * the **violations** column is the dynamic verifier's verdict on the
//!   schedules — a healthy pipeline reports 0 everywhere (any dependence missed
//!   at run time, FU double-booking or non-adjacent value flow would show
//!   here); queue-capacity overflows are tallied separately
//!   (`loops_overflowing_queues`), because they indict the machine's queue
//!   budget rather than the schedule — the execution-observed counterpart of
//!   Fig. 7's "fits the cluster budget" fraction;
//! * the simulated dynamic IPC is reported next to the closed-form
//!   `ops·N / ((SC−1+N)·II)` value, with the largest per-loop divergence;
//! * queue peaks and copy-bus utilisation are *observed over time*, not derived
//!   from lifetimes, giving the Fig. 7 sizing story an execution-backed
//!   counterpart.

use serde::{Deserialize, Serialize};
use vliw_analysis::{mean, SimReport, TextTable};
use vliw_machine::Machine;

use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::Session;

/// Trip counts of the simulated sweep.  `10` keeps the prologue/epilogue
/// overhead visible, `1000` is dominated by the steady-state kernel, `100` sits
/// in between — together they trace how dynamic IPC approaches static IPC.
pub const SIM_TRIP_COUNTS: [u64; 3] = [10, 100, 1000];

/// The machines simulated: the paper's single-cluster 6- and 12-FU references
/// plus the 4- and 6-cluster ring machines (the interesting ends of Fig. 6's
/// clustered sweep).  All four are sweep points other drivers also compile, so
/// in a shared session the simulation pass reuses their schedules.
pub fn sim_machines() -> Vec<Machine> {
    vec![
        Machine::paper_single(6),
        Machine::paper_single(12),
        Machine::paper_clustered(4, Default::default()),
        Machine::paper_clustered(6, Default::default()),
    ]
}

/// Everything one `figures simulate` run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulateReport {
    /// Number of loops in the corpus the run evaluated.
    pub corpus_size: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Trip counts swept.
    pub trip_counts: Vec<u64>,
    /// One row per (machine, trip count).
    pub rows: Vec<SimReport>,
}

impl SimulateReport {
    /// Total schedule faults across every row (0 for a healthy pipeline).
    pub fn total_violations(&self) -> u64 {
        self.rows.iter().map(|r| r.violations).sum()
    }

    /// Total loop×sweep-point pairs whose values overflowed the queue budget.
    pub fn total_overflowing(&self) -> usize {
        self.rows.iter().map(|r| r.loops_overflowing_queues).sum()
    }
}

/// Per-loop sample collected by the sweep before aggregation.
struct LoopSample {
    sim_ipc: f64,
    formula_ipc: f64,
    ipc_abs_error: f64,
    cycles_match: bool,
    schedule_faults: u64,
    overflowed: bool,
    peak_private: usize,
    peak_comm: usize,
    copy_utilisation: f64,
}

/// Runs the simulated-IPC experiment over `session`.
pub fn simulate_experiment(session: &Session) -> Result<SimulateReport, VliwError> {
    let mut rows = Vec::new();
    for machine in sim_machines() {
        let fus = machine.num_compute_fus();
        let clusters = machine.num_clusters();
        let name = machine.name().to_string();
        let compiler = session.compiler(CompilerConfig::paper_defaults(machine));
        for &trip_count in &SIM_TRIP_COUNTS {
            let samples: Vec<Option<LoopSample>> = session.try_sweep(|i, _| {
                let Some(run) = compiler.simulate(i, trip_count) else {
                    return Ok(None);
                };
                let (formula_ipc, cycles_match) = compiler
                    .map_ok(i, |c| {
                        let formula = c.dynamic_ipc_at(trip_count);
                        let cycles_match =
                            run.measurement.total_cycles == c.total_cycles(trip_count);
                        (formula, cycles_match)
                    })
                    .ok_or_else(|| VliwError::internal("simulated loops compiled"))?;
                let m = &run.measurement;
                Ok(Some(LoopSample {
                    sim_ipc: m.dynamic_ipc,
                    formula_ipc,
                    ipc_abs_error: (m.dynamic_ipc - formula_ipc).abs(),
                    cycles_match,
                    schedule_faults: run.schedule_faults,
                    overflowed: run.capacity_faults > 0,
                    peak_private: m.max_private_peak(),
                    peak_comm: m.max_comm_peak(),
                    copy_utilisation: m.copy_bus_utilisation,
                }))
            })?;
            let ok: Vec<LoopSample> = samples.into_iter().flatten().collect();
            rows.push(SimReport {
                machine: name.clone(),
                fus,
                clusters,
                trip_count,
                loops: ok.len(),
                violations: ok.iter().map(|s| s.schedule_faults).sum(),
                loops_overflowing_queues: ok.iter().filter(|s| s.overflowed).count(),
                mean_sim_dynamic_ipc: mean(&ok.iter().map(|s| s.sim_ipc).collect::<Vec<_>>()),
                mean_formula_dynamic_ipc: mean(
                    &ok.iter().map(|s| s.formula_ipc).collect::<Vec<_>>(),
                ),
                max_ipc_abs_error: ok.iter().map(|s| s.ipc_abs_error).fold(0.0, f64::max),
                cycles_match_formula: ok.iter().all(|s| s.cycles_match),
                max_peak_private_occupancy: ok.iter().map(|s| s.peak_private).max().unwrap_or(0),
                max_peak_comm_occupancy: ok.iter().map(|s| s.peak_comm).max().unwrap_or(0),
                mean_copy_bus_utilisation: mean(
                    &ok.iter().map(|s| s.copy_utilisation).collect::<Vec<_>>(),
                ),
            });
        }
    }
    Ok(SimulateReport {
        corpus_size: session.config().corpus.num_loops,
        seed: session.config().corpus.seed,
        trip_counts: SIM_TRIP_COUNTS.to_vec(),
        rows,
    })
}

/// Renders the simulated-IPC rows as a text table.
pub fn render(rows: &[SimReport]) -> TextTable {
    let mut t = TextTable::new(vec![
        "machine",
        "N",
        "loops",
        "violations",
        "q-overflows",
        "sim dyn IPC",
        "formula IPC",
        "cycles match",
        "peak QRF",
        "peak ring",
        "copy util",
    ]);
    for r in rows {
        t.row(vec![
            r.machine.clone(),
            r.trip_count.to_string(),
            r.loops.to_string(),
            r.violations.to_string(),
            r.loops_overflowing_queues.to_string(),
            format!("{:.3}", r.mean_sim_dynamic_ipc),
            format!("{:.3}", r.mean_formula_dynamic_ipc),
            if r.cycles_match_formula { "yes" } else { "NO" }.to_string(),
            r.max_peak_private_occupancy.to_string(),
            r.max_peak_comm_occupancy.to_string(),
            format!("{:.3}", r.mean_copy_bus_utilisation),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_sweep_is_clean_and_matches_the_closed_forms() {
        let session = Session::quick(12, 386);
        let report = simulate_experiment(&session).unwrap();
        assert_eq!(report.rows.len(), sim_machines().len() * SIM_TRIP_COUNTS.len());
        assert_eq!(report.total_violations(), 0, "scheduled loops must execute cleanly");
        for row in &report.rows {
            assert!(row.loops > 0, "{}: no loop simulated", row.machine);
            assert!(row.cycles_match_formula, "{}: cycle count diverged", row.machine);
            assert_eq!(
                row.max_ipc_abs_error, 0.0,
                "{} N={}: simulated IPC must equal the closed form exactly",
                row.machine, row.trip_count
            );
            assert!(row.mean_sim_dynamic_ipc > 0.0);
        }
        // Dynamic IPC grows with the trip count (prologue/epilogue amortise).
        let single6: Vec<&SimReport> =
            report.rows.iter().filter(|r| r.machine == "single-6fu").collect();
        assert!(single6[0].mean_sim_dynamic_ipc < single6[2].mean_sim_dynamic_ipc);
        // The sweep actually simulated through the session cache.
        let stats = session.stats();
        assert!(stats.sim_runs > 0);
    }

    #[test]
    fn repeated_sweeps_are_served_from_the_cache() {
        let session = Session::quick(6, 17);
        let first = simulate_experiment(&session).unwrap();
        let runs_after_first = session.stats().sim_runs;
        let second = simulate_experiment(&session).unwrap();
        assert_eq!(first, second, "cached runs must not change the rows");
        assert_eq!(
            session.stats().sim_runs,
            runs_after_first,
            "the second sweep must not simulate anything new"
        );
        assert!(session.stats().sim_hits > 0);
    }

    #[test]
    fn render_mentions_the_verdict_columns() {
        let session = Session::quick(4, 5);
        let report = simulate_experiment(&session).unwrap();
        let text = render(&report.rows).render();
        assert!(text.contains("violations"));
        assert!(text.contains("sim dyn IPC"));
        assert!(text.contains("yes"));
    }
}
