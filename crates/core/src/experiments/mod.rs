//! Experiment drivers reproducing every table and figure of the paper's evaluation.
//!
//! Each submodule corresponds to one figure (or to the statistics quoted in the
//! running text) and produces both a structured result type and a rendered
//! [`vliw_analysis::TextTable`].  The `figures` binary of the `vliw-bench` crate and
//! the Criterion benches call these drivers; EXPERIMENTS.md records their output next
//! to the paper's numbers.
//!
//! Every driver takes a shared [`crate::session::Session`] rather than a bare
//! configuration: the corpus is generated once per session, identical sweep points
//! are compiled once and served from the memo store afterwards, and sweeps run on
//! the session's work-stealing executor.  Running several drivers over one session
//! (as `figures all` does) therefore performs strictly fewer compilations than
//! running each driver standalone.
//!
//! | Driver | Paper artefact |
//! |---|---|
//! | [`fig3`] | Fig. 3 — number of queues required (4/6/12 FUs, with copies) |
//! | [`copy_cost`] | Section 2 statistics — II / stage-count cost of copy insertion |
//! | [`fig4`] | Fig. 4 — II speedup from loop unrolling |
//! | [`fig6`] | Fig. 6 — II variation of the partitioned schedules (12/15/18 FUs) |
//! | [`cluster_resources`] | Fig. 7 / Section 4 — queue demand per cluster and per ring link |
//! | [`ipc`] | Figs. 8 and 9 — static/dynamic IPC, all loops and resource-constrained loops |
//! | [`simulate`] | Simulated IPC — cycle-accurate execution with dynamic verification |
//! | [`sweep`] | Fig. 7 design-space sweep — machine sizing Pareto frontier |
//! | [`pruned`] | Certificate-pruned sweep — verdict-identical, one consultation per shape |
//! | [`verify`] | Static verification — execution-free soundness proof of every schedule |

pub mod api;
pub mod copy_cost;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod ipc;
pub mod pruned;
pub mod resources;
pub mod simulate;
pub mod sweep;
pub mod verify;

pub use api::{run_request, Experiment, ExperimentRequest, ExperimentResponse};
pub use copy_cost::{copy_cost_experiment, CopyCostRow};
pub use fig3::{fig3_experiment, Fig3Row};
pub use fig4::{fig4_experiment, Fig4Row};
pub use fig6::{fig6_experiment, Fig6Row};
pub use ipc::{fig8_experiment, fig9_experiment, IpcCurvePoint};
pub use pruned::{pruned_sweep_experiment, pruned_sweep_experiment_with, CodeCount, PruneReport};
pub use resources::{cluster_resources_experiment, ClusterResourcesRow};
pub use simulate::{sim_machines, simulate_experiment, SimulateReport, SIM_TRIP_COUNTS};
pub use sweep::{
    classify_loop, classify_loop_static, sweep_experiment, sweep_experiment_with, Classify,
    LoopVerdict, SweepReport, SWEEP_TRIP_COUNT,
};
pub use verify::{verify_experiment, VerifyReport, VerifyRow};

use vliw_ddg::Loop;
use vliw_loopgen::{generate_corpus, CorpusConfig};

use crate::session::par_map_indexed;

/// Shared configuration of the experiment drivers.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Corpus to evaluate.
    pub corpus: CorpusConfig,
    /// Number of worker threads for the corpus sweeps (1 = sequential).
    pub threads: usize,
    /// Directory of the persistent artifact cache; `None` disables persistence
    /// (results are still memoised in process).
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            corpus: CorpusConfig::paper_default(),
            threads: default_threads(),
            cache_dir: None,
        }
    }
}

impl ExperimentConfig {
    /// A configuration over a reduced corpus, for tests and quick runs.
    pub fn quick(num_loops: usize, seed: u64) -> Self {
        ExperimentConfig {
            corpus: CorpusConfig::small(num_loops, seed),
            threads: default_threads(),
            cache_dir: None,
        }
    }

    /// Generates the corpus described by this configuration.
    ///
    /// The experiment drivers do **not** call this — they read the corpus a
    /// [`crate::session::Session`] generated once.  It remains available for
    /// callers that need a standalone corpus (tests, examples, ad-hoc analyses).
    pub fn corpus(&self) -> Vec<Loop> {
        generate_corpus(&self.corpus)
    }
}

/// A sensible default worker count: the available parallelism capped at 8 (the
/// experiments are short; more threads only add contention on small corpora).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Applies `f` to every item of `items`, in parallel over `threads` workers, and
/// returns the results in input order.
///
/// Thin shim over the session layer's work-stealing executor
/// ([`crate::session::par_map_indexed`]), kept so existing callers of the old
/// statically-chunked implementation continue to work unchanged.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), threads, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..200).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map(&items, threads, |x| x * 3 + 1);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_small_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn quick_config_generates_requested_corpus() {
        let cfg = ExperimentConfig::quick(17, 3);
        assert_eq!(cfg.corpus().len(), 17);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn default_config_is_paper_sized() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.corpus.num_loops, 1258);
    }
}
