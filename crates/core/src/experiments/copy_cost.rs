//! Section 2 statistics — the cost of copy insertion.
//!
//! The paper reports that after inserting copy operations roughly 95% of the loops
//! keep the same II (the kernel runs at full speed), the stage count is unchanged
//! for most loops, and the remaining loops pay a small II increase.  This driver
//! schedules every loop twice — without copies (the "basic configuration") and with
//! copies — on the same machine and compares II and stage count.  Both sweep points
//! are shared with Fig. 3 through the session cache, so in a `figures all` run this
//! driver compiles nothing.

use serde::{Deserialize, Serialize};
use vliw_analysis::{fraction, pct, TextTable};
use vliw_machine::Machine;

use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::Session;

/// Per-machine summary of the copy-insertion cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CopyCostRow {
    /// Number of compute functional units.
    pub fus: usize,
    /// Fraction of loops whose II is unchanged by copy insertion.
    pub same_ii: f64,
    /// Fraction of loops whose II grows by exactly one cycle.
    pub ii_plus_one: f64,
    /// Fraction of loops whose II grows by more than one cycle.
    pub ii_plus_more: f64,
    /// Fraction of loops whose stage count is unchanged.
    pub same_stage_count: f64,
    /// Average number of copy operations inserted per loop.
    pub avg_copies: f64,
    /// Number of loops evaluated.
    pub loops: usize,
}

/// One loop's measurements: `(base II, copied II, base SC, copied SC, copies)`.
type CopySample = (u32, u32, u32, u32, usize);

/// Runs the copy-cost experiment on 4/6/12-FU machines.
pub fn copy_cost_experiment(session: &Session) -> Result<Vec<CopyCostRow>, VliwError> {
    let mut rows = Vec::new();
    for &fus in &[4usize, 6, 12] {
        let machine = Machine::paper_single(fus);
        let without = session.compiler(CompilerConfig::without_copies(machine.clone()).no_unroll());
        let with = session.compiler(CompilerConfig::paper_defaults(machine).no_unroll());
        let pairs: Vec<Option<CopySample>> = session.try_sweep(|i, _| {
            let Some((base_ii, base_sc)) = without.map_ok(i, |c| (c.ii(), c.stage_count)) else {
                return Ok(None);
            };
            let Some((ii, sc, copies)) = with.map_ok(i, |c| (c.ii(), c.stage_count, c.num_copies))
            else {
                return Ok(None);
            };
            Ok(Some((base_ii, ii, base_sc, sc, copies)))
        })?;
        let ok: Vec<CopySample> = pairs.into_iter().flatten().collect();
        let loops = ok.len();
        rows.push(CopyCostRow {
            fus,
            same_ii: fraction(&ok, |&(a, b, _, _, _)| b == a),
            ii_plus_one: fraction(&ok, |&(a, b, _, _, _)| b == a + 1),
            ii_plus_more: fraction(&ok, |&(a, b, _, _, _)| b > a + 1),
            same_stage_count: fraction(&ok, |&(_, _, sa, sb, _)| sa == sb),
            avg_copies: if loops == 0 {
                0.0
            } else {
                ok.iter().map(|&(_, _, _, _, c)| c as f64).sum::<f64>() / loops as f64
            },
            loops,
        });
    }
    Ok(rows)
}

/// Renders the copy-cost rows as a text table.
pub fn render(rows: &[CopyCostRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "FUs",
        "same II",
        "II +1",
        "II +>1",
        "same stage count",
        "avg copies",
        "loops",
    ]);
    for r in rows {
        t.row(vec![
            r.fus.to_string(),
            pct(r.same_ii),
            pct(r.ii_plus_one),
            pct(r.ii_plus_more),
            pct(r.same_stage_count),
            format!("{:.2}", r.avg_copies),
            r.loops.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig3_experiment;

    #[test]
    fn copy_insertion_rarely_degrades_the_ii() {
        let session = Session::quick(120, 11);
        let rows = copy_cost_experiment(&session).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.loops > 0);
            // The fractions partition the corpus (up to loops where the II shrinks,
            // which cannot happen since copies only add work).
            let total = r.same_ii + r.ii_plus_one + r.ii_plus_more;
            assert!((total - 1.0).abs() < 1e-9, "{} FUs: fractions sum to {total}", r.fus);
            // Paper shape: most loops keep their II and almost all of the rest pay
            // a single cycle (the paper reports ~95% same II; our synthetic corpus
            // carries more recurrence-critical multi-use values, see EXPERIMENTS.md,
            // so the reproduced fraction is lower).  The exact same-II band depends
            // on the RNG stream behind the corpus (the vendored offline `rand` is a
            // different stream than upstream), so assert "about half" for the
            // same-II fraction and a clear majority for "II cost at most 1 cycle".
            assert!(
                r.same_ii >= 0.45,
                "{} FUs: only {} of loops keep the same II after copy insertion",
                r.fus,
                pct(r.same_ii)
            );
            assert!(
                r.same_ii + r.ii_plus_one >= 0.60,
                "{} FUs: only {} of loops pay at most one cycle for copies",
                r.fus,
                pct(r.same_ii + r.ii_plus_one)
            );
            assert!(r.avg_copies > 0.0, "the corpus contains multi-consumer values");
        }
    }

    #[test]
    fn wider_machines_absorb_copies_better() {
        let session = Session::quick(100, 23);
        let rows = copy_cost_experiment(&session).unwrap();
        let narrow = rows.iter().find(|r| r.fus == 4).unwrap();
        let wide = rows.iter().find(|r| r.fus == 12).unwrap();
        // More copy units and more slack per II row: the wide machine should keep at
        // least as many loops at the same II as the narrow one (allow a small
        // tolerance for heuristic noise).
        assert!(wide.same_ii + 0.05 >= narrow.same_ii);
    }

    #[test]
    fn shares_every_sweep_point_with_fig3() {
        let session = Session::quick(24, 2);
        fig3_experiment(&session).unwrap();
        let before = session.stats();
        copy_cost_experiment(&session).unwrap();
        let after = session.stats();
        assert_eq!(
            after.compilations, before.compilations,
            "copy-cost after fig3 must be a pure cache aggregation"
        );
        assert_eq!(after.unique_keys, before.unique_keys);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn render_contains_percentages() {
        let session = Session::quick(30, 2);
        let rows = copy_cost_experiment(&session).unwrap();
        let s = render(&rows).render();
        assert!(s.contains('%'));
        assert_eq!(s.lines().count(), 2 + rows.len());
    }
}
