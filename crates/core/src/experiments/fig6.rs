//! Fig. 6 — *Initiation Interval Variation* of the partitioned schedules.
//!
//! For 4, 5 and 6 clusters (12, 15 and 18 compute FUs) the driver schedules every
//! loop on the clustered machine with the partitioning scheduler and on the
//! equivalent single-cluster machine with plain IMS, and reports the fraction of
//! loops whose clustered II equals the single-cluster II.  The paper's numbers are
//! ≈95% for 4 clusters, ≈84% for 5 and ≈52% for 6, the degradation being caused by
//! the inability to move values between non-adjacent clusters.
//!
//! As in the paper, loop unrolling and copy insertion are applied in all
//! configurations.  The clustered sweep points are shared with the cluster-resource
//! and IPC drivers through the session cache.

use serde::{Deserialize, Serialize};
use vliw_analysis::{fraction, mean, pct, TextTable};
use vliw_machine::Machine;

use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::Session;

/// Per-cluster-count summary of the partitioning experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Number of clusters of the machine (3 compute FUs each).
    pub clusters: usize,
    /// Total compute FUs (`3 · clusters`).
    pub fus: usize,
    /// Fraction of loops whose partitioned II equals the single-cluster II.
    pub same_ii: f64,
    /// Fraction of loops whose partitioned II is exactly one cycle larger.
    pub ii_plus_one: f64,
    /// Fraction of loops whose partitioned II is more than one cycle larger.
    pub ii_plus_more: f64,
    /// Mean relative II increase (`II_clustered / II_single`).
    pub mean_ii_ratio: f64,
    /// Fraction of loops whose stage count is unchanged.
    pub same_stage_count: f64,
    /// Number of loops evaluated.
    pub loops: usize,
}

/// Runs the Fig. 6 experiment for 4, 5 and 6 clusters.
pub fn fig6_experiment(session: &Session) -> Result<Vec<Fig6Row>, VliwError> {
    fig6_experiment_for(session, &[4, 5, 6])
}

/// Runs the Fig. 6 experiment for an arbitrary set of cluster counts.
pub fn fig6_experiment_for(
    session: &Session,
    cluster_counts: &[usize],
) -> Result<Vec<Fig6Row>, VliwError> {
    let mut rows = Vec::new();
    for &clusters in cluster_counts {
        let clustered = Machine::paper_clustered(clusters, Default::default());
        let single = Machine::paper_single_cluster_equivalent(clusters, Default::default());
        let single_compiler = session.compiler(CompilerConfig::paper_defaults(single));
        let clustered_compiler = session.compiler(CompilerConfig::paper_defaults(clustered));
        let samples: Vec<Option<(u32, u32, u32, u32)>> = session.try_sweep(|i, _| {
            let Some((s_ii, s_sc)) = single_compiler.map_ok(i, |c| (c.ii(), c.stage_count)) else {
                return Ok(None);
            };
            let Some((c_ii, c_sc)) = clustered_compiler.map_ok(i, |c| (c.ii(), c.stage_count))
            else {
                return Ok(None);
            };
            Ok(Some((s_ii, c_ii, s_sc, c_sc)))
        })?;
        let ok: Vec<(u32, u32, u32, u32)> = samples.into_iter().flatten().collect();
        rows.push(Fig6Row {
            clusters,
            fus: 3 * clusters,
            same_ii: fraction(&ok, |&(s, c, _, _)| c == s),
            ii_plus_one: fraction(&ok, |&(s, c, _, _)| c == s + 1),
            ii_plus_more: fraction(&ok, |&(s, c, _, _)| c > s + 1),
            mean_ii_ratio: mean(
                &ok.iter().map(|&(s, c, _, _)| c as f64 / s as f64).collect::<Vec<_>>(),
            ),
            same_stage_count: fraction(&ok, |&(_, _, ss, cs)| ss == cs),
            loops: ok.len(),
        });
    }
    Ok(rows)
}

/// Renders the Fig. 6 rows as a text table.
pub fn render(rows: &[Fig6Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "clusters",
        "FUs",
        "same II",
        "II +1",
        "II +>1",
        "mean II ratio",
        "same stage count",
        "loops",
    ]);
    for r in rows {
        t.row(vec![
            r.clusters.to_string(),
            r.fus.to_string(),
            pct(r.same_ii),
            pct(r.ii_plus_one),
            pct(r.ii_plus_more),
            format!("{:.3}", r.mean_ii_ratio),
            pct(r.same_stage_count),
            r.loops.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_keeps_most_loops_at_the_single_cluster_ii() {
        let session = Session::quick(60, 17);
        let rows = fig6_experiment_for(&session, &[4, 6]).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.loops > 0);
            let total = r.same_ii + r.ii_plus_one + r.ii_plus_more;
            assert!(total <= 1.0 + 1e-9);
            assert!(r.mean_ii_ratio >= 0.999, "clustering cannot speed a loop up");
            // Paper shape: a clear majority of loops keeps the single-cluster II on
            // a 4-cluster machine.
            if r.clusters == 4 {
                assert!(
                    r.same_ii >= 0.60,
                    "4 clusters: only {} of loops keep the II",
                    pct(r.same_ii)
                );
            }
        }
    }

    #[test]
    fn more_clusters_degrade_the_partitioning() {
        // The paper's central Fig. 6 trend: the same-II fraction decreases as the
        // cluster count grows (95% -> 84% -> 52%).
        let session = Session::quick(60, 29);
        let rows = fig6_experiment_for(&session, &[4, 6]).unwrap();
        let four = rows.iter().find(|r| r.clusters == 4).unwrap();
        let six = rows.iter().find(|r| r.clusters == 6).unwrap();
        assert!(
            four.same_ii + 1e-9 >= six.same_ii,
            "4 clusters ({}) should retain at least as many loops as 6 clusters ({})",
            pct(four.same_ii),
            pct(six.same_ii)
        );
    }

    #[test]
    fn render_shape() {
        let session = Session::quick(20, 3);
        let rows = fig6_experiment_for(&session, &[4]).unwrap();
        let t = render(&rows);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("clusters"));
    }
}
