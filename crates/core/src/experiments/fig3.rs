//! Fig. 3 — *Number of Queues*: cumulative fraction of loops schedulable within a
//! queue budget of 4/8/16/32 queues, for 4-, 6- and 12-FU machines, with copy
//! operations enabled.
//!
//! For every loop the driver inserts copies, modulo-schedules the body and allocates
//! its per-use lifetimes to queues with the Q-compatibility test; the reported
//! quantity is the number of queues the allocation uses.  The paper's headline
//! observations are that 32 queues cover the overwhelming majority of loops on every
//! machine width and that copy insertion does not significantly increase queue
//! demand; the driver therefore also produces the copies-off series for comparison.

use serde::{Deserialize, Serialize};
use vliw_analysis::{pct, CumulativeHistogram, TextTable};
use vliw_machine::Machine;

use crate::error::VliwError;
use crate::pipeline::CompilerConfig;
use crate::session::Session;

/// The queue budgets of Fig. 3's x-axis.
pub const QUEUE_BUDGETS: [usize; 4] = [4, 8, 16, 32];

/// One row of the Fig. 3 data: a machine width and the cumulative fractions of loops
/// whose queue requirement fits each budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Number of compute functional units of the machine.
    pub fus: usize,
    /// Whether copy operations were used.
    pub with_copies: bool,
    /// Cumulative histogram over [`QUEUE_BUDGETS`].
    pub histogram: CumulativeHistogram,
    /// Number of loops that failed to schedule (should be zero).
    pub unschedulable: usize,
}

/// Runs the Fig. 3 experiment: queue requirements on 4/6/12-FU machines, with and
/// without copy operations.
pub fn fig3_experiment(session: &Session) -> Result<Vec<Fig3Row>, VliwError> {
    let mut rows = Vec::new();
    for &fus in &[4usize, 6, 12] {
        for &with_copies in &[true, false] {
            let machine = Machine::paper_single(fus);
            let config = if with_copies {
                CompilerConfig::paper_defaults(machine).no_unroll()
            } else {
                CompilerConfig::without_copies(machine).no_unroll()
            };
            let compiler = session.compiler(config);
            let samples: Vec<Option<usize>> =
                session.try_sweep(|i, _| Ok(compiler.map_ok(i, |c| c.queues_required())))?;
            let ok: Vec<usize> = samples.iter().flatten().copied().collect();
            let unschedulable = samples.len() - ok.len();
            rows.push(Fig3Row {
                fus,
                with_copies,
                histogram: CumulativeHistogram::new(&ok, &QUEUE_BUDGETS),
                unschedulable,
            });
        }
    }
    Ok(rows)
}

/// Renders the Fig. 3 rows as the table recorded in EXPERIMENTS.md.
pub fn render(rows: &[Fig3Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "FUs",
        "copies",
        "<=4 queues",
        "<=8",
        "<=16",
        "<=32",
        ">32",
        "unschedulable",
    ]);
    for r in rows {
        t.row(vec![
            r.fus.to_string(),
            if r.with_copies { "yes".into() } else { "no".to_string() },
            pct(r.histogram.fraction_within(4)),
            pct(r.histogram.fraction_within(8)),
            pct(r.histogram.fraction_within(16)),
            pct(r.histogram.fraction_within(32)),
            pct(r.histogram.overflow),
            r.unschedulable.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_on_a_small_corpus_matches_paper_shape() {
        let session = Session::quick(120, 42);
        let rows = fig3_experiment(&session).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.unschedulable, 0, "every loop must schedule ({} FUs)", r.fus);
            // The cumulative fractions are monotone and 32 queues cover most loops —
            // the paper's central observation.
            assert!(
                r.histogram.fraction_within(32) >= 0.85,
                "{} FUs (copies={}): only {} of loops fit 32 queues",
                r.fus,
                r.with_copies,
                pct(r.histogram.fraction_within(32))
            );
            assert!(r.histogram.fraction_within(4) <= r.histogram.fraction_within(32));
        }
        // Six distinct sweep points, each compiled exactly once per loop.
        let stats = session.stats();
        assert_eq!(stats.unique_keys, 6);
        assert_eq!(stats.compilations, 6 * 120);
    }

    #[test]
    fn copies_do_not_blow_up_queue_demand() {
        // The paper: "using copy operations does not increase significantly the
        // number of queues required", especially at 16-32 queues.
        let session = Session::quick(120, 7);
        let rows = fig3_experiment(&session).unwrap();
        for fus in [4usize, 6, 12] {
            let with = rows.iter().find(|r| r.fus == fus && r.with_copies).unwrap();
            let without = rows.iter().find(|r| r.fus == fus && !r.with_copies).unwrap();
            let delta = without.histogram.fraction_within(32) - with.histogram.fraction_within(32);
            assert!(
                delta <= 0.10,
                "{fus} FUs: copies cost {delta:.2} of loops at the 32-queue budget"
            );
        }
    }

    #[test]
    fn rerunning_in_one_session_is_served_from_the_cache() {
        let session = Session::quick(20, 42);
        let first = fig3_experiment(&session).unwrap();
        let after_first = session.stats();
        let second = fig3_experiment(&session).unwrap();
        let after_second = session.stats();
        assert_eq!(first, second, "cached rerun must reproduce the rows");
        assert_eq!(
            after_second.compilations, after_first.compilations,
            "the second run must not compile anything new"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn render_has_one_row_per_configuration() {
        let session = Session::quick(40, 1);
        let rows = fig3_experiment(&session).unwrap();
        let table = render(&rows);
        assert_eq!(table.num_rows(), rows.len());
        assert!(table.render().contains("FUs"));
    }
}
