//! Fig. 3 — *Number of Queues*: cumulative fraction of loops schedulable within a
//! queue budget of 4/8/16/32 queues, for 4-, 6- and 12-FU machines, with copy
//! operations enabled.
//!
//! For every loop the driver inserts copies, modulo-schedules the body and allocates
//! its per-use lifetimes to queues with the Q-compatibility test; the reported
//! quantity is the number of queues the allocation uses.  The paper's headline
//! observations are that 32 queues cover the overwhelming majority of loops on every
//! machine width and that copy insertion does not significantly increase queue
//! demand; the driver therefore also produces the copies-off series for comparison.

use serde::{Deserialize, Serialize};
use vliw_analysis::{pct, CumulativeHistogram, TextTable};
use vliw_machine::Machine;

use crate::experiments::{par_map, ExperimentConfig};
use crate::pipeline::{Compiler, CompilerConfig};

/// The queue budgets of Fig. 3's x-axis.
pub const QUEUE_BUDGETS: [usize; 4] = [4, 8, 16, 32];

/// One row of the Fig. 3 data: a machine width and the cumulative fractions of loops
/// whose queue requirement fits each budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Number of compute functional units of the machine.
    pub fus: usize,
    /// Whether copy operations were used.
    pub with_copies: bool,
    /// Cumulative histogram over [`QUEUE_BUDGETS`].
    pub histogram: CumulativeHistogram,
    /// Number of loops that failed to schedule (should be zero).
    pub unschedulable: usize,
}

/// Runs the Fig. 3 experiment: queue requirements on 4/6/12-FU machines, with and
/// without copy operations.
pub fn fig3_experiment(cfg: &ExperimentConfig) -> Vec<Fig3Row> {
    let corpus = cfg.corpus();
    let mut rows = Vec::new();
    for &fus in &[4usize, 6, 12] {
        for &with_copies in &[true, false] {
            let machine =
                Machine::single_cluster(fus, copy_units_for(fus), 1024, Default::default());
            let compiler = if with_copies {
                Compiler::new(CompilerConfig::paper_defaults(machine).no_unroll())
            } else {
                Compiler::new(CompilerConfig::without_copies(machine).no_unroll())
            };
            let samples: Vec<Option<usize>> = par_map(&corpus, cfg.threads, |lp| {
                compiler.compile(lp).ok().map(|c| c.queues_required())
            });
            let ok: Vec<usize> = samples.iter().flatten().copied().collect();
            let unschedulable = samples.len() - ok.len();
            rows.push(Fig3Row {
                fus,
                with_copies,
                histogram: CumulativeHistogram::new(&ok, &QUEUE_BUDGETS),
                unschedulable,
            });
        }
    }
    rows
}

/// Number of copy units paired with a machine of `fus` compute units: one per three
/// compute units (one per paper cluster), at least one.
pub fn copy_units_for(fus: usize) -> usize {
    (fus / 3).max(1)
}

/// Renders the Fig. 3 rows as the table recorded in EXPERIMENTS.md.
pub fn render(rows: &[Fig3Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "FUs",
        "copies",
        "<=4 queues",
        "<=8",
        "<=16",
        "<=32",
        ">32",
        "unschedulable",
    ]);
    for r in rows {
        t.row(vec![
            r.fus.to_string(),
            if r.with_copies { "yes".into() } else { "no".to_string() },
            pct(r.histogram.fraction_within(4)),
            pct(r.histogram.fraction_within(8)),
            pct(r.histogram.fraction_within(16)),
            pct(r.histogram.fraction_within(32)),
            pct(r.histogram.overflow),
            r.unschedulable.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_on_a_small_corpus_matches_paper_shape() {
        let cfg = ExperimentConfig::quick(120, 42);
        let rows = fig3_experiment(&cfg);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.unschedulable, 0, "every loop must schedule ({} FUs)", r.fus);
            // The cumulative fractions are monotone and 32 queues cover most loops —
            // the paper's central observation.
            assert!(
                r.histogram.fraction_within(32) >= 0.85,
                "{} FUs (copies={}): only {} of loops fit 32 queues",
                r.fus,
                r.with_copies,
                pct(r.histogram.fraction_within(32))
            );
            assert!(r.histogram.fraction_within(4) <= r.histogram.fraction_within(32));
        }
    }

    #[test]
    fn copies_do_not_blow_up_queue_demand() {
        // The paper: "using copy operations does not increase significantly the
        // number of queues required", especially at 16-32 queues.
        let cfg = ExperimentConfig::quick(120, 7);
        let rows = fig3_experiment(&cfg);
        for fus in [4usize, 6, 12] {
            let with = rows.iter().find(|r| r.fus == fus && r.with_copies).unwrap();
            let without = rows.iter().find(|r| r.fus == fus && !r.with_copies).unwrap();
            let delta = without.histogram.fraction_within(32) - with.histogram.fraction_within(32);
            assert!(
                delta <= 0.10,
                "{fus} FUs: copies cost {delta:.2} of loops at the 32-queue budget"
            );
        }
    }

    #[test]
    fn render_has_one_row_per_configuration() {
        let cfg = ExperimentConfig::quick(40, 1);
        let rows = fig3_experiment(&cfg);
        let table = render(&rows);
        assert_eq!(table.num_rows(), rows.len());
        assert!(table.render().contains("FUs"));
    }

    #[test]
    fn copy_units_scale_with_width() {
        assert_eq!(copy_units_for(4), 1);
        assert_eq!(copy_units_for(6), 2);
        assert_eq!(copy_units_for(12), 4);
        assert_eq!(copy_units_for(2), 1);
    }
}
