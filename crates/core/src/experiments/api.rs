//! The unified Experiment API: one typed request/response pair per driver.
//!
//! Every experiment driver in this module's siblings is a free function with its
//! own signature.  That is fine for in-process callers, but anything that has to
//! route experiments dynamically — the `figures` CLI choosing a subcommand, the
//! `vliw-serve` daemon decoding requests off a socket — needs a single closed
//! vocabulary.  This module provides it:
//!
//! * [`ExperimentRequest`] — a serializable description of *which* experiment to
//!   run, including its parameters (cluster counts for the resource sizing, the
//!   grid preset for the design-space sweep);
//! * [`ExperimentResponse`] — the matching result document, wrapping the
//!   driver's row type;
//! * [`Experiment`] — the trait each driver implements once, tying a typed
//!   output to a session run;
//! * [`run_request`] / [`ExperimentRequest::run`] — the dispatch that turns a
//!   request into a response over a shared [`Session`].
//!
//! Both enums serialize through the vendored serde `Value` model with an
//! `"experiment"` tag, so a request written by the CLI client is readable by the
//! daemon and vice versa.  The response payloads reuse the drivers' own row
//! serialization: a client that deserializes a response and re-serializes the
//! rows reproduces the in-process JSON byte for byte (the vendored
//! `serde_json` prints floats in shortest-round-trip form, so nothing is lost
//! in transit).

use serde::{de, Deserialize, Serialize, Value};
use vliw_machine::SweepGrid;

use crate::error::VliwError;
use crate::session::Session;

use super::{
    cluster_resources_experiment, copy_cost_experiment, fig3_experiment, fig4_experiment,
    fig6_experiment, fig8_experiment, fig9_experiment, pruned_sweep_experiment_with,
    simulate_experiment, sweep_experiment_with, verify_experiment, Classify, ClusterResourcesRow,
    CopyCostRow, Fig3Row, Fig4Row, Fig6Row, IpcCurvePoint, SimulateReport, SweepReport,
    VerifyReport,
};

/// A typed experiment, tying a result document to a session run.
///
/// Implemented once per driver by a small request struct (e.g. [`Fig3`],
/// [`Resources`]); [`ExperimentRequest`] is the closed serializable union of all
/// of them, which is what dynamic callers (the CLI, the daemon) route on.
pub trait Experiment {
    /// The driver's result document.
    type Output;

    /// Stable name of the experiment (the CLI subcommand / wire tag).
    fn name(&self) -> &'static str;

    /// Runs the experiment over a shared session.
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError>;
}

/// Fig. 3 — number of queues required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fig3;

/// Section 2 — II / stage-count cost of copy insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CopyCost;

/// Fig. 4 — II speedup from loop unrolling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fig4;

/// Fig. 6 — II variation of the partitioned schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fig6;

/// Fig. 7 / Section 4 — cluster resource sizing over the given cluster counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resources {
    /// Cluster counts to evaluate (the paper's machines are 4/5/6).
    pub cluster_counts: Vec<usize>,
}

/// Fig. 8 — operations issued per cycle, all loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fig8;

/// Fig. 9 — operations issued per cycle, resource-constrained loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fig9;

/// Cycle-accurate simulation — dynamic verification plus simulated IPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Simulate;

/// The Fig. 7 machine design-space sweep over a grid preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sweep {
    /// Design-space preset to sweep.
    pub grid: SweepGrid,
    /// How each loop is classified against the storage budgets.
    pub classify: Classify,
    /// Use the certificate-pruned driver (verdict-identical, one compiler
    /// consultation per machine shape and loop).
    pub prune: bool,
    /// With `prune`, re-derive this many randomly sampled pairs through the
    /// exhaustive classification path and report the agreement rate.
    pub audit: usize,
}

/// Static verification — execution-free soundness proof of every schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Verify;

impl Experiment for Fig3 {
    type Output = Vec<Fig3Row>;
    fn name(&self) -> &'static str {
        "fig3"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        fig3_experiment(session)
    }
}

impl Experiment for CopyCost {
    type Output = Vec<CopyCostRow>;
    fn name(&self) -> &'static str {
        "copy_cost"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        copy_cost_experiment(session)
    }
}

impl Experiment for Fig4 {
    type Output = Vec<Fig4Row>;
    fn name(&self) -> &'static str {
        "fig4"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        fig4_experiment(session)
    }
}

impl Experiment for Fig6 {
    type Output = Vec<Fig6Row>;
    fn name(&self) -> &'static str {
        "fig6"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        fig6_experiment(session)
    }
}

impl Experiment for Resources {
    type Output = Vec<ClusterResourcesRow>;
    fn name(&self) -> &'static str {
        "resources"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        cluster_resources_experiment(session, &self.cluster_counts)
    }
}

impl Experiment for Fig8 {
    type Output = Vec<IpcCurvePoint>;
    fn name(&self) -> &'static str {
        "fig8"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        fig8_experiment(session)
    }
}

impl Experiment for Fig9 {
    type Output = Vec<IpcCurvePoint>;
    fn name(&self) -> &'static str {
        "fig9"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        fig9_experiment(session)
    }
}

impl Experiment for Simulate {
    type Output = SimulateReport;
    fn name(&self) -> &'static str {
        "simulate"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        simulate_experiment(session)
    }
}

impl Experiment for Sweep {
    type Output = SweepReport;
    fn name(&self) -> &'static str {
        "sweep"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        if self.prune {
            pruned_sweep_experiment_with(session, self.grid, self.classify, self.audit)
        } else {
            sweep_experiment_with(session, self.grid, self.classify)
        }
    }
}

impl Experiment for Verify {
    type Output = VerifyReport;
    fn name(&self) -> &'static str {
        "verify"
    }
    fn run(&self, session: &Session) -> Result<Self::Output, VliwError> {
        verify_experiment(session)
    }
}

/// A serializable request for one experiment run — the closed union of every
/// [`Experiment`] impl, including its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentRequest {
    /// Fig. 3 — number of queues required.
    Fig3,
    /// Section 2 — cost of copy insertion.
    CopyCost,
    /// Fig. 4 — II speedup from loop unrolling.
    Fig4,
    /// Fig. 6 — II variation of partitioned schedules.
    Fig6,
    /// Fig. 7 / Section 4 — cluster resource sizing.
    Resources {
        /// Cluster counts to evaluate.
        cluster_counts: Vec<usize>,
    },
    /// Fig. 8 — IPC curve over all loops.
    Fig8,
    /// Fig. 9 — IPC curve over resource-constrained loops.
    Fig9,
    /// Cycle-accurate simulation report.
    Simulate,
    /// Machine design-space sweep.
    Sweep {
        /// Design-space preset to sweep.
        grid: SweepGrid,
        /// How each loop is classified against the storage budgets.
        classify: Classify,
        /// Use the certificate-pruned driver.
        prune: bool,
        /// Pruned pairs to audit through the exhaustive path (with `prune`).
        audit: usize,
    },
    /// Static verification report.
    Verify,
}

/// The result document matching one [`ExperimentRequest`] variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentResponse {
    /// Fig. 3 rows.
    Fig3(Vec<Fig3Row>),
    /// Copy-cost rows.
    CopyCost(Vec<CopyCostRow>),
    /// Fig. 4 rows.
    Fig4(Vec<Fig4Row>),
    /// Fig. 6 rows.
    Fig6(Vec<Fig6Row>),
    /// Cluster-resource rows.
    Resources(Vec<ClusterResourcesRow>),
    /// Fig. 8 IPC curve.
    Fig8(Vec<IpcCurvePoint>),
    /// Fig. 9 IPC curve.
    Fig9(Vec<IpcCurvePoint>),
    /// Simulated-IPC report.
    Simulate(SimulateReport),
    /// Design-space sweep report.
    Sweep(SweepReport),
    /// Static-verification report.
    Verify(VerifyReport),
}

impl ExperimentRequest {
    /// Stable name of the requested experiment (the wire tag).
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentRequest::Fig3 => "fig3",
            ExperimentRequest::CopyCost => "copy_cost",
            ExperimentRequest::Fig4 => "fig4",
            ExperimentRequest::Fig6 => "fig6",
            ExperimentRequest::Resources { .. } => "resources",
            ExperimentRequest::Fig8 => "fig8",
            ExperimentRequest::Fig9 => "fig9",
            ExperimentRequest::Simulate => "simulate",
            ExperimentRequest::Sweep { .. } => "sweep",
            ExperimentRequest::Verify => "verify",
        }
    }

    /// Runs the requested experiment over `session` and wraps its rows.
    pub fn run(&self, session: &Session) -> Result<ExperimentResponse, VliwError> {
        match self {
            ExperimentRequest::Fig3 => Fig3.run(session).map(ExperimentResponse::Fig3),
            ExperimentRequest::CopyCost => CopyCost.run(session).map(ExperimentResponse::CopyCost),
            ExperimentRequest::Fig4 => Fig4.run(session).map(ExperimentResponse::Fig4),
            ExperimentRequest::Fig6 => Fig6.run(session).map(ExperimentResponse::Fig6),
            ExperimentRequest::Resources { cluster_counts } => {
                Resources { cluster_counts: cluster_counts.clone() }
                    .run(session)
                    .map(ExperimentResponse::Resources)
            }
            ExperimentRequest::Fig8 => Fig8.run(session).map(ExperimentResponse::Fig8),
            ExperimentRequest::Fig9 => Fig9.run(session).map(ExperimentResponse::Fig9),
            ExperimentRequest::Simulate => Simulate.run(session).map(ExperimentResponse::Simulate),
            ExperimentRequest::Sweep { grid, classify, prune, audit } => {
                Sweep { grid: *grid, classify: *classify, prune: *prune, audit: *audit }
                    .run(session)
                    .map(ExperimentResponse::Sweep)
            }
            ExperimentRequest::Verify => Verify.run(session).map(ExperimentResponse::Verify),
        }
    }
}

/// Runs one request over a shared session — free-function spelling of
/// [`ExperimentRequest::run`] for callers that prefer dispatch at arm's length.
pub fn run_request(
    session: &Session,
    request: &ExperimentRequest,
) -> Result<ExperimentResponse, VliwError> {
    request.run(session)
}

impl ExperimentResponse {
    /// Stable name of the experiment that produced this response.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentResponse::Fig3(_) => "fig3",
            ExperimentResponse::CopyCost(_) => "copy_cost",
            ExperimentResponse::Fig4(_) => "fig4",
            ExperimentResponse::Fig6(_) => "fig6",
            ExperimentResponse::Resources(_) => "resources",
            ExperimentResponse::Fig8(_) => "fig8",
            ExperimentResponse::Fig9(_) => "fig9",
            ExperimentResponse::Simulate(_) => "simulate",
            ExperimentResponse::Sweep(_) => "sweep",
            ExperimentResponse::Verify(_) => "verify",
        }
    }

    /// Renders this response's rows as the driver's text table — the shared
    /// render dispatch behind the CLI's text mode.
    pub fn render_table(&self) -> String {
        match self {
            ExperimentResponse::Fig3(rows) => super::fig3::render(rows).render(),
            ExperimentResponse::CopyCost(rows) => super::copy_cost::render(rows).render(),
            ExperimentResponse::Fig4(rows) => super::fig4::render(rows).render(),
            ExperimentResponse::Fig6(rows) => super::fig6::render(rows).render(),
            ExperimentResponse::Resources(rows) => super::resources::render(rows).render(),
            ExperimentResponse::Fig8(points) | ExperimentResponse::Fig9(points) => {
                super::ipc::render(points).render()
            }
            ExperimentResponse::Simulate(report) => super::simulate::render(&report.rows).render(),
            ExperimentResponse::Sweep(report) => super::sweep::render(&report.rows).render(),
            ExperimentResponse::Verify(report) => super::verify::render(&report.rows).render(),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire form.  The vendored serde derive only covers named-field structs and
// C-like enums, so the two tagged unions are serialized by hand:
// `{"experiment": "<name>", ...params-or-rows}`.
// ---------------------------------------------------------------------------

/// Builds the `{"experiment": name, ...}` envelope shared by both enums.
fn tagged(name: &str, extra: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("experiment".to_string(), Value::String(name.to_string()))];
    entries.extend(extra);
    Value::Object(entries)
}

/// An `"experiment"` tag plus the object's entries, as read off the wire.
type TaggedEntries<'a> = (&'a str, &'a [(String, Value)]);

/// Reads the `"experiment"` tag off a wire object.
fn tag_of(v: &Value) -> Result<TaggedEntries<'_>, de::Error> {
    let entries = v.as_object().ok_or_else(|| de::Error::unexpected("object", v))?;
    match v.get("experiment") {
        Some(Value::String(name)) => Ok((name, entries)),
        Some(other) => Err(de::Error::unexpected("experiment tag", other)),
        None => Err(de::Error::custom("missing field `experiment`")),
    }
}

impl Serialize for ExperimentRequest {
    fn serialize(&self) -> Value {
        match self {
            ExperimentRequest::Resources { cluster_counts } => tagged(
                self.name(),
                vec![("cluster_counts".to_string(), cluster_counts.serialize())],
            ),
            ExperimentRequest::Sweep { grid, classify, prune, audit } => {
                let mut extra = vec![("grid".to_string(), Value::String(grid.name().to_string()))];
                // Default values are omitted, so pre-classify (and pre-prune)
                // clients and daemons keep exchanging byte-identical requests.
                if *classify != Classify::default() {
                    extra
                        .push(("classify".to_string(), Value::String(classify.name().to_string())));
                }
                if *prune {
                    extra.push(("prune".to_string(), Value::Bool(true)));
                }
                if *audit > 0 {
                    extra.push(("audit".to_string(), audit.serialize()));
                }
                tagged(self.name(), extra)
            }
            other => tagged(other.name(), Vec::new()),
        }
    }
}

impl Deserialize for ExperimentRequest {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let (name, entries) = tag_of(v)?;
        match name {
            "fig3" => Ok(ExperimentRequest::Fig3),
            "copy_cost" => Ok(ExperimentRequest::CopyCost),
            "fig4" => Ok(ExperimentRequest::Fig4),
            "fig6" => Ok(ExperimentRequest::Fig6),
            "resources" => Ok(ExperimentRequest::Resources {
                cluster_counts: de::field(entries, "cluster_counts")?,
            }),
            "fig8" => Ok(ExperimentRequest::Fig8),
            "fig9" => Ok(ExperimentRequest::Fig9),
            "simulate" => Ok(ExperimentRequest::Simulate),
            "sweep" => {
                let raw: String = de::field(entries, "grid")?;
                let grid = raw
                    .parse::<SweepGrid>()
                    .map_err(|e| de::Error::custom(format!("field `grid`: {e}")))?;
                // `classify` is optional on the wire (absent = dynamic), so
                // `de::field`'s missing-field error does not apply here.
                let classify = match entries.iter().find(|(k, _)| k == "classify") {
                    None => Classify::default(),
                    Some((_, Value::String(raw))) => raw
                        .parse::<Classify>()
                        .map_err(|e| de::Error::custom(format!("field `classify`: {e}")))?,
                    Some((_, other)) => return Err(de::Error::unexpected("classify mode", other)),
                };
                let prune = de::field::<Option<bool>>(entries, "prune")?.unwrap_or(false);
                let audit = de::field::<Option<u64>>(entries, "audit")?.unwrap_or(0) as usize;
                Ok(ExperimentRequest::Sweep { grid, classify, prune, audit })
            }
            "verify" => Ok(ExperimentRequest::Verify),
            other => Err(de::Error::custom(format!("unknown experiment `{other}`"))),
        }
    }
}

impl Serialize for ExperimentResponse {
    fn serialize(&self) -> Value {
        let rows = match self {
            ExperimentResponse::Fig3(rows) => rows.serialize(),
            ExperimentResponse::CopyCost(rows) => rows.serialize(),
            ExperimentResponse::Fig4(rows) => rows.serialize(),
            ExperimentResponse::Fig6(rows) => rows.serialize(),
            ExperimentResponse::Resources(rows) => rows.serialize(),
            ExperimentResponse::Fig8(points) => points.serialize(),
            ExperimentResponse::Fig9(points) => points.serialize(),
            ExperimentResponse::Simulate(report) => report.serialize(),
            ExperimentResponse::Sweep(report) => report.serialize(),
            ExperimentResponse::Verify(report) => report.serialize(),
        };
        tagged(self.name(), vec![("rows".to_string(), rows)])
    }
}

impl Deserialize for ExperimentResponse {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let (name, entries) = tag_of(v)?;
        match name {
            "fig3" => Ok(ExperimentResponse::Fig3(de::field(entries, "rows")?)),
            "copy_cost" => Ok(ExperimentResponse::CopyCost(de::field(entries, "rows")?)),
            "fig4" => Ok(ExperimentResponse::Fig4(de::field(entries, "rows")?)),
            "fig6" => Ok(ExperimentResponse::Fig6(de::field(entries, "rows")?)),
            "resources" => Ok(ExperimentResponse::Resources(de::field(entries, "rows")?)),
            "fig8" => Ok(ExperimentResponse::Fig8(de::field(entries, "rows")?)),
            "fig9" => Ok(ExperimentResponse::Fig9(de::field(entries, "rows")?)),
            "simulate" => Ok(ExperimentResponse::Simulate(de::field(entries, "rows")?)),
            "sweep" => Ok(ExperimentResponse::Sweep(de::field(entries, "rows")?)),
            "verify" => Ok(ExperimentResponse::Verify(de::field(entries, "rows")?)),
            other => Err(de::Error::custom(format!("unknown experiment `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_request() -> Vec<ExperimentRequest> {
        vec![
            ExperimentRequest::Fig3,
            ExperimentRequest::CopyCost,
            ExperimentRequest::Fig4,
            ExperimentRequest::Fig6,
            ExperimentRequest::Resources { cluster_counts: vec![4, 5, 6] },
            ExperimentRequest::Fig8,
            ExperimentRequest::Fig9,
            ExperimentRequest::Simulate,
            ExperimentRequest::Sweep {
                grid: SweepGrid::Small,
                classify: Classify::Dynamic,
                prune: false,
                audit: 0,
            },
            ExperimentRequest::Sweep {
                grid: SweepGrid::Small,
                classify: Classify::Static,
                prune: false,
                audit: 0,
            },
            ExperimentRequest::Sweep {
                grid: SweepGrid::Huge,
                classify: Classify::Static,
                prune: true,
                audit: 64,
            },
            ExperimentRequest::Verify,
        ]
    }

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        for request in every_request() {
            let json = serde_json::to_string(&request).unwrap();
            let back: ExperimentRequest = serde_json::from_str(&json).unwrap();
            assert_eq!(back, request, "{json}");
            assert!(json.contains(&format!("\"experiment\":\"{}\"", request.name())), "{json}");
        }
    }

    #[test]
    fn unknown_or_malformed_requests_are_rejected() {
        assert!(serde_json::from_str::<ExperimentRequest>("{\"experiment\": \"fig5\"}").is_err());
        assert!(serde_json::from_str::<ExperimentRequest>("{\"id\": 3}").is_err());
        assert!(serde_json::from_str::<ExperimentRequest>("[1, 2]").is_err());
        assert!(serde_json::from_str::<ExperimentRequest>(
            "{\"experiment\": \"sweep\", \"grid\": \"tiny\"}"
        )
        .is_err());
        assert!(
            serde_json::from_str::<ExperimentRequest>("{\"experiment\": \"resources\"}").is_err()
        );
        assert!(serde_json::from_str::<ExperimentRequest>(
            "{\"experiment\": \"sweep\", \"grid\": \"small\", \"classify\": \"cycle\"}"
        )
        .is_err());
    }

    #[test]
    fn sweep_requests_without_a_classify_field_default_to_dynamic() {
        // The wire form pre-dates the static mode; old clients must keep
        // working and a default-mode request must serialize without the field.
        let old = "{\"experiment\": \"sweep\", \"grid\": \"small\"}";
        let back: ExperimentRequest = serde_json::from_str(old).unwrap();
        assert_eq!(
            back,
            ExperimentRequest::Sweep {
                grid: SweepGrid::Small,
                classify: Classify::Dynamic,
                prune: false,
                audit: 0,
            }
        );
        let json = serde_json::to_string(&back).unwrap();
        assert!(!json.contains("classify"), "{json}");
        assert!(!json.contains("prune") && !json.contains("audit"), "{json}");
        let static_ = ExperimentRequest::Sweep {
            grid: SweepGrid::Small,
            classify: Classify::Static,
            prune: false,
            audit: 0,
        };
        assert!(serde_json::to_string(&static_).unwrap().contains("\"classify\":\"static\""));
    }

    #[test]
    fn pruned_sweep_requests_carry_their_flags_and_dispatch_to_the_pruned_driver() {
        let json = "{\"experiment\": \"sweep\", \"grid\": \"small\", \"prune\": true, \
                    \"audit\": 8}";
        let request: ExperimentRequest = serde_json::from_str(json).unwrap();
        assert_eq!(
            request,
            ExperimentRequest::Sweep {
                grid: SweepGrid::Small,
                classify: Classify::Dynamic,
                prune: true,
                audit: 8,
            }
        );
        let session = Session::quick(6, 7);
        let response = request.run(&session).unwrap();
        let ExperimentResponse::Sweep(report) = &response else { unreachable!() };
        let prune = report.prune.as_ref().expect("pruned runs must carry accounting");
        assert_eq!(prune.audited, 8);
        assert!(prune.audit_clean());
    }

    #[test]
    fn dispatch_matches_the_direct_driver_call() {
        let session = Session::quick(8, 5);
        let response = ExperimentRequest::Fig3.run(&session).unwrap();
        let direct = fig3_experiment(&session).unwrap();
        assert_eq!(response, ExperimentResponse::Fig3(direct.clone()));
        assert_eq!(response.name(), "fig3");
        // The wrapped rows re-serialize exactly as the driver's own rows do.
        let via_response = match &response {
            ExperimentResponse::Fig3(rows) => serde_json::to_string_pretty(rows).unwrap(),
            _ => unreachable!(),
        };
        assert_eq!(via_response, serde_json::to_string_pretty(&direct).unwrap());
    }

    #[test]
    fn responses_round_trip_through_the_wire_form() {
        let session = Session::quick(6, 7);
        for request in [
            ExperimentRequest::Fig4,
            ExperimentRequest::Resources { cluster_counts: vec![4] },
            ExperimentRequest::Sweep {
                grid: SweepGrid::Small,
                classify: Classify::Static,
                prune: false,
                audit: 0,
            },
            ExperimentRequest::Verify,
        ] {
            let response = request.run(&session).unwrap();
            let json = serde_json::to_string(&response).unwrap();
            let back: ExperimentResponse = serde_json::from_str(&json).unwrap();
            assert_eq!(back, response, "{}", request.name());
        }
    }

    #[test]
    fn render_dispatch_produces_the_driver_tables() {
        let session = Session::quick(6, 7);
        let response = ExperimentRequest::Fig3.run(&session).unwrap();
        let table = response.render_table();
        assert!(table.contains("FUs"));
        let rows = match &response {
            ExperimentResponse::Fig3(rows) => rows,
            _ => unreachable!(),
        };
        assert_eq!(table, super::super::fig3::render(rows).render());
    }

    #[test]
    fn typed_experiments_report_their_names() {
        assert_eq!(Fig3.name(), "fig3");
        assert_eq!(Resources { cluster_counts: vec![4] }.name(), "resources");
        assert_eq!(Sweep::default().name(), "sweep");
        assert_eq!(Verify.name(), "verify");
    }
}
