//! The high-level compilation pipeline.
//!
//! [`Compiler`] ties the substrates together in the order the paper applies them:
//!
//! 1. **loop unrolling** (optional) to expose enough parallelism for wide machines;
//! 2. **copy insertion** (optional) so every value has a single destructive reader,
//!    as required by a queue register file;
//! 3. **scheduling** — plain iterative modulo scheduling for single-cluster
//!    machines, the partitioning scheduler for clustered machines;
//! 4. **storage allocation** — queue allocation (QRF) plus the conventional-RF
//!    MaxLive baseline;
//! 5. **analysis** — II, stage count, static/dynamic IPC and communication
//!    statistics.

use std::cell::RefCell;

use vliw_analysis::IpcReport;
use vliw_ddg::{Ddg, Loop};
use vliw_machine::Machine;
use vliw_partition::{partition_schedule_with, CommStats, PartitionOptions, PartitionScratch};
use vliw_qrf::{
    allocate_queues_with, conventional_registers_required, insert_copies, use_lifetimes_into,
    AllocScratch, Lifetime, QueueAllocation,
};
use vliw_sched::{modulo_schedule_with, ImsOptions, SchedError, SchedScratch, Schedule};
use vliw_unroll::{select_unroll_factor, unroll_ddg, unroll_ddg_into, DEFAULT_MAX_FACTOR};

/// Reusable temporaries of the whole compilation pipeline: the placement
/// engine's buffers (shared between plain IMS and the partitioner through
/// [`PartitionScratch`]), the queue allocator's interference rows and the
/// extracted-lifetime vector.
///
/// One arena per worker makes a corpus compile allocation-free in its hot loop:
/// [`Compiler::compile`] uses a thread-local arena (the session executor's
/// workers are OS threads, so each worker amortises one arena across every loop
/// it claims), and [`Compiler::compile_with`] threads an explicit arena for
/// callers that manage their own workers.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Placement buffers of plain IMS (single-cluster machines).
    pub sched: SchedScratch,
    /// Placement buffers + ring work-lists of the partitioner (clustered
    /// machines).
    pub partition: PartitionScratch,
    /// Interference signatures, rows and depth buffers of the queue allocator.
    pub alloc: AllocScratch,
    /// Extracted per-use lifetimes of the loop being compiled.
    pub lifetimes: Vec<Lifetime>,
    /// Scratch graph holding the unrolled body between unrolling and copy
    /// insertion (rebuilt in place per loop, never escapes the pipeline).
    pub unrolled: vliw_ddg::Ddg,
}

thread_local! {
    static COMPILE_ARENA: RefCell<ScratchArena> = RefCell::new(ScratchArena::default());
}

/// Configuration of the compilation pipeline.
#[derive(Debug, Clone)]
pub struct CompilerConfig {
    /// Target machine.
    pub machine: Machine,
    /// Insert copy operations so that every value has at most one reader (required
    /// for queue register files, Section 2).
    pub use_copies: bool,
    /// Apply loop unrolling before scheduling (Section 3).
    pub unroll: bool,
    /// Cap on the unroll factor.
    pub max_unroll: u32,
    /// Scheduler options for single-cluster machines.
    pub sched: ImsOptions,
    /// Scheduler options for clustered machines.
    pub partition: PartitionOptions,
}

impl CompilerConfig {
    /// A configuration with the paper's defaults for the given machine: copies on,
    /// unrolling on (factor ≤ 4).
    pub fn paper_defaults(machine: Machine) -> Self {
        CompilerConfig {
            machine,
            use_copies: true,
            unroll: true,
            max_unroll: DEFAULT_MAX_FACTOR,
            sched: ImsOptions::default(),
            partition: PartitionOptions::default(),
        }
    }

    /// Same as [`CompilerConfig::paper_defaults`] but without copy insertion (the
    /// "basic configuration" of Section 2, where multi-consumer values would need
    /// simultaneous writes).
    pub fn without_copies(machine: Machine) -> Self {
        CompilerConfig { use_copies: false, ..CompilerConfig::paper_defaults(machine) }
    }

    /// Disables unrolling, keeping everything else.
    pub fn no_unroll(mut self) -> Self {
        self.unroll = false;
        self
    }
}

/// The result of compiling one loop.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// Name of the source loop.
    pub loop_name: String,
    /// Unroll factor applied (1 = not unrolled).
    pub unroll_factor: u32,
    /// Number of copy operations inserted.
    pub num_copies: usize,
    /// The dependence graph that was actually scheduled (after unrolling and copy
    /// insertion).
    pub transformed: Ddg,
    /// The modulo schedule of the transformed body.
    pub schedule: Schedule,
    /// Lower bounds at which the body was scheduled.
    pub res_mii: u32,
    /// Recurrence-constrained lower bound.
    pub rec_mii: u32,
    /// `max(ResMII, RecMII)`.
    pub mii: u32,
    /// Stage count of the schedule.
    pub stage_count: u32,
    /// Static and dynamic issue rates (operations of the *transformed* body,
    /// normalised per body iteration; dynamic accounts for prologue/epilogue over
    /// the loop's trip count).
    pub ipc: IpcReport,
    /// Queue allocation of the scheduled body (per-use lifetimes over the whole
    /// machine); `None` only if the body produced no values.
    pub queues: QueueAllocation,
    /// Registers needed by a conventional register file (MaxLive baseline).
    pub registers_required: usize,
    /// Communication statistics; present only for clustered machines.
    pub comm: Option<CommStats>,
}

impl Compilation {
    /// The initiation interval of the schedule.
    pub fn ii(&self) -> u32 {
        self.schedule.ii
    }

    /// Number of queues required by the schedule (Fig. 3's quantity).
    pub fn queues_required(&self) -> usize {
        self.queues.num_queues()
    }

    /// True if the scheduler achieved the MII lower bound.
    pub fn achieved_mii(&self) -> bool {
        self.schedule.ii == self.mii.max(1)
    }

    /// Pool-split storage feasibility of this compilation on `machine` — the
    /// corrected Fig. 7 sizing predicate the design-space sweep consumes.
    ///
    /// On a single-cluster machine the machine-wide allocation *is* the private
    /// pool, so the flat [`QueueAllocation::fits`] check applies.  On a
    /// clustered machine local and cross-cluster lifetimes live in different
    /// hardware pools (private GPQs vs ring queues), so feasibility comes from
    /// the per-pool allocations of [`CommStats::fits_pools`] instead; the flat
    /// allocation would charge communication values against the private budget.
    pub fn fits_machine(&self, machine: &Machine) -> bool {
        match &self.comm {
            Some(comm) => comm.fits_pools(machine),
            None => {
                let cfg = machine.cluster(vliw_machine::ClusterId(0));
                self.queues.fits(cfg.private_queues, cfg.queue_capacity)
            }
        }
    }
}

/// The compilation pipeline for one machine configuration.
#[derive(Debug, Clone)]
pub struct Compiler {
    config: CompilerConfig,
}

impl Compiler {
    /// Creates a compiler from a configuration.
    pub fn new(config: CompilerConfig) -> Self {
        Compiler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Compiles one loop end to end.
    pub fn compile(&self, lp: &Loop) -> Result<Compilation, SchedError> {
        COMPILE_ARENA.with(|a| self.compile_with(lp, &mut a.borrow_mut()))
    }

    /// [`Compiler::compile`] backed by a caller-owned [`ScratchArena`]; the
    /// scheduler and allocator temporaries live in `arena` instead of being
    /// reallocated per loop.
    pub fn compile_with(
        &self,
        lp: &Loop,
        arena: &mut ScratchArena,
    ) -> Result<Compilation, SchedError> {
        let machine = &self.config.machine;
        let latencies = *machine.latencies();

        // 1 + 2. Unrolling and copy insertion.  When both run, the unrolled
        // intermediate is consumed by copy insertion and never escapes, so it
        // lives in an arena graph that is rebuilt in place loop after loop.
        let (body, unroll_factor, num_copies) = match (self.config.unroll, self.config.use_copies) {
            (true, true) => {
                let factor = {
                    let _span = vliw_obs::span!("unroll", lp.ddg.num_ops());
                    let factor = select_unroll_factor(&lp.ddg, machine, self.config.max_unroll);
                    unroll_ddg_into(&lp.ddg, factor, &mut arena.unrolled);
                    factor
                };
                let _span = vliw_obs::span!("ddg/copies", arena.unrolled.num_ops());
                let ins = insert_copies(&arena.unrolled, &latencies);
                let n = ins.num_copies();
                (ins.ddg, factor, n)
            }
            (true, false) => {
                let _span = vliw_obs::span!("unroll", lp.ddg.num_ops());
                let factor = select_unroll_factor(&lp.ddg, machine, self.config.max_unroll);
                (unroll_ddg(&lp.ddg, factor).ddg, factor, 0)
            }
            (false, true) => {
                let _span = vliw_obs::span!("ddg/copies", lp.ddg.num_ops());
                let ins = insert_copies(&lp.ddg, &latencies);
                let n = ins.num_copies();
                (ins.ddg, 1, n)
            }
            (false, false) => (lp.ddg.clone(), 1, 0),
        };

        // 3. Scheduling.
        let (schedule, res_mii, rec_mii, mii, comm) = if machine.is_clustered() {
            let r = partition_schedule_with(
                &body,
                machine,
                self.config.partition,
                &mut arena.partition,
            )?;
            (r.schedule, r.res_mii, r.rec_mii, r.mii, Some(r.comm))
        } else {
            let r = modulo_schedule_with(&body, machine, self.config.sched, &mut arena.sched)?;
            (r.schedule, r.res_mii, r.rec_mii, r.mii, None)
        };

        // 4. Storage allocation.
        use_lifetimes_into(&body, &schedule, &mut arena.lifetimes);
        let queues = allocate_queues_with(&arena.lifetimes, schedule.ii, &mut arena.alloc);
        let registers_required = conventional_registers_required(&body, &schedule);

        // 5. Analysis.
        let stage_count = schedule.stage_count();
        // IPC is computed over the scheduled body: `unroll_factor` original
        // iterations plus any copy overhead per body iteration.
        let body_ops = body.num_ops();
        let body_iterations = lp.trip_count.div_ceil(unroll_factor.max(1) as u64).max(1);
        let ipc = IpcReport {
            static_ipc: vliw_analysis::static_ipc(body_ops, &schedule),
            dynamic_ipc: vliw_analysis::dynamic_ipc(body_ops, &schedule, body_iterations),
        };

        Ok(Compilation {
            loop_name: lp.name.clone(),
            unroll_factor,
            num_copies,
            transformed: body,
            schedule,
            res_mii,
            rec_mii,
            mii,
            stage_count,
            ipc,
            queues,
            registers_required,
            comm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, LatencyModel};

    fn lat() -> LatencyModel {
        LatencyModel::default()
    }

    #[test]
    fn pipeline_compiles_kernels_on_single_cluster() {
        let machine = Machine::single_cluster(6, 2, 32, lat());
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
        for lp in kernels::all_kernels(lat()) {
            let c = compiler.compile(&lp).unwrap_or_else(|e| panic!("{}: {e}", lp.name));
            assert!(c.schedule.validate(&c.transformed, &machine).is_ok());
            assert!(c.ii() >= c.mii);
            assert!(c.stage_count >= 1);
            assert!(c.ipc.static_ipc > 0.0);
            assert!(c.queues_required() >= 1);
            assert!(c.comm.is_none());
        }
    }

    #[test]
    fn pipeline_compiles_kernels_on_clustered_machine() {
        let machine = Machine::paper_clustered(4, lat());
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
        for lp in kernels::all_kernels(lat()) {
            let c = compiler.compile(&lp).unwrap();
            assert!(c.schedule.validate(&c.transformed, &machine).is_ok());
            let comm = c.comm.expect("clustered machines report communication stats");
            assert_eq!(
                comm.cross_cluster_values + comm.local_values,
                c.transformed.edges().filter(|e| e.kind == vliw_ddg::DepKind::Flow).count()
            );
        }
    }

    #[test]
    fn fits_machine_dispatches_per_pool() {
        let lp = kernels::wide_parallel(lat(), 100);
        // Single cluster: the flat allocation is the private pool; one queue of
        // storage cannot hold a wide kernel, ample storage can.
        let tight = Machine::single_cluster(6, 2, 1, lat());
        let c = Compiler::new(CompilerConfig::paper_defaults(tight.clone())).compile(&lp).unwrap();
        assert!(c.queues_required() > 1);
        assert!(!c.fits_machine(&tight));
        let ample = Machine::single_cluster(6, 2, 1024, lat());
        let c = Compiler::new(CompilerConfig::paper_defaults(ample.clone())).compile(&lp).unwrap();
        assert!(c.fits_machine(&ample));
        // Clustered: the verdict is the pool-split one, never the flat check.
        let clustered = Machine::paper_clustered(4, lat());
        let compiler = Compiler::new(CompilerConfig::paper_defaults(clustered.clone()));
        for lp in kernels::all_kernels(lat()) {
            let c = compiler.compile(&lp).unwrap();
            let comm = c.comm.as_ref().expect("clustered");
            assert_eq!(c.fits_machine(&clustered), comm.fits_pools(&clustered), "{}", lp.name);
        }
    }

    #[test]
    fn explicit_arena_matches_the_thread_local_path() {
        // One arena carried across machines of both shapes (so the scratch is
        // re-shaped repeatedly) must reproduce the thread-local compiles.
        let mut arena = ScratchArena::default();
        for machine in
            [Machine::single_cluster(6, 2, 32, lat()), Machine::paper_clustered(4, lat())]
        {
            let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
            for lp in kernels::all_kernels(lat()) {
                let tls = compiler.compile(&lp).unwrap();
                let explicit = compiler.compile_with(&lp, &mut arena).unwrap();
                assert_eq!(tls.schedule, explicit.schedule, "{}", lp.name);
                assert_eq!(tls.queues, explicit.queues, "{}", lp.name);
                assert_eq!(tls.registers_required, explicit.registers_required, "{}", lp.name);
            }
        }
    }

    #[test]
    fn copies_only_inserted_when_requested() {
        let machine = Machine::single_cluster(6, 2, 32, lat());
        let with = Compiler::new(CompilerConfig::paper_defaults(machine.clone()));
        let without = Compiler::new(CompilerConfig::without_copies(machine));
        let lp = kernels::wide_parallel(lat(), 100);
        let a = with.compile(&lp).unwrap();
        let b = without.compile(&lp).unwrap();
        assert!(a.num_copies > 0);
        assert_eq!(b.num_copies, 0);
        assert!(a.transformed.num_ops() > b.transformed.num_ops());
    }

    #[test]
    fn no_unroll_keeps_body_size() {
        let machine = Machine::single_cluster(12, 4, 32, lat());
        let cfg = CompilerConfig::without_copies(machine).no_unroll();
        let compiler = Compiler::new(cfg);
        let lp = kernels::daxpy(lat(), 100);
        let c = compiler.compile(&lp).unwrap();
        assert_eq!(c.unroll_factor, 1);
        assert_eq!(c.transformed.num_ops(), lp.ddg.num_ops());
    }

    #[test]
    fn conventional_rf_needs_no_more_registers_than_machine_width_times_latency() {
        let machine = Machine::single_cluster(6, 2, 32, lat());
        let compiler = Compiler::new(CompilerConfig::paper_defaults(machine));
        let lp = kernels::dot_product(lat(), 1000);
        let c = compiler.compile(&lp).unwrap();
        assert!(c.registers_required >= 1);
        assert!(c.registers_required < 200);
    }
}
