//! The unified error type of the session and experiment layers.
//!
//! Before the serve layer existed, every failure inside a sweep was a panic:
//! worker panics were re-raised by the executor, drivers `expect`ed invariants,
//! and the CLI died with a backtrace.  A daemon cannot afford that — a bad
//! request or a corrupt cache entry must come back over the wire as a typed
//! error while the session keeps serving other clients.  [`VliwError`] is that
//! type: every fallible session/experiment API returns it, and it serializes
//! to a `{kind, message}` wire object that the protocol layer ships verbatim.
//!
//! Deserialization is deliberately lossy: a client cannot (and need not)
//! rebuild a structured [`SchedError`] from the wire, so every received error
//! lands in [`VliwError::Remote`] with the original kind and message preserved.
//! `Display` of a round-tripped error equals `Display` of the original, which
//! is the property the persistent store and the tests rely on.

use serde::de;
use serde::{Deserialize, Serialize, Value};
use vliw_sched::SchedError;

/// Any failure of the session, experiment, persistence or protocol layers.
#[derive(Debug, Clone, PartialEq)]
pub enum VliwError {
    /// A loop failed to schedule (the one *expected* failure of the pipeline).
    Sched(SchedError),
    /// A sweep worker panicked; `index` is the lowest corpus index that did.
    WorkerPanic {
        /// Corpus index of the loop whose worker panicked.
        index: usize,
        /// The original panic payload, rendered to text.
        message: String,
    },
    /// An internal invariant did not hold (the typed replacement for `expect`).
    Internal(String),
    /// An I/O failure (socket, cache file, listener).
    Io(String),
    /// A persistent-store entry failed verification (bad digest, wrong
    /// version, truncated or unparsable JSON).  Callers treat this as a miss.
    Corrupt(String),
    /// A malformed protocol frame or envelope.
    Protocol(String),
    /// A syntactically valid request the server cannot serve (unknown
    /// experiment, mismatched session parameters).
    InvalidRequest(String),
    /// An error received over the wire, kind and message preserved verbatim.
    Remote {
        /// The `kind` tag the sender serialized.
        kind: String,
        /// The sender's rendered message.
        message: String,
    },
}

impl VliwError {
    /// Creates an [`VliwError::Internal`] from a message.
    pub fn internal(message: impl Into<String>) -> Self {
        VliwError::Internal(message.into())
    }

    /// The stable kind tag used on the wire and in the persistent store.
    pub fn kind(&self) -> &str {
        match self {
            VliwError::Sched(_) => "sched",
            VliwError::WorkerPanic { .. } => "worker_panic",
            VliwError::Internal(_) => "internal",
            VliwError::Io(_) => "io",
            VliwError::Corrupt(_) => "corrupt",
            VliwError::Protocol(_) => "protocol",
            VliwError::InvalidRequest(_) => "invalid_request",
            VliwError::Remote { kind, .. } => kind,
        }
    }

    /// True for errors that mean "this loop does not schedule" rather than
    /// "something broke": [`VliwError::Sched`] and its wire echo.
    pub fn is_sched(&self) -> bool {
        matches!(self, VliwError::Sched(_))
            || matches!(self, VliwError::Remote { kind, .. } if kind == "sched")
    }
}

impl std::fmt::Display for VliwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // `Sched` and `Remote` print the underlying message verbatim, so an
            // error that round-trips through the store or the wire renders
            // identically to the original.
            VliwError::Sched(e) => write!(f, "{e}"),
            VliwError::WorkerPanic { index, message } => {
                write!(f, "experiment worker panicked at loop index {index}: {message}")
            }
            VliwError::Internal(m) => write!(f, "internal error: {m}"),
            VliwError::Io(m) => write!(f, "i/o error: {m}"),
            VliwError::Corrupt(m) => write!(f, "corrupt cache entry: {m}"),
            VliwError::Protocol(m) => write!(f, "protocol error: {m}"),
            VliwError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            VliwError::Remote { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for VliwError {}

impl From<SchedError> for VliwError {
    fn from(e: SchedError) -> Self {
        VliwError::Sched(e)
    }
}

impl From<std::io::Error> for VliwError {
    fn from(e: std::io::Error) -> Self {
        VliwError::Io(e.to_string())
    }
}

impl Serialize for VliwError {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("kind".to_string(), Value::String(self.kind().to_string())),
            ("message".to_string(), Value::String(self.to_string())),
        ])
    }
}

impl Deserialize for VliwError {
    fn deserialize(v: &Value) -> Result<Self, de::Error> {
        let entries = v.as_object().ok_or_else(|| de::Error::unexpected("error object", v))?;
        let kind: String = de::field(entries, "kind")?;
        let message: String = de::field(entries, "message")?;
        Ok(VliwError::Remote { kind, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_of_wire_round_trip_is_stable() {
        let errors = [
            VliwError::Sched(SchedError::EmptyGraph),
            VliwError::WorkerPanic { index: 7, message: "boom".into() },
            VliwError::internal("simulated loops compiled"),
            VliwError::Io("connection reset".into()),
            VliwError::Corrupt("bad digest".into()),
            VliwError::Protocol("frame too large".into()),
            VliwError::InvalidRequest("unknown experiment `fig5`".into()),
        ];
        for e in errors {
            let back = VliwError::deserialize(&e.serialize()).expect("round trip");
            assert_eq!(back.to_string(), e.to_string(), "{e:?}");
            assert_eq!(back.kind(), e.kind());
        }
    }

    #[test]
    fn sched_errors_are_recognised_after_the_round_trip() {
        let e = VliwError::Sched(SchedError::EmptyGraph);
        assert!(e.is_sched());
        let back = VliwError::deserialize(&e.serialize()).unwrap();
        assert!(back.is_sched());
        assert!(!VliwError::internal("x").is_sched());
    }

    #[test]
    fn worker_panic_message_matches_the_executor_diagnostic() {
        let e = VliwError::WorkerPanic { index: 19, message: "II search diverged".into() };
        let s = e.to_string();
        assert!(s.contains("loop index 19"));
        assert!(s.contains("II search diverged"));
    }
}
