//! Disk-backed content-addressed store for compilation and simulation results.
//!
//! Entries are addressed by two FNV-1a digests — one over the canonical
//! [`CompilationKey`] (the sweep point) and one over the loop's full structure
//! (name, trip count, operation kinds, dependence edges) — so a cache entry is
//! valid exactly when both the configuration and the loop are bit-identical to
//! the ones that produced it.  The corpus is procedurally generated from a
//! seed, which makes the loop digest a complete fingerprint: two runs with the
//! same `(corpus_size, seed)` address the same entries, and any change to the
//! generator changes the digests and silently misses instead of serving stale
//! data.
//!
//! Layout: one JSON file per entry under a version directory,
//!
//! ```text
//! <cache_dir>/v{STORE_VERSION}/c_{key:016x}_{loop:016x}.json         compile
//! <cache_dir>/v{STORE_VERSION}/s_{key:016x}_{loop:016x}_{trip}.json  simulate
//! ```
//!
//! Bumping [`STORE_VERSION`] (on any change to the summary schema, the digest
//! recipe, or the pipeline's observable numbers) retires every prior entry at
//! once: old versions live in a different directory that is simply never read.
//! Each file additionally embeds the version and both digests and is verified
//! on load, so a truncated, corrupted, or hand-edited entry degrades to a
//! recompute, never to a wrong answer.  Writes go through a temporary file and
//! an atomic rename, so a crashed writer cannot leave a half-written entry
//! under the final name.  All I/O is best-effort: a read-only or full disk
//! disables persistence but never fails a compilation.

use std::fs;
use std::hash::{Hash, Hasher};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{de, Serialize, Value};
use vliw_ddg::Loop;

use crate::error::VliwError;
use crate::session::artifact::{LoopSummary, SimSummary};
use crate::session::key::CompilationKey;

/// Version of the on-disk schema.  Bump on any change to [`LoopSummary`],
/// [`SimSummary`], the digest recipe, or the numeric behaviour of the pipeline.
pub const STORE_VERSION: u32 = 1;

/// FNV-1a, 64-bit: a tiny, dependency-free [`Hasher`] whose output is stable
/// across processes and platforms — unlike [`std::collections::hash_map::DefaultHasher`],
/// whose algorithm is explicitly unspecified and randomly keyed.  Stability is
/// the whole point here: the digest *is* the disk address.
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET_BASIS)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable digest of a canonical compilation key (the sweep point).
pub fn key_digest(key: &CompilationKey) -> u64 {
    let mut h = Fnv64::new();
    key.hash(&mut h);
    h.finish()
}

/// Stable digest of a loop's complete structure: name, trip count, operation
/// kinds in id order, and every dependence edge.
pub fn loop_digest(lp: &Loop) -> u64 {
    let mut h = Fnv64::new();
    lp.name.hash(&mut h);
    lp.trip_count.hash(&mut h);
    lp.ddg.num_ops().hash(&mut h);
    for op in lp.ddg.ops() {
        op.kind.hash(&mut h);
    }
    for e in lp.ddg.edges() {
        e.src.hash(&mut h);
        e.dst.hash(&mut h);
        e.kind.hash(&mut h);
        e.latency.hash(&mut h);
        e.distance.hash(&mut h);
    }
    h.finish()
}

/// How many disk probes hit/missed, for the daemon's stats surface.
#[derive(Debug, Default)]
pub struct PersistCounters {
    /// Entries served from disk.
    pub loads: AtomicU64,
    /// Entries written to disk.
    pub writes: AtomicU64,
    /// Load attempts rejected as corrupt, truncated, or version-mismatched.
    pub rejects: AtomicU64,
}

/// A handle to one versioned cache directory.
pub struct PersistStore {
    root: PathBuf,
    counters: PersistCounters,
}

impl PersistStore {
    /// Opens (creating if needed) the [`STORE_VERSION`] subdirectory of `dir`.
    pub fn open(dir: &Path) -> Result<PersistStore, VliwError> {
        let root = dir.join(format!("v{STORE_VERSION}"));
        fs::create_dir_all(&root)
            .map_err(|e| VliwError::Io(format!("create cache dir {}: {e}", root.display())))?;
        Ok(PersistStore { root, counters: PersistCounters::default() })
    }

    /// The versioned directory entries live in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Disk-probe counters accumulated so far: (loads, writes, rejects).
    pub fn counter_values(&self) -> (u64, u64, u64) {
        (
            self.counters.loads.load(Ordering::Relaxed),
            self.counters.writes.load(Ordering::Relaxed),
            self.counters.rejects.load(Ordering::Relaxed),
        )
    }

    fn compile_path(&self, key: u64, lp: u64) -> PathBuf {
        self.root.join(format!("c_{key:016x}_{lp:016x}.json"))
    }

    fn sim_path(&self, key: u64, lp: u64, trip_count: u64) -> PathBuf {
        self.root.join(format!("s_{key:016x}_{lp:016x}_{trip_count}.json"))
    }

    /// Loads a compilation result, or `None` on miss / corruption / mismatch.
    pub fn load_compile(&self, key: u64, lp: u64) -> Option<Result<LoopSummary, VliwError>> {
        let entries = self.load_envelope(&self.compile_path(key, lp), key, lp)?;
        let parsed: Result<_, de::Error> = (|| {
            if let Ok(summary) = de::field::<LoopSummary>(&entries, "ok") {
                return Ok(Ok(summary));
            }
            Ok(Err(de::field::<VliwError>(&entries, "err")?))
        })();
        self.accept(parsed)
    }

    /// Persists a compilation result (both successes and scheduling failures,
    /// so a warm run replays failures without recompiling them). Best-effort.
    pub fn store_compile(&self, key: u64, lp: u64, result: &Result<LoopSummary, VliwError>) {
        let body = match result {
            Ok(summary) => ("ok".to_string(), summary.serialize()),
            Err(e) => ("err".to_string(), e.serialize()),
        };
        self.write_envelope(&self.compile_path(key, lp), key, lp, body);
    }

    /// Loads a simulation summary, or `None` on miss / corruption / mismatch.
    pub fn load_sim(&self, key: u64, lp: u64, trip_count: u64) -> Option<SimSummary> {
        let entries = self.load_envelope(&self.sim_path(key, lp, trip_count), key, lp)?;
        self.accept(de::field::<SimSummary>(&entries, "run"))
    }

    /// Persists a simulation summary. Best-effort.
    pub fn store_sim(&self, key: u64, lp: u64, trip_count: u64, run: &SimSummary) {
        let path = self.sim_path(key, lp, trip_count);
        self.write_envelope(&path, key, lp, ("run".to_string(), run.serialize()));
    }

    /// Reads `path`, parses it, and verifies the version/digest envelope.
    /// Returns the entry fields on success; counts a reject on any mismatch.
    fn load_envelope(&self, path: &Path, key: u64, lp: u64) -> Option<Vec<(String, Value)>> {
        let _span = vliw_obs::span!("persist/io", lp);
        let text = fs::read_to_string(path).ok()?;
        let verified: Result<Vec<(String, Value)>, de::Error> = (|| {
            let value: Value =
                serde_json::from_str(&text).map_err(|e| de::Error::custom(e.to_string()))?;
            let Value::Object(entries) = value else {
                return Err(de::Error::unexpected("object", &value));
            };
            let version: u32 = de::field(&entries, "store_version")?;
            let entry_key: String = de::field(&entries, "key")?;
            let entry_loop: String = de::field(&entries, "loop")?;
            if version != STORE_VERSION
                || entry_key != format!("{key:016x}")
                || entry_loop != format!("{lp:016x}")
            {
                return Err(de::Error::custom("envelope digest mismatch"));
            }
            Ok(entries)
        })();
        // Only the reject is counted here: the load is counted once, by the
        // caller's `accept` over the payload parse.
        match verified {
            Ok(entries) => Some(entries),
            Err(_) => {
                self.counters.rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn accept<T>(&self, parsed: Result<T, de::Error>) -> Option<T> {
        match parsed {
            Ok(v) => {
                self.counters.loads.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            Err(_) => {
                self.counters.rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Serializes the envelope and writes it via tmp-file + atomic rename.
    fn write_envelope(&self, path: &Path, key: u64, lp: u64, body: (String, Value)) {
        let _span = vliw_obs::span!("persist/io", lp);
        let envelope = Value::Object(vec![
            ("store_version".to_string(), Value::UInt(u64::from(STORE_VERSION))),
            ("key".to_string(), Value::String(format!("{key:016x}"))),
            ("loop".to_string(), Value::String(format!("{lp:016x}"))),
            body,
        ]);
        let Ok(text) = serde_json::to_string(&envelope) else { return };
        // Unique tmp name per writer so concurrent stores of the same entry
        // cannot interleave; the rename makes the final name appear atomically.
        let tmp = path.with_extension(format!("tmp.{:x}", thread_token()));
        let write = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_data().ok();
            fs::rename(&tmp, path)
        })();
        match write {
            Ok(()) => {
                self.counters.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
            }
        }
    }
}

impl std::fmt::Debug for PersistStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (loads, writes, rejects) = self.counter_values();
        f.debug_struct("PersistStore")
            .field("root", &self.root)
            .field("loads", &loads)
            .field("writes", &writes)
            .field("rejects", &rejects)
            .finish()
    }
}

/// A process- and thread-unique token for temporary file names.
fn thread_token() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    (u64::from(std::process::id()) << 20) | (n & 0xf_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ddg::{kernels, LatencyModel};

    fn digests() -> (u64, u64) {
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        let key = CompilationKey::of(&crate::pipeline::CompilerConfig::paper_defaults(
            vliw_machine::Machine::paper_single(6),
        ));
        (key_digest(&key), loop_digest(&lp))
    }

    #[test]
    fn digests_are_stable_and_structure_sensitive() {
        let lat = LatencyModel::default;
        let a = kernels::dot_product(lat(), 100);
        assert_eq!(loop_digest(&a), loop_digest(&kernels::dot_product(lat(), 100)));
        assert_ne!(loop_digest(&a), loop_digest(&kernels::dot_product(lat(), 101)));
        assert_ne!(loop_digest(&a), loop_digest(&kernels::daxpy(lat(), 100)));
        let (k, _) = digests();
        assert_eq!(k, digests().0, "key digest must be deterministic");
    }

    #[test]
    fn fnv_matches_the_reference_vectors() {
        // Published FNV-1a test vectors.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }
}
