//! Streamed corpus compilation: bounded shards, flat memory.
//!
//! [`Session`](super::Session) materialises its whole corpus up front — the
//! right trade for the paper's 1258-loop evaluation, where every driver
//! re-reads the same loops and the memo store keeps their artifacts anyway.
//! At 100k+ loops that model stops scaling: the corpus alone is hundreds of
//! megabytes and the per-loop artifacts would dwarf it.
//!
//! [`compile_stream`] instead pulls loops from a [`CorpusStream`] one bounded
//! shard at a time, compiles each shard on the work-stealing executor, folds
//! the per-loop metrics into running aggregates, and drops the shard before
//! generating the next one.  Peak memory is `O(shard_size)`, independent of the
//! corpus size; the per-worker scratch arenas of the compile pipeline
//! (`vliw_core::ScratchArena`) amortise across every loop a worker claims.
//! The loop stream is the same generator the eager path uses, so loop `i` of a
//! streamed run is byte-identical to loop `i` of `Session::new` with the same
//! corpus configuration.

use serde::{Deserialize, Serialize};

use vliw_loopgen::{CorpusConfig, CorpusStream};

use super::executor::par_map_indexed;
use crate::error::VliwError;
use crate::experiments::default_threads;
use crate::pipeline::{Compiler, CompilerConfig};

/// Default shard size of a streamed run: large enough to keep every worker
/// busy between refills, small enough that a shard of generated loops plus its
/// in-flight compilations stays a few megabytes.
pub const DEFAULT_SHARD_SIZE: usize = 1024;

/// Parameters of a streamed compilation run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Corpus to stream (its `num_loops` is the total streamed, never resident).
    pub corpus: CorpusConfig,
    /// Loops generated and compiled per shard (clamped to ≥ 1).
    pub shard_size: usize,
    /// Worker threads per shard (1 = sequential).
    pub threads: usize,
}

impl StreamConfig {
    /// A streamed run over `num_loops` paper-statistics loops with `seed`,
    /// default shard size and thread count.
    pub fn new(num_loops: usize, seed: u64) -> Self {
        let mut corpus = CorpusConfig::paper_default();
        corpus.num_loops = num_loops;
        corpus.seed = seed;
        StreamConfig { corpus, shard_size: DEFAULT_SHARD_SIZE, threads: default_threads() }
    }
}

/// Aggregate metrics of one streamed run — everything the run keeps; the
/// per-loop artifacts are dropped shard by shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Total loops streamed.
    pub corpus_size: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Shard size of the run.
    pub shard_size: usize,
    /// Number of shards processed.
    pub shards: usize,
    /// Loops that compiled successfully.
    pub compiled: usize,
    /// Loops that failed to schedule under the configuration.
    pub failed: usize,
    /// Mean initiation interval over the compiled loops.
    pub mean_ii: f64,
    /// Mean lower bound (MII) over the compiled loops.
    pub mean_mii: f64,
    /// Fraction of compiled loops scheduled at exactly their MII.
    pub mii_achieved_fraction: f64,
    /// Mean number of queues allocated per compiled loop.
    pub mean_queues: f64,
    /// Largest queue depth seen across the whole run.
    pub max_queue_depth: usize,
    /// Peak resident set size of the process in kB (`VmHWM` from
    /// `/proc/self/status`), if the platform exposes it.  Read *after* the
    /// last shard, so it bounds the whole run — the flat-memory evidence the
    /// 100k-loop smoke asserts on.
    pub peak_rss_kb: Option<u64>,
}

/// The per-loop metrics a shard worker returns; deliberately tiny so a shard's
/// results stay O(shard_size) no matter how large the schedules were.
struct LoopMetrics {
    ii: u32,
    mii: u32,
    queues: usize,
    max_queue_depth: usize,
}

/// Streams the configured corpus through `compiler_config` in bounded shards
/// and returns the aggregate report.
///
/// Worker panics inside a shard surface as [`VliwError::WorkerPanic`] (the
/// executor's contract); scheduling failures are counted, not fatal.
pub fn compile_stream(
    cfg: &StreamConfig,
    compiler_config: CompilerConfig,
) -> Result<StreamReport, VliwError> {
    let compiler = Compiler::new(compiler_config);
    let shard_size = cfg.shard_size.max(1);
    let mut stream = CorpusStream::new(cfg.corpus.clone());

    let mut shard = Vec::with_capacity(shard_size.min(cfg.corpus.num_loops));
    let mut shards = 0usize;
    let mut compiled = 0usize;
    let mut failed = 0usize;
    let mut sum_ii = 0u64;
    let mut sum_mii = 0u64;
    let mut at_mii = 0usize;
    let mut sum_queues = 0u64;
    let mut max_queue_depth = 0usize;

    loop {
        shard.clear();
        {
            let _span = vliw_obs::span!("corpusgen", shard_size);
            shard.extend(stream.by_ref().take(shard_size));
        }
        if shard.is_empty() {
            break;
        }
        shards += 1;
        let results: Vec<Option<LoopMetrics>> = par_map_indexed(shard.len(), cfg.threads, |i| {
            compiler.compile(&shard[i]).ok().map(|c| LoopMetrics {
                ii: c.ii(),
                mii: c.mii,
                queues: c.queues_required(),
                max_queue_depth: c.queues.max_queue_depth(),
            })
        });
        for result in results {
            match result {
                Some(m) => {
                    compiled += 1;
                    sum_ii += u64::from(m.ii);
                    sum_mii += u64::from(m.mii);
                    at_mii += usize::from(m.ii == m.mii);
                    sum_queues += m.queues as u64;
                    max_queue_depth = max_queue_depth.max(m.max_queue_depth);
                }
                None => failed += 1,
            }
        }
    }

    let mean = |sum: u64| if compiled > 0 { sum as f64 / compiled as f64 } else { 0.0 };
    Ok(StreamReport {
        corpus_size: cfg.corpus.num_loops,
        seed: cfg.corpus.seed,
        shard_size,
        shards,
        compiled,
        failed,
        mean_ii: mean(sum_ii),
        mean_mii: mean(sum_mii),
        mii_achieved_fraction: if compiled > 0 { at_mii as f64 / compiled as f64 } else { 0.0 },
        mean_queues: mean(sum_queues),
        max_queue_depth,
        peak_rss_kb: peak_rss_kb(),
    })
}

/// Peak resident set size of this process in kB — `VmHWM` from
/// `/proc/self/status` on Linux, `None` elsewhere.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentConfig;
    use crate::session::Session;
    use vliw_machine::Machine;

    fn config(num_loops: usize, shard_size: usize) -> StreamConfig {
        let mut cfg = StreamConfig::new(num_loops, 386);
        cfg.shard_size = shard_size;
        cfg.threads = 2;
        cfg
    }

    fn paper_compiler_config() -> CompilerConfig {
        CompilerConfig::paper_defaults(Machine::paper_single(6))
    }

    #[test]
    fn shard_size_does_not_change_the_aggregates() {
        let whole = compile_stream(&config(30, 30), paper_compiler_config()).unwrap();
        let sharded = compile_stream(&config(30, 7), paper_compiler_config()).unwrap();
        assert_eq!(sharded.shards, 5, "30 loops in shards of 7 is 5 shards");
        assert_eq!(whole.shards, 1);
        // Everything except the sharding bookkeeping (and the RSS snapshot)
        // must be identical: the stream yields the same loops either way.
        assert_eq!(whole.compiled, sharded.compiled);
        assert_eq!(whole.failed, sharded.failed);
        assert_eq!(whole.mean_ii, sharded.mean_ii);
        assert_eq!(whole.mean_mii, sharded.mean_mii);
        assert_eq!(whole.mii_achieved_fraction, sharded.mii_achieved_fraction);
        assert_eq!(whole.mean_queues, sharded.mean_queues);
        assert_eq!(whole.max_queue_depth, sharded.max_queue_depth);
    }

    #[test]
    fn streamed_aggregates_match_an_eager_session_sweep() {
        let cfg = config(24, 5);
        let report = compile_stream(&cfg, paper_compiler_config()).unwrap();

        let session = Session::new(ExperimentConfig {
            corpus: cfg.corpus.clone(),
            threads: 2,
            cache_dir: None,
        });
        let compiler = session.compiler(paper_compiler_config());
        let summaries: Vec<_> =
            session.sweep(|i, _| compiler.map_ok(i, |s| (s.ii, s.mii, s.queues_required)));
        let ok: Vec<_> = summaries.iter().flatten().collect();
        assert_eq!(report.compiled, ok.len());
        assert_eq!(report.failed, summaries.len() - ok.len());
        assert_eq!(report.corpus_size, 24);
        let mean_ii = ok.iter().map(|s| f64::from(s.0)).sum::<f64>() / ok.len() as f64;
        assert!((report.mean_ii - mean_ii).abs() < 1e-12);
        let at_mii = ok.iter().filter(|s| s.0 == s.1).count();
        assert!((report.mii_achieved_fraction - at_mii as f64 / ok.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let report = compile_stream(&config(6, 3), paper_compiler_config()).unwrap();
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: StreamReport = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, report);
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        let report = compile_stream(&config(2, 2), paper_compiler_config()).unwrap();
        if cfg!(target_os = "linux") {
            assert!(report.peak_rss_kb.unwrap() > 0);
        }
    }
}
