//! The work-stealing corpus executor.
//!
//! The previous sweep implementation split the corpus into `threads` static chunks;
//! one pathological loop (the scheduler's backtracking budget varies wildly across
//! the synthetic corpus) then idled every other item of its chunk's worker while
//! the rest of the pool sat done.  Here every worker instead claims the next
//! unprocessed index from a shared atomic counter, so the load balances itself at
//! the granularity of a single loop: a slow item costs exactly one worker, and the
//! others drain the remaining indices around it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index in `0..n`, in parallel over `threads` workers, and
/// returns the results in index order.
///
/// Workers claim indices from a shared atomic counter (work stealing at item
/// granularity) and buffer `(index, result)` pairs locally; the caller's thread
/// merges the buffers once, so no result slot is ever shared between workers and
/// `f` only needs to be `Sync` — no `'static` bound, no unsafe code.
///
/// Panics in `f` are propagated after all workers stop.
pub fn par_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    let mut local = Vec::with_capacity(n / threads + 1);
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        local.push((index, f(index)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("experiment worker panicked");

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    for (index, result) in buckets.into_iter().flatten() {
        results[index] = Some(result);
    }
    results.into_iter().map(|r| r.expect("every index was claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_index_order() {
        let seq: Vec<u64> = (0..500).map(|i| i as u64 * 7 + 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map_indexed(500, threads, |i| i as u64 * 7 + 3);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = par_map_indexed(200, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 200);
        assert_eq!(out, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_balanced_across_workers() {
        // One artificially slow item must not serialise the items behind it the way
        // a static chunking would: with 2 workers and the slow item first, the other
        // worker processes everything else concurrently.  We can't assert timing in
        // a unit test, but we can assert correctness under very skewed work.
        let out = par_map_indexed(64, 2, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "experiment worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map_indexed(16, 4, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }
}
