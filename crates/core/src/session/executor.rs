//! The work-stealing corpus executor.
//!
//! The previous sweep implementation split the corpus into `threads` static chunks;
//! one pathological loop (the scheduler's backtracking budget varies wildly across
//! the synthetic corpus) then idled every other item of its chunk's worker while
//! the rest of the pool sat done.  Here every worker instead claims the next
//! unprocessed index from a shared atomic counter, so the load balances itself at
//! the granularity of a single loop: a slow item costs exactly one worker, and the
//! others drain the remaining indices around it.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::VliwError;

/// What one worker produced: its `(index, result)` buffer, or the diagnosis of
/// the first item that failed on it.
type WorkerOutcome<R> = Result<Vec<(usize, R)>, (usize, VliwError)>;

/// Applies the fallible `f` to every index in `0..n`, in parallel over
/// `threads` workers, and returns the results in index order — or the error of
/// the lowest-indexed item that failed.
///
/// Workers claim indices from a shared atomic counter (work stealing at item
/// granularity) and buffer `(index, result)` pairs locally; the caller's thread
/// merges the buffers once, so no result slot is ever shared between workers and
/// `f` only needs to be `Sync` — no `'static` bound, no unsafe code.
///
/// A panic in `f` is still caught per item (third-party code inside a sweep can
/// always panic) and surfaces as [`VliwError::WorkerPanic`] carrying the
/// panicking *index* and the original payload message — on a full-corpus
/// sweep, "loop index 731" is the difference between a diagnosable failure and
/// a shrug.  When several items fail concurrently, the lowest index is
/// reported; a worker stops claiming new indices after its first failure.
pub fn try_par_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Result<Vec<R>, VliwError>
where
    R: Send,
    F: Fn(usize) -> Result<R, VliwError> + Sync,
{
    let threads = threads.max(1).min(n.max(1));

    let run_item = |index: usize| -> Result<R, (usize, VliwError)> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index))) {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(e)) => Err((index, e)),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                Err((index, VliwError::WorkerPanic { index, message }))
            }
        }
    };

    if threads <= 1 || n <= 1 {
        return (0..n).map(|i| run_item(i).map_err(|(_, e)| e)).collect();
    }

    let next = AtomicUsize::new(0);
    let outcomes: Vec<WorkerOutcome<R>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let run_item = &run_item;
                scope.spawn(move |_| {
                    // Registers this worker's per-thread span buffer (and its
                    // `worker-{k}` trace label) with the recorder; a no-op
                    // unless tracing is enabled.
                    vliw_obs::register_worker(worker);
                    let mut local = Vec::with_capacity(n / threads + 1);
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        match run_item(index) {
                            Ok(result) => local.push((index, result)),
                            Err(diagnosis) => return Err(diagnosis),
                        }
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught per item"))
            .collect::<Vec<_>>()
    })
    .expect("worker panics are caught per item");

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let mut failure: Option<(usize, VliwError)> = None;
    for outcome in outcomes {
        match outcome {
            Ok(local) => {
                for (index, result) in local {
                    results[index] = Some(result);
                }
            }
            Err((index, e)) => {
                if failure.as_ref().is_none_or(|(lowest, _)| index < *lowest) {
                    failure = Some((index, e));
                }
            }
        }
    }
    if let Some((_, e)) = failure {
        return Err(e);
    }
    Ok(results.into_iter().map(|r| r.expect("every index was claimed exactly once")).collect())
}

/// Infallible wrapper over [`try_par_map_indexed`]: applies `f` to every index
/// in `0..n` and returns the results in index order.  A failure (necessarily a
/// caught worker panic, since `f` is infallible) is re-raised on the caller's
/// thread; the payload is the rendered [`VliwError::WorkerPanic`], so the
/// diagnostic format is identical to the error path.
pub fn par_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match try_par_map_indexed(n, threads, |i| Ok(f(i))) {
        Ok(results) => results,
        Err(e) => panic!("{e}"),
    }
}

/// Renders a caught panic payload for the re-raised diagnostic: the `&str` /
/// `String` payloads `panic!` produces are passed through verbatim, anything
/// else (a `panic_any` value) is labelled by what it is not.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_index_order() {
        let seq: Vec<u64> = (0..500).map(|i| i as u64 * 7 + 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map_indexed(500, threads, |i| i as u64 * 7 + 3);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = par_map_indexed(200, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 200);
        assert_eq!(out, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_balanced_across_workers() {
        // One artificially slow item must not serialise the items behind it the way
        // a static chunking would: with 2 workers and the slow item first, the other
        // worker processes everything else concurrently.  We can't assert timing in
        // a unit test, but we can assert correctness under very skewed work.
        let out = par_map_indexed(64, 2, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "experiment worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map_indexed(16, 4, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn worker_panics_resurface_the_index_and_payload() {
        // The re-raised panic must say *which* loop index died and carry the
        // original payload text — the difference between a diagnosable
        // full-corpus sweep failure and an anonymous `expect` message.
        for threads in [1, 4] {
            let caught = std::panic::catch_unwind(|| {
                par_map_indexed(32, threads, |i| {
                    if i == 19 {
                        panic!("loop exploded: II search diverged");
                    }
                    i
                })
            })
            .expect_err("the sweep must panic");
            let message =
                caught.downcast_ref::<String>().expect("re-raised payload is a String").clone();
            assert!(message.contains("loop index 19"), "threads={threads}: {message}");
            assert!(
                message.contains("loop exploded: II search diverged"),
                "threads={threads}: {message}"
            );
        }
    }

    #[test]
    fn try_map_surfaces_closure_errors_with_the_lowest_index() {
        for threads in [1, 8] {
            let err = try_par_map_indexed(64, threads, |i| {
                if i % 16 == 5 {
                    return Err(VliwError::internal(format!("bad item {i}")));
                }
                Ok(i)
            })
            .expect_err("the sweep must fail");
            assert_eq!(err.to_string(), "internal error: bad item 5", "threads={threads}");
        }
    }

    #[test]
    fn try_map_turns_panics_into_worker_panic_errors() {
        let err = try_par_map_indexed(32, 4, |i| {
            if i == 19 {
                panic!("II search diverged");
            }
            Ok(i)
        })
        .expect_err("the sweep must fail");
        match &err {
            VliwError::WorkerPanic { index, message } => {
                assert_eq!(*index, 19);
                assert_eq!(message, "II search diverged");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert_eq!(
            err.to_string(),
            "experiment worker panicked at loop index 19: II search diverged"
        );
    }

    #[test]
    fn try_map_succeeds_in_index_order() {
        let out = try_par_map_indexed(100, 4, |i| Ok(i * 3)).expect("no failures");
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn lowest_panicking_index_wins() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(64, 8, |i| {
                if i % 16 == 3 {
                    panic!("bad item {i}");
                }
                i
            })
        })
        .expect_err("the sweep must panic");
        let message = caught.downcast_ref::<String>().unwrap().clone();
        assert!(message.contains("loop index 3"), "{message}");
    }
}
