//! The concurrency-safe memo store behind a [`crate::session::Session`].
//!
//! The store is two-level.  A lock-striped `CompilationKey -> KeyEntry` map interns
//! each distinct sweep point exactly once (the stripes keep unrelated keys from
//! contending on one mutex); each `KeyEntry` then holds one `OnceLock` slot per
//! corpus loop, so the per-loop fast path — by far the hot one — is a single
//! lock-free read, and a loop compiles at most once per key no matter how many
//! drivers or worker threads race for it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};
use vliw_ddg::Loop;
use vliw_sched::SchedError;
use vliw_sim::SimRun;

use crate::pipeline::{Compilation, Compiler};
use crate::session::key::CompilationKey;

/// A memoised per-loop outcome: the compilation or the scheduler error, shared.
pub type CachedResult = Arc<Result<Compilation, SchedError>>;

/// A memoised simulation run, shared.
pub type CachedSim = Arc<SimRun>;

/// Number of stripes of the key-interning map.  Sweeps use a few tens of keys at
/// most, so this is about avoiding systematic contention, not about scaling the
/// map itself.
const STRIPES: usize = 16;

/// Cache statistics of one session, the proof that the sweep shared work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Number of actual `Compiler::compile` invocations (cache misses).
    pub compilations: u64,
    /// Number of requests served from an already-compiled slot.
    pub hits: u64,
    /// Number of distinct compilation keys interned.
    pub unique_keys: u64,
    /// Number of actual `vliw_sim::simulate` invocations (sim cache misses).
    pub sim_runs: u64,
    /// Number of simulation requests served from an already-simulated slot.
    pub sim_hits: u64,
}

/// One interned sweep point: its compiler plus a dense slot per corpus loop.
pub(crate) struct KeyEntry {
    compiler: Compiler,
    slots: Vec<OnceLock<CachedResult>>,
    /// Memoised simulation runs per loop, keyed by trip count.  A per-loop
    /// mutex (not `OnceLock`): trip counts form an open set, and the per-loop
    /// granularity keeps concurrent sweeps of different loops contention-free.
    sim_slots: Vec<Mutex<HashMap<u64, CachedSim>>>,
}

impl KeyEntry {
    fn new(compiler: Compiler, num_loops: usize) -> Self {
        let mut slots = Vec::with_capacity(num_loops);
        slots.resize_with(num_loops, OnceLock::new);
        let mut sim_slots = Vec::with_capacity(num_loops);
        sim_slots.resize_with(num_loops, || Mutex::new(HashMap::new()));
        KeyEntry { compiler, slots, sim_slots }
    }

    /// The configuration this entry compiles with.
    pub(crate) fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Returns the memoised result for `lp` (the loop at `index` in the corpus),
    /// compiling it first if this is the slot's first request.
    pub(crate) fn compile(&self, index: usize, lp: &Loop, stats: &StatCounters) -> CachedResult {
        let mut compiled = false;
        let result = self.slots[index].get_or_init(|| {
            compiled = true;
            Arc::new(self.compiler.compile(lp))
        });
        // `get_or_init` runs the closure in exactly one requester; every other
        // request (including concurrent ones that blocked on the initializer) is a
        // hit, so the counters are deterministic for a fixed request sequence.
        if compiled {
            stats.compilations.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(result)
    }

    /// Returns the memoised simulation of the loop at `index` over `trip_count`
    /// iterations, compiling and simulating on first request; `None` when the
    /// loop does not schedule under this configuration.
    pub(crate) fn simulate(
        &self,
        index: usize,
        lp: &Loop,
        trip_count: u64,
        stats: &StatCounters,
    ) -> Option<CachedSim> {
        let compiled = self.compile(index, lp, stats);
        let compilation = compiled.as_ref().as_ref().ok()?;
        // The per-loop lock also serialises the first simulation of each trip
        // count, so — like `OnceLock` on the compile side — every (key, loop,
        // N) triple simulates exactly once and the counters are deterministic.
        let mut runs = self.sim_slots[index].lock().expect("sim slot poisoned");
        if let Some(run) = runs.get(&trip_count) {
            stats.sim_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(run));
        }
        let machine = &self.compiler.config().machine;
        let run = Arc::new(
            vliw_sim::simulate(
                &compilation.transformed,
                machine,
                &compilation.schedule,
                trip_count,
            )
            .expect("session compilations always produce structurally simulatable schedules"),
        );
        stats.sim_runs.fetch_add(1, Ordering::Relaxed);
        runs.insert(trip_count, Arc::clone(&run));
        Some(run)
    }
}

/// Hit/miss counters, shared by every [`KeyEntry`] of a store.
#[derive(Default)]
pub(crate) struct StatCounters {
    compilations: AtomicU64,
    hits: AtomicU64,
    sim_runs: AtomicU64,
    sim_hits: AtomicU64,
}

/// The lock-striped memo store: interned keys plus the shared counters.
pub(crate) struct MemoStore {
    stripes: Vec<Mutex<HashMap<CompilationKey, Arc<KeyEntry>>>>,
    stats: StatCounters,
}

impl MemoStore {
    pub(crate) fn new() -> Self {
        let mut stripes = Vec::with_capacity(STRIPES);
        stripes.resize_with(STRIPES, || Mutex::new(HashMap::new()));
        MemoStore { stripes, stats: StatCounters::default() }
    }

    /// Interns `key`, creating its entry with `make_compiler` on first sight.
    pub(crate) fn entry(
        &self,
        key: CompilationKey,
        num_loops: usize,
        make_compiler: impl FnOnce() -> Compiler,
    ) -> Arc<KeyEntry> {
        let stripe = &self.stripes[Self::stripe_of(&key)];
        let mut map = stripe.lock().expect("memo store stripe poisoned");
        Arc::clone(
            map.entry(key).or_insert_with(|| Arc::new(KeyEntry::new(make_compiler(), num_loops))),
        )
    }

    pub(crate) fn counters(&self) -> &StatCounters {
        &self.stats
    }

    pub(crate) fn stats(&self) -> SessionStats {
        let unique_keys = self
            .stripes
            .iter()
            .map(|s| s.lock().expect("memo store stripe poisoned").len() as u64)
            .sum();
        SessionStats {
            compilations: self.stats.compilations.load(Ordering::Relaxed),
            hits: self.stats.hits.load(Ordering::Relaxed),
            unique_keys,
            sim_runs: self.stats.sim_runs.load(Ordering::Relaxed),
            sim_hits: self.stats.sim_hits.load(Ordering::Relaxed),
        }
    }

    fn stripe_of(key: &CompilationKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % STRIPES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CompilerConfig;
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::Machine;

    fn store_with_entry(num_loops: usize) -> (MemoStore, Arc<KeyEntry>) {
        let store = MemoStore::new();
        let config = CompilerConfig::paper_defaults(Machine::paper_single(6));
        let key = CompilationKey::of(&config);
        let entry = store.entry(key, num_loops, || Compiler::new(config.clone()));
        (store, entry)
    }

    #[test]
    fn repeated_requests_compile_once() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        let first = entry.compile(0, &lp, store.counters());
        let second = entry.compile(0, &lp, store.counters());
        assert!(Arc::ptr_eq(&first, &second), "both requests must share one artifact");
        let stats = store.stats();
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.unique_keys, 1);
    }

    #[test]
    fn interning_the_same_key_reuses_the_entry() {
        let store = MemoStore::new();
        let config = CompilerConfig::paper_defaults(Machine::paper_single(6));
        let a = store.entry(CompilationKey::of(&config), 4, || Compiler::new(config.clone()));
        let b = store.entry(CompilationKey::of(&config), 4, || Compiler::new(config.clone()));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats().unique_keys, 1);
    }

    #[test]
    fn distinct_keys_intern_distinct_entries() {
        let store = MemoStore::new();
        let with = CompilerConfig::paper_defaults(Machine::paper_single(6));
        let without = CompilerConfig::without_copies(Machine::paper_single(6));
        store.entry(CompilationKey::of(&with), 2, || Compiler::new(with.clone()));
        store.entry(CompilationKey::of(&without), 2, || Compiler::new(without.clone()));
        assert_eq!(store.stats().unique_keys, 2);
    }

    #[test]
    fn repeated_simulations_run_once_per_trip_count() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        let first = entry.simulate(0, &lp, 10, store.counters()).expect("schedulable");
        let second = entry.simulate(0, &lp, 10, store.counters()).expect("schedulable");
        assert!(Arc::ptr_eq(&first, &second), "both requests must share one run");
        let other = entry.simulate(0, &lp, 100, store.counters()).expect("schedulable");
        assert!(!Arc::ptr_eq(&first, &other), "distinct trip counts are distinct runs");
        assert_eq!(other.measurement.trip_count, 100);
        let stats = store.stats();
        assert_eq!(stats.sim_runs, 2);
        assert_eq!(stats.sim_hits, 1);
        // Each simulate request also requested the compilation (1 miss + 2 hits).
        assert_eq!(stats.compilations, 1);
        assert!(first.is_clean());
    }

    #[test]
    fn concurrent_requests_still_compile_each_slot_once() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                let entry = &entry;
                let store = &store;
                let lp = &lp;
                scope.spawn(move |_| {
                    let _ = entry.compile(0, lp, store.counters());
                });
            }
        })
        .expect("workers finish");
        let stats = store.stats();
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.hits, 7);
    }
}
