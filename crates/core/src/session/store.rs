//! The concurrency-safe memo store behind a [`crate::session::Session`].
//!
//! The store is two-level.  A lock-striped `CompilationKey -> KeyEntry` map interns
//! each distinct sweep point exactly once (the stripes keep unrelated keys from
//! contending on one mutex); each `KeyEntry` then holds one `OnceLock` slot per
//! corpus loop, so the per-loop fast path — by far the hot one — is a single
//! lock-free read, and a loop compiles at most once per key no matter how many
//! drivers or worker threads race for it.
//!
//! Each loop slot is dual-path:
//!
//! * the **summary** path ([`CachedResult`], a [`LoopSummary`] or a
//!   [`VliwError`]) is what the experiment drivers consume.  It is
//!   serializable, so it can be filled from the disk-backed
//!   [`PersistStore`](crate::session::persist::PersistStore) without compiling
//!   anything — that is how a warm daemon run performs zero cold compiles;
//! * the **full** path ([`CachedCompilation`], the unserialized
//!   [`Compilation`]) backs the summary on a cold compile and serves consumers
//!   that replay schedules (the simulator cross-checks, the kernel benches).
//!
//! The `OnceLock` per slot doubles as in-flight coalescing: when many daemon
//! clients race on the same (key, loop) pair, exactly one performs the work and
//! the rest block on the initializer and count as hits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};
use vliw_ddg::Loop;
use vliw_sched::SchedError;
use vliw_sim::SimRun;

use crate::error::VliwError;
use crate::pipeline::{Compilation, Compiler};
use crate::session::artifact::{LoopSummary, SimSummary, VerifySummary};
use crate::session::key::CompilationKey;
use crate::session::persist::{key_digest, loop_digest, PersistStore};

/// A memoised per-loop outcome on the summary path: the serializable metrics or
/// the error, shared.
pub type CachedResult = Arc<Result<LoopSummary, VliwError>>;

/// A memoised per-loop outcome on the full path: the complete compilation or
/// the scheduler error, shared.
pub type CachedCompilation = Arc<Result<Compilation, SchedError>>;

/// A memoised simulation summary, shared.
pub type CachedSim = Arc<SimSummary>;

/// A memoised full simulation run (with recorded violations), shared.
pub type CachedRun = Arc<SimRun>;

/// A memoised static verification summary, shared.
pub type CachedVerify = Arc<VerifySummary>;

/// Number of stripes of the key-interning map.  Sweeps use a few tens of keys at
/// most, so this is about avoiding systematic contention, not about scaling the
/// map itself.
const STRIPES: usize = 16;

/// Cache statistics of one session, the proof that the sweep shared work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Number of actual `Compiler::compile` invocations (cache misses).
    pub compilations: u64,
    /// Number of requests served from an already-compiled slot.
    pub hits: u64,
    /// Number of requests served from the persistent (disk) store without
    /// compiling.  Zero unless the session has a cache directory.
    pub disk_hits: u64,
    /// Number of distinct compilation keys interned.
    pub unique_keys: u64,
    /// Number of actual `vliw_sim::simulate` invocations (sim cache misses).
    pub sim_runs: u64,
    /// Number of simulation requests served from an already-simulated slot.
    pub sim_hits: u64,
    /// Number of simulation requests served from the persistent (disk) store
    /// without simulating.
    pub sim_disk_hits: u64,
    /// Number of actual static-verifier executions (verify cache misses).
    pub verifications: u64,
    /// Number of verify requests served from an already-verified slot.
    pub verify_hits: u64,
}

/// How a compile request was satisfied; drives exactly one counter bump.
enum Outcome {
    Compiled,
    Hit,
    DiskHit,
}

/// One loop's simulation cache for one trip count.
struct SimEntry {
    summary: CachedSim,
    /// Present when the run executed in this process; absent when the summary
    /// was loaded from disk (the violation details are not persisted).
    full: Option<CachedRun>,
}

/// One interned sweep point: its compiler plus a dense slot per corpus loop.
pub(crate) struct KeyEntry {
    compiler: Compiler,
    key_digest: u64,
    persist: Option<Arc<PersistStore>>,
    /// The serializable summary per loop — the drivers' path.
    summaries: Vec<OnceLock<CachedResult>>,
    /// The full compilation per loop — the replay path, also the backing of a
    /// cold summary.
    fulls: Vec<OnceLock<CachedCompilation>>,
    /// The loop's structural digest, computed at most once per (key, loop).
    digests: Vec<OnceLock<u64>>,
    /// Memoised simulation runs per loop, keyed by trip count.  A per-loop
    /// mutex (not `OnceLock`): trip counts form an open set, and the per-loop
    /// granularity keeps concurrent sweeps of different loops contention-free.
    sim_slots: Vec<Mutex<HashMap<u64, SimEntry>>>,
    /// The static verification per loop (`None` for unschedulable loops).
    /// Trip-count free — a verification is a steady-state proof — so a plain
    /// `OnceLock` per loop suffices; in-memory only, since verifying is about
    /// as cheap as deserializing would be.
    verifies: Vec<OnceLock<Option<CachedVerify>>>,
}

impl KeyEntry {
    fn new(
        compiler: Compiler,
        num_loops: usize,
        key_digest: u64,
        persist: Option<Arc<PersistStore>>,
    ) -> Self {
        let mut summaries = Vec::with_capacity(num_loops);
        summaries.resize_with(num_loops, OnceLock::new);
        let mut fulls = Vec::with_capacity(num_loops);
        fulls.resize_with(num_loops, OnceLock::new);
        let mut digests = Vec::with_capacity(num_loops);
        digests.resize_with(num_loops, OnceLock::new);
        let mut sim_slots = Vec::with_capacity(num_loops);
        sim_slots.resize_with(num_loops, || Mutex::new(HashMap::new()));
        let mut verifies = Vec::with_capacity(num_loops);
        verifies.resize_with(num_loops, OnceLock::new);
        KeyEntry { compiler, key_digest, persist, summaries, fulls, digests, sim_slots, verifies }
    }

    /// The configuration this entry compiles with.
    pub(crate) fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    fn digest(&self, index: usize, lp: &Loop) -> u64 {
        *self.digests[index].get_or_init(|| loop_digest(lp))
    }

    /// Fills (if needed) and returns the full-compilation slot.  Counts only a
    /// `compilations` miss; a present slot counts nothing — callers decide
    /// whether their request is a hit.  The flag says whether *this* call ran
    /// the compiler.
    fn materialize_full(
        &self,
        index: usize,
        lp: &Loop,
        stats: &StatCounters,
    ) -> (CachedCompilation, bool) {
        let mut compiled = false;
        let result = self.fulls[index].get_or_init(|| {
            compiled = true;
            Arc::new(self.compiler.compile(lp))
        });
        if compiled {
            stats.compilations.fetch_add(1, Ordering::Relaxed);
        }
        (Arc::clone(result), compiled)
    }

    /// Returns the memoised summary for `lp` (the loop at `index` in the
    /// corpus): from the slot, else from disk, else by compiling.
    pub(crate) fn compile(&self, index: usize, lp: &Loop, stats: &StatCounters) -> CachedResult {
        let mut outcome = Outcome::Hit;
        let result = self.summaries[index].get_or_init(|| {
            if let Some(persist) = &self.persist {
                if let Some(loaded) = persist.load_compile(self.key_digest, self.digest(index, lp))
                {
                    outcome = Outcome::DiskHit;
                    return Arc::new(loaded);
                }
            }
            let (full, compiled_here) = self.materialize_full(index, lp, stats);
            // `materialize_full` counted the compile if it happened here; a
            // pre-existing full slot (filled by `compile_full`) makes this
            // request a plain hit.
            outcome = if compiled_here { Outcome::Compiled } else { Outcome::Hit };
            let summary = match full.as_ref() {
                Ok(c) => Ok(c.summarize()),
                Err(e) => Err(VliwError::Sched(e.clone())),
            };
            if let Some(persist) = &self.persist {
                persist.store_compile(self.key_digest, self.digest(index, lp), &summary);
            }
            Arc::new(summary)
        });
        // `get_or_init` runs the closure in exactly one requester; every other
        // request (including concurrent ones that blocked on the initializer)
        // is a hit, so the counters are deterministic for a fixed request
        // sequence.
        match outcome {
            Outcome::Compiled => {}
            Outcome::Hit => {
                stats.hits.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::DiskHit => {
                stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        Arc::clone(result)
    }

    /// Returns the memoised full compilation, compiling on first request.
    pub(crate) fn compile_full(
        &self,
        index: usize,
        lp: &Loop,
        stats: &StatCounters,
    ) -> CachedCompilation {
        let (result, compiled) = self.materialize_full(index, lp, stats);
        if !compiled {
            stats.hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Returns the memoised simulation summary of the loop at `index` over
    /// `trip_count` iterations, compiling and simulating on first request;
    /// `None` when the loop does not schedule under this configuration.
    pub(crate) fn simulate(
        &self,
        index: usize,
        lp: &Loop,
        trip_count: u64,
        stats: &StatCounters,
    ) -> Option<CachedSim> {
        let compiled = self.compile(index, lp, stats);
        if compiled.as_ref().is_err() {
            return None;
        }
        // The per-loop lock also serialises the first simulation of each trip
        // count, so — like `OnceLock` on the compile side — every (key, loop,
        // N) triple simulates exactly once and the counters are deterministic.
        let mut runs = self.sim_slots[index].lock().expect("sim slot poisoned");
        if let Some(entry) = runs.get(&trip_count) {
            stats.sim_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(&entry.summary));
        }
        if let Some(persist) = &self.persist {
            if let Some(loaded) =
                persist.load_sim(self.key_digest, self.digest(index, lp), trip_count)
            {
                stats.sim_disk_hits.fetch_add(1, Ordering::Relaxed);
                let summary = Arc::new(loaded);
                runs.insert(trip_count, SimEntry { summary: Arc::clone(&summary), full: None });
                return Some(summary);
            }
        }
        let run = self.run_simulation(index, lp, trip_count, stats);
        let summary = Arc::new(SimSummary::from(run.as_ref()));
        if let Some(persist) = &self.persist {
            persist.store_sim(self.key_digest, self.digest(index, lp), trip_count, &summary);
        }
        runs.insert(trip_count, SimEntry { summary: Arc::clone(&summary), full: Some(run) });
        Some(summary)
    }

    /// Returns the memoised *full* simulation run (with recorded violations),
    /// executing it in-process if the cached entry came from disk.
    pub(crate) fn simulate_full(
        &self,
        index: usize,
        lp: &Loop,
        trip_count: u64,
        stats: &StatCounters,
    ) -> Option<CachedRun> {
        let compiled = self.compile(index, lp, stats);
        if compiled.as_ref().is_err() {
            return None;
        }
        let mut runs = self.sim_slots[index].lock().expect("sim slot poisoned");
        if let Some(entry) = runs.get(&trip_count) {
            if let Some(full) = &entry.full {
                stats.sim_hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(full));
            }
        }
        let run = self.run_simulation(index, lp, trip_count, stats);
        let summary = Arc::new(SimSummary::from(run.as_ref()));
        if let Some(persist) = &self.persist {
            persist.store_sim(self.key_digest, self.digest(index, lp), trip_count, &summary);
        }
        runs.insert(trip_count, SimEntry { summary, full: Some(Arc::clone(&run)) });
        Some(run)
    }

    /// Returns the memoised static verification of the loop at `index`,
    /// compiling (if needed) and running `vliw_verify` on first request;
    /// `None` when the loop does not schedule under this configuration.
    /// Exactly one verifier execution per (key, loop), like the compile and
    /// sim slots.
    pub(crate) fn verify(
        &self,
        index: usize,
        lp: &Loop,
        stats: &StatCounters,
    ) -> Option<CachedVerify> {
        let mut verified = false;
        let slot = self.verifies[index].get_or_init(|| {
            let (full, _) = self.materialize_full(index, lp, stats);
            let compilation = match full.as_ref() {
                Ok(c) => c,
                Err(_) => return None,
            };
            verified = true;
            let machine = &self.compiler.config().machine;
            let v = vliw_verify::verify_with_allocation(
                &compilation.transformed,
                machine,
                &compilation.schedule,
                &compilation.queues,
            );
            Some(Arc::new(VerifySummary::from(&v)))
        });
        if verified {
            stats.verifications.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.verify_hits.fetch_add(1, Ordering::Relaxed);
        }
        slot.clone()
    }

    /// Actually executes the simulator; requires the loop to have a full
    /// compilation (materializing one if the summary came from disk) and
    /// counts a `sim_runs` miss.  Caller holds the sim-slot lock.
    fn run_simulation(
        &self,
        index: usize,
        lp: &Loop,
        trip_count: u64,
        stats: &StatCounters,
    ) -> CachedRun {
        let (full, _) = self.materialize_full(index, lp, stats);
        let compilation =
            full.as_ref().as_ref().expect("summary path reported Ok, full compilation must agree");
        let machine = &self.compiler.config().machine;
        let run = Arc::new(
            vliw_sim::simulate(
                &compilation.transformed,
                machine,
                &compilation.schedule,
                trip_count,
            )
            .expect("session compilations always produce structurally simulatable schedules"),
        );
        stats.sim_runs.fetch_add(1, Ordering::Relaxed);
        run
    }
}

/// Hit/miss counters, shared by every [`KeyEntry`] of a store.
#[derive(Default)]
pub(crate) struct StatCounters {
    compilations: AtomicU64,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    sim_runs: AtomicU64,
    sim_hits: AtomicU64,
    sim_disk_hits: AtomicU64,
    verifications: AtomicU64,
    verify_hits: AtomicU64,
}

/// The lock-striped memo store: interned keys plus the shared counters.
pub(crate) struct MemoStore {
    stripes: Vec<Mutex<HashMap<CompilationKey, Arc<KeyEntry>>>>,
    persist: Option<Arc<PersistStore>>,
    stats: StatCounters,
}

impl MemoStore {
    pub(crate) fn new(persist: Option<Arc<PersistStore>>) -> Self {
        let mut stripes = Vec::with_capacity(STRIPES);
        stripes.resize_with(STRIPES, || Mutex::new(HashMap::new()));
        MemoStore { stripes, persist, stats: StatCounters::default() }
    }

    /// The persistent layer, if the session has one.
    pub(crate) fn persist(&self) -> Option<&Arc<PersistStore>> {
        self.persist.as_ref()
    }

    /// Interns `key`, creating its entry with `make_compiler` on first sight.
    pub(crate) fn entry(
        &self,
        key: CompilationKey,
        num_loops: usize,
        make_compiler: impl FnOnce() -> Compiler,
    ) -> Arc<KeyEntry> {
        let stripe = &self.stripes[Self::stripe_of(&key)];
        let mut map = stripe.lock().expect("memo store stripe poisoned");
        if let Some(entry) = map.get(&key) {
            return Arc::clone(entry);
        }
        let digest = key_digest(&key);
        let entry =
            Arc::new(KeyEntry::new(make_compiler(), num_loops, digest, self.persist.clone()));
        map.insert(key, Arc::clone(&entry));
        entry
    }

    pub(crate) fn counters(&self) -> &StatCounters {
        &self.stats
    }

    pub(crate) fn stats(&self) -> SessionStats {
        let unique_keys = self
            .stripes
            .iter()
            .map(|s| s.lock().expect("memo store stripe poisoned").len() as u64)
            .sum();
        SessionStats {
            compilations: self.stats.compilations.load(Ordering::Relaxed),
            hits: self.stats.hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            unique_keys,
            sim_runs: self.stats.sim_runs.load(Ordering::Relaxed),
            sim_hits: self.stats.sim_hits.load(Ordering::Relaxed),
            sim_disk_hits: self.stats.sim_disk_hits.load(Ordering::Relaxed),
            verifications: self.stats.verifications.load(Ordering::Relaxed),
            verify_hits: self.stats.verify_hits.load(Ordering::Relaxed),
        }
    }

    fn stripe_of(key: &CompilationKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % STRIPES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CompilerConfig;
    use vliw_ddg::{kernels, LatencyModel};
    use vliw_machine::Machine;

    fn store_with_entry(num_loops: usize) -> (MemoStore, Arc<KeyEntry>) {
        let store = MemoStore::new(None);
        let config = CompilerConfig::paper_defaults(Machine::paper_single(6));
        let key = CompilationKey::of(&config);
        let entry = store.entry(key, num_loops, || Compiler::new(config.clone()));
        (store, entry)
    }

    #[test]
    fn repeated_requests_compile_once() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        let first = entry.compile(0, &lp, store.counters());
        let second = entry.compile(0, &lp, store.counters());
        assert!(Arc::ptr_eq(&first, &second), "both requests must share one artifact");
        let stats = store.stats();
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.unique_keys, 1);
    }

    #[test]
    fn summary_and_full_paths_share_one_compilation() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        let summary = entry.compile(0, &lp, store.counters());
        let full = entry.compile_full(0, &lp, store.counters());
        let s = summary.as_ref().as_ref().expect("schedulable");
        let c = full.as_ref().as_ref().expect("schedulable");
        assert_eq!(s, &c.summarize());
        assert_eq!(store.stats().compilations, 1, "the full slot backs the summary");
    }

    #[test]
    fn interning_the_same_key_reuses_the_entry() {
        let store = MemoStore::new(None);
        let config = CompilerConfig::paper_defaults(Machine::paper_single(6));
        let a = store.entry(CompilationKey::of(&config), 4, || Compiler::new(config.clone()));
        let b = store.entry(CompilationKey::of(&config), 4, || Compiler::new(config.clone()));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats().unique_keys, 1);
    }

    #[test]
    fn distinct_keys_intern_distinct_entries() {
        let store = MemoStore::new(None);
        let with = CompilerConfig::paper_defaults(Machine::paper_single(6));
        let without = CompilerConfig::without_copies(Machine::paper_single(6));
        store.entry(CompilationKey::of(&with), 2, || Compiler::new(with.clone()));
        store.entry(CompilationKey::of(&without), 2, || Compiler::new(without.clone()));
        assert_eq!(store.stats().unique_keys, 2);
    }

    #[test]
    fn repeated_simulations_run_once_per_trip_count() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        let first = entry.simulate(0, &lp, 10, store.counters()).expect("schedulable");
        let second = entry.simulate(0, &lp, 10, store.counters()).expect("schedulable");
        assert!(Arc::ptr_eq(&first, &second), "both requests must share one run");
        let other = entry.simulate(0, &lp, 100, store.counters()).expect("schedulable");
        assert!(!Arc::ptr_eq(&first, &other), "distinct trip counts are distinct runs");
        assert_eq!(other.measurement.trip_count, 100);
        let stats = store.stats();
        assert_eq!(stats.sim_runs, 2);
        assert_eq!(stats.sim_hits, 1);
        // Each simulate request also requested the compilation (1 miss + 2 hits).
        assert_eq!(stats.compilations, 1);
        assert!(first.is_clean());
    }

    #[test]
    fn full_runs_match_their_summaries() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        let summary = entry.simulate(0, &lp, 25, store.counters()).expect("schedulable");
        let run = entry.simulate_full(0, &lp, 25, store.counters()).expect("schedulable");
        assert_eq!(*summary, SimSummary::from(run.as_ref()));
        assert_eq!(store.stats().sim_runs, 1, "summary and full share one execution");
    }

    #[test]
    fn repeated_verifications_run_once() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        let first = entry.verify(0, &lp, store.counters()).expect("schedulable");
        let second = entry.verify(0, &lp, store.counters()).expect("schedulable");
        assert!(Arc::ptr_eq(&first, &second), "both requests must share one verdict");
        assert!(first.is_clean());
        let stats = store.stats();
        assert_eq!(stats.verifications, 1);
        assert_eq!(stats.verify_hits, 1);
        assert_eq!(stats.compilations, 1, "verify compiles through the shared full slot");
    }

    #[test]
    fn concurrent_requests_still_compile_each_slot_once() {
        let (store, entry) = store_with_entry(1);
        let lp = kernels::dot_product(LatencyModel::default(), 100);
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                let entry = &entry;
                let store = &store;
                let lp = &lp;
                scope.spawn(move |_| {
                    let _ = entry.compile(0, lp, store.counters());
                });
            }
        })
        .expect("workers finish");
        let stats = store.stats();
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.hits, 7);
    }
}
