//! Canonical identity of one compilation configuration.
//!
//! Two [`CompilerConfig`]s that cannot produce different output for any loop must
//! map to the same [`CompilationKey`], so the memo store shares their artifacts.
//! The key therefore *canonicalises* the configuration: options that the pipeline
//! never reads for a given machine shape (the IMS options on a clustered machine,
//! the partitioner options on a single-cluster machine, the unroll cap when
//! unrolling is off) are reset to fixed values before hashing.

use vliw_machine::Machine;
use vliw_partition::PartitionOptions;
use vliw_sched::ImsOptions;
use vliw_unroll::DEFAULT_MAX_FACTOR;

use crate::pipeline::CompilerConfig;

/// The canonical, hashable identity of a compilation point: machine shape plus
/// every pipeline option that can influence the produced [`crate::Compilation`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompilationKey {
    /// Target machine (clusters, functional units, queues, ring, latencies).
    pub machine: Machine,
    /// Whether copy insertion runs (Section 2).
    pub use_copies: bool,
    /// Whether loop unrolling runs (Section 3).
    pub unroll: bool,
    /// Unroll-factor cap; canonicalised to the default when `unroll` is off.
    pub max_unroll: u32,
    /// IMS options; canonicalised to the default on clustered machines (the
    /// pipeline routes those through the partitioner instead).
    pub sched: ImsOptions,
    /// Partitioner options; canonicalised to the default on single-cluster
    /// machines.
    pub partition: PartitionOptions,
}

impl CompilationKey {
    /// Extracts the canonical key of a configuration.
    pub fn of(config: &CompilerConfig) -> Self {
        let clustered = config.machine.is_clustered();
        CompilationKey {
            machine: config.machine.clone(),
            use_copies: config.use_copies,
            unroll: config.unroll,
            max_unroll: if config.unroll { config.max_unroll } else { DEFAULT_MAX_FACTOR },
            sched: if clustered { ImsOptions::default() } else { config.sched },
            partition: if clustered { config.partition } else { PartitionOptions::default() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identical_configs_share_a_key() {
        let a = CompilerConfig::paper_defaults(Machine::paper_single(6)).no_unroll();
        let b = CompilerConfig::paper_defaults(Machine::paper_single(6)).no_unroll();
        assert_eq!(CompilationKey::of(&a), CompilationKey::of(&b));
    }

    #[test]
    fn irrelevant_options_are_canonicalised_away() {
        // Partitioner options cannot matter on a single-cluster machine...
        let base = CompilerConfig::paper_defaults(Machine::paper_single(6));
        let mut tweaked = base.clone();
        tweaked.partition.budget_ratio += 5;
        assert_eq!(CompilationKey::of(&base), CompilationKey::of(&tweaked));

        // ...and the unroll cap cannot matter when unrolling is off.
        let mut no_unroll_a = base.clone().no_unroll();
        let mut no_unroll_b = base.clone().no_unroll();
        no_unroll_a.max_unroll = 2;
        no_unroll_b.max_unroll = 8;
        assert_eq!(CompilationKey::of(&no_unroll_a), CompilationKey::of(&no_unroll_b));
    }

    #[test]
    fn behaviour_changing_options_produce_distinct_keys() {
        let machine = Machine::paper_single(6);
        let mut keys = HashSet::new();
        keys.insert(CompilationKey::of(&CompilerConfig::paper_defaults(machine.clone())));
        keys.insert(CompilationKey::of(
            &CompilerConfig::paper_defaults(machine.clone()).no_unroll(),
        ));
        keys.insert(CompilationKey::of(&CompilerConfig::without_copies(machine.clone())));
        let mut capped = CompilerConfig::paper_defaults(machine);
        capped.max_unroll = 2;
        keys.insert(CompilationKey::of(&capped));
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn different_machines_produce_distinct_keys() {
        let a = CompilationKey::of(&CompilerConfig::paper_defaults(Machine::paper_single(6)));
        let b = CompilationKey::of(&CompilerConfig::paper_defaults(Machine::paper_single(12)));
        assert_ne!(a, b);
    }
}
